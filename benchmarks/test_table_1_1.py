"""Table 1.1 — key features of the parallel algorithms."""

from repro.bench.experiments import table_1_1_features


def test_table_1_1_features(run_experiment):
    run_experiment(table_1_1_features)

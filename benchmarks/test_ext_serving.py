"""Extension: serving latency — cold compute vs store scan vs cache hit."""

from repro.bench.extensions import ext_serving


def test_ext_serving(run_experiment):
    run_experiment(ext_serving)

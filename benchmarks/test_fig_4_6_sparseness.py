"""Figure 4.6 — dense vs sparse cubes: ASL/AHT win dense, BUC-based
pruning wins sparse, BPP suffers on small cardinalities."""

from repro.bench.experiments import fig_4_6_sparseness


def test_fig_4_6_sparseness(run_experiment):
    run_experiment(fig_4_6_sparseness)

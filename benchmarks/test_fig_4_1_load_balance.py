"""Figure 4.1 — load distribution over 8 processors for all five
algorithms on the baseline configuration."""

from repro.bench.experiments import fig_4_1_load_balance


def test_fig_4_1_load_balance(run_experiment):
    run_experiment(fig_4_1_load_balance)

"""Figure 4.4 — wall clock vs cube dimensionality (AHT blows up, ASL's
key comparisons grow, BUC-based algorithms degrade most gracefully)."""

from repro.bench.experiments import fig_4_4_dimensions


def test_fig_4_4_dimensions(run_experiment):
    run_experiment(fig_4_4_dimensions)

"""Figure 4.5 — wall clock and output volume vs minimum support."""

from repro.bench.experiments import fig_4_5_minsup


def test_fig_4_5_minsup(run_experiment):
    run_experiment(fig_4_5_minsup)

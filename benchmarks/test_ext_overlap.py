"""Extension: the Overlap baseline vs PipeSort/PipeHash."""

from repro.bench.extensions import ext_overlap_baseline


def test_ext_overlap_baseline(run_experiment):
    run_experiment(ext_overlap_baseline)

"""Extension: streaming ingestion — WAL delta appends vs leaf rewrite."""

from repro.bench.extensions import ext_ingest


def test_ext_ingest(run_experiment):
    run_experiment(ext_ingest)

"""Table 5.1 — POL's n x n chunk-task array for four processors."""

from repro.bench.experiments import table_5_1_task_array


def test_table_5_1_task_array(run_experiment):
    run_experiment(table_5_1_task_array)

"""Extension: columnar kernel / multiprocess backend throughput.

Real wall-clock rows/sec for every compute path — naive rescan, seed
``BucEngine``, columnar kernel, numpy kernel, multiprocess backend —
plus the machine-readable ``BENCH_kernel.json`` artifact that the CI
``kernel-bench`` job defends against regressions.
"""

from repro.bench.kernelbench import ext_kernel_throughput


def test_ext_kernel(run_experiment):
    run_experiment(ext_kernel_throughput)

"""Extension: injected node loss — RP vs PT makespan degradation."""

from repro.bench.extensions import ext_fault_tolerance


def test_ext_fault_tolerance(run_experiment):
    run_experiment(ext_fault_tolerance)

"""Extension: correlated attributes (the conclusion's future work)."""

from repro.bench.extensions import ext_correlation


def test_ext_correlation(run_experiment):
    run_experiment(ext_correlation)

"""Extension: HRU greedy view selection (Section 5.1's future work)."""

from repro.bench.extensions import ext_view_selection


def test_ext_view_selection(run_experiment):
    run_experiment(ext_view_selection)

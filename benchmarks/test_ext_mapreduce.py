"""Extension: one-round MapReduce backend vs PT-style subtree tasks."""

from repro.bench.mrbench import ext_mapreduce


def test_ext_mapreduce(run_experiment):
    run_experiment(ext_mapreduce)

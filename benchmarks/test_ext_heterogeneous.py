"""Extension: the full heterogeneous (fast+slow) testbed shape."""

from repro.bench.extensions import ext_heterogeneous_cluster


def test_ext_heterogeneous_cluster(run_experiment):
    run_experiment(ext_heterogeneous_cluster)

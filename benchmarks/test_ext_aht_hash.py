"""Extension: Section 4.9.2's hash-function suggestion, measured."""

from repro.bench.extensions import ext_aht_hash_function


def test_ext_aht_hash_function(run_experiment):
    run_experiment(ext_aht_hash_function)

"""Ablation: comparison sort vs the BUC paper's counting sort."""

from repro.bench.ablations import ablation_counting_sort


def test_ablation_counting_sort(run_experiment):
    run_experiment(ablation_counting_sort)

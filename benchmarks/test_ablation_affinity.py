"""Ablation: affinity scheduling on/off for ASL and PT."""

from repro.bench.ablations import ablation_affinity_scheduling


def test_ablation_affinity_scheduling(run_experiment):
    run_experiment(ablation_affinity_scheduling)

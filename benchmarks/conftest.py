"""Benchmark-suite configuration.

Each bench reproduces one table/figure of the thesis: it runs the
workload through the simulated cluster, prints the thesis-style table
(visible with ``pytest -s`` and in failure reports), writes it to
``bench_results/``, records the wall time of the whole experiment with
pytest-benchmark, and asserts the figure's qualitative *shape* checks.

Workload sizes scale with ``REPRO_BENCH_SCALE`` (default 0.05 of the
thesis' tuple counts); raise it toward 1.0 to approach paper scale.
"""

import os
import re

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


def _save(result):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", result.experiment_id.lower()).strip("_")
    path = os.path.join(RESULTS_DIR, "%s.txt" % slug)
    with open(path, "w") as handle:
        handle.write(result.format_table())
        handle.write("\n")


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under pytest-benchmark, print and
    persist its table, and enforce its shape checks."""

    def runner(experiment, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        result.report()
        _save(result)
        result.assert_checks()
        return result

    return runner

"""Ablation: skip list vs hash table as the cuboid container."""

from repro.bench.ablations import ablation_container


def test_ablation_container(run_experiment):
    run_experiment(ablation_container)

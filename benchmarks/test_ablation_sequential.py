"""Ablation: sequential baselines — BUC's pruning vs the top-down
algorithms of Chapter 2."""

from repro.bench.ablations import ablation_sequential_baselines


def test_ablation_sequential_baselines(run_experiment):
    run_experiment(ablation_sequential_baselines)

"""Figure 5.4 — POL's scalability with the per-step buffer size."""

from repro.bench.experiments import fig_5_4_pol_buffer


def test_fig_5_4_pol_buffer(run_experiment):
    run_experiment(fig_5_4_pol_buffer)

"""Figure 4.2 — wall clock vs number of processors (2..16)."""

from repro.bench.experiments import fig_4_2_scalability


def test_fig_4_2_scalability(run_experiment):
    run_experiment(fig_4_2_scalability)

"""Figure 4.3 — wall clock vs dataset size (PT/ASL grow sublinearly)."""

from repro.bench.experiments import fig_4_3_problem_size


def test_fig_4_3_problem_size(run_experiment):
    run_experiment(fig_4_3_problem_size)

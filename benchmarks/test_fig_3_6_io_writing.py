"""Figure 3.6 — I/O comparison: BPP's breadth-first writing vs RP's
depth-first writing, on the 9-dimension baseline."""

from repro.bench.experiments import fig_3_6_io_writing


def test_fig_3_6_io_writing(run_experiment):
    run_experiment(fig_3_6_io_writing)

"""Ablation: PT's binary-division ratio (load balance vs pruning)."""

from repro.bench.ablations import ablation_pt_granularity


def test_ablation_pt_granularity(run_experiment):
    run_experiment(ablation_pt_granularity)

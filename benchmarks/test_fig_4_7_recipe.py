"""Figure 4.7 — the algorithm-selection recipe."""

from repro.bench.experiments import fig_4_7_recipe


def test_fig_4_7_recipe(run_experiment):
    run_experiment(fig_4_7_recipe)

"""Ablation: depth-first vs breadth-first writing on the same algorithm."""

from repro.bench.ablations import ablation_writing_strategy


def test_ablation_writing_strategy(run_experiment):
    run_experiment(ablation_writing_strategy)

"""Section 5.1 — selective materialization: precompute the processing
tree's leaf cuboids at minsup 1, answer any threshold instantly."""

from repro.bench.experiments import sec_5_1_materialization


def test_sec_5_1_materialization(run_experiment):
    run_experiment(sec_5_1_materialization)

"""Figure 5.3 — POL's scalability with processors on Cluster1/2/3."""

from repro.bench.experiments import fig_5_3_pol_scalability


def test_fig_5_3_pol_scalability(run_experiment):
    run_experiment(fig_5_3_pol_scalability)

"""The BUC processing tree and PT's recursive binary division.

BUC converts the lattice into the processing tree of Figure 2.4(c): the
node for prefix ``p`` (a tuple of dimensions in schema order, ending with
dimension index ``i``) has one child ``p + (A_k,)`` for every ``k > i``.
The subtree rooted at a length-``j`` prefix ending at index ``i`` over
``m`` dimensions has exactly ``2**(m - i - 1)`` nodes, which is why
cutting the farthest-left edge of any (sub)tree splits it into two halves
of equal node count — the invariant PT's binary division relies on
(Figure 3.9).
"""

from ..errors import PlanError


class ProcessingTree:
    """The bottom-up (BUC) processing tree over an ordered dimension set."""

    def __init__(self, dims):
        self.dims = tuple(dims)
        self._index = {name: i for i, name in enumerate(self.dims)}

    @property
    def root(self):
        """The ``all`` node: the empty prefix."""
        return ()

    def _last_index(self, prefix):
        return self._index[prefix[-1]] if prefix else -1

    def children(self, prefix):
        """Child prefixes, left to right (ascending dimension index)."""
        start = self._last_index(prefix) + 1
        return [prefix + (self.dims[i],) for i in range(start, len(self.dims))]

    def subtree_size(self, prefix):
        """Node count of the subtree rooted at ``prefix`` (including it)."""
        return 2 ** (len(self.dims) - 1 - self._last_index(prefix))

    def subtree_nodes(self, prefix):
        """All nodes of the subtree rooted at ``prefix``, in DFS pre-order.

        This is exactly the order in which BUC visits (and, with
        depth-first writing, outputs) the group-bys.
        """
        out = [prefix]
        for child in self.children(prefix):
            out.extend(self.subtree_nodes(child))
        return out


class SubtreeTask:
    """A full or chopped subtree of the processing tree (a PT task).

    ``root`` is the subtree's root prefix; ``skipped`` lists child
    branches of ``root`` that were cut away by earlier divisions, in
    left-to-right order.  A task with no ``skipped`` branches is the
    thesis' "full" subtree; otherwise it is a "chopped" subtree.
    """

    __slots__ = ("root", "skipped")

    def __init__(self, root, skipped=()):
        self.root = tuple(root)
        self.skipped = tuple(tuple(s) for s in skipped)

    def __repr__(self):
        return "SubtreeTask(root=%r, skipped=%r)" % (self.root, self.skipped)

    def __eq__(self, other):
        return (
            isinstance(other, SubtreeTask)
            and self.root == other.root
            and self.skipped == other.skipped
        )

    def __hash__(self):
        return hash((self.root, self.skipped))

    def size(self, tree):
        """Node count of this (possibly chopped) subtree."""
        total = tree.subtree_size(self.root)
        for branch in self.skipped:
            total -= tree.subtree_size(branch)
        return total

    def nodes(self, tree):
        """The task's nodes in BUC's DFS order, skipping cut branches."""
        skipped = set(self.skipped)
        out = [self.root]
        for child in tree.children(self.root):
            if child not in skipped:
                out.extend(tree.subtree_nodes(child))
        return out

    def active_children(self, tree):
        """Children of ``root`` still attached to this task."""
        skipped = set(self.skipped)
        return [c for c in tree.children(self.root) if c not in skipped]

    def split(self, tree):
        """Cut the farthest-left remaining edge from ``root``.

        Returns ``(left, rest)`` where ``left`` is the full subtree under
        the leftmost remaining child and ``rest`` is this task with that
        branch additionally skipped.  Both halves have equal node count.
        """
        remaining = self.active_children(tree)
        if not remaining:
            raise PlanError("cannot split a single-node task rooted at %r" % (self.root,))
        leftmost = remaining[0]
        left = SubtreeTask(leftmost)
        rest = SubtreeTask(self.root, self.skipped + (leftmost,))
        return left, rest


def binary_divide(tree, n_tasks):
    """Divide the whole processing tree into at least ``n_tasks`` tasks.

    Repeatedly splits the largest splittable task, so sizes stay balanced
    (each split halves).  Stops when the task count reaches ``n_tasks``
    or no task can be split further (all single nodes).  PT uses
    ``n_tasks = 32 * n_processors`` (Section 3.4).
    """
    if n_tasks < 1:
        raise PlanError("n_tasks must be >= 1, got %d" % n_tasks)
    tasks = [SubtreeTask(tree.root)]
    while len(tasks) < n_tasks:
        # Pick the largest task that still has an edge to cut; ties go to
        # the earliest task so division is deterministic.
        best = None
        best_size = 1
        for i, task in enumerate(tasks):
            size = task.size(tree)
            if size > best_size and task.active_children(tree):
                best = i
                best_size = size
        if best is None:
            break
        left, rest = tasks[best].split(tree)
        tasks[best] = left
        tasks.append(rest)
    return tasks

"""Cube lattice and BUC processing-tree machinery."""

from .lattice import ALL, CubeLattice, common_prefix_length, is_prefix, subset_positions
from .processing_tree import ProcessingTree, SubtreeTask, binary_divide

__all__ = [
    "ALL",
    "CubeLattice",
    "is_prefix",
    "subset_positions",
    "common_prefix_length",
    "ProcessingTree",
    "SubtreeTask",
    "binary_divide",
]

"""The cube lattice: every GROUP BY over a set of dimensions.

A *cuboid* (group-by) is represented as a tuple of dimension names in
schema order; the empty tuple is the ``all`` node (no GROUP BY).  For
``d`` dimensions the lattice has ``2**d`` cuboids, and its edges connect
each cuboid to the parents with one more dimension — the "potential
computing paths" of Figure 2.4(a).
"""

from itertools import combinations

from ..errors import SchemaError

ALL = ()


class CubeLattice:
    """The lattice of all ``2**d`` cuboids over an ordered dimension set."""

    def __init__(self, dims):
        self.dims = tuple(dims)
        if len(set(self.dims)) != len(self.dims):
            raise SchemaError("duplicate dimensions: %r" % (self.dims,))
        self._order = {name: i for i, name in enumerate(self.dims)}

    def __len__(self):
        return 2 ** len(self.dims)

    def canonical(self, cuboid):
        """Normalize a cuboid to schema order, validating its dimensions."""
        try:
            return tuple(sorted(cuboid, key=self._order.__getitem__))
        except KeyError as exc:
            raise SchemaError("unknown dimension %s in cuboid %r" % (exc, cuboid)) from None

    def cuboids(self, include_all=True):
        """All cuboids, from most dimensions to fewest (top-down order)."""
        out = []
        for size in range(len(self.dims), 0, -1):
            out.extend(combinations(self.dims, size))
        if include_all:
            out.append(ALL)
        return out

    def levels(self):
        """Cuboids grouped by dimension count, descending (PipeSort levels)."""
        return [
            list(combinations(self.dims, size)) for size in range(len(self.dims), -1, -1)
        ]

    def parents(self, cuboid):
        """Cuboids with exactly one more dimension (potential sources)."""
        cuboid_set = set(cuboid)
        out = []
        for dim in self.dims:
            if dim not in cuboid_set:
                out.append(self.canonical(cuboid + (dim,)))
        return out

    def children(self, cuboid):
        """Cuboids with exactly one dimension removed."""
        return [tuple(d for d in cuboid if d != drop) for drop in cuboid]


def is_prefix(candidate, previous):
    """True when ``candidate``'s dimensions are a prefix of ``previous``'s.

    Prefix affinity (Section 3.3.2): the previous task's sorted container
    can be aggregated directly — groups for the shorter key are contiguous.
    """
    return len(candidate) <= len(previous) and tuple(previous[: len(candidate)]) == tuple(
        candidate
    )


def subset_positions(candidate, previous):
    """Positions of ``candidate``'s dims inside ``previous``, or ``None``.

    Subset affinity: when every dimension of the new task appears in the
    previous task, the previous container's cells can be projected onto
    those positions instead of re-scanning the raw data.  Returns the
    index of each candidate dimension within ``previous`` (in candidate
    order), or ``None`` when not a subset.
    """
    positions = []
    lookup = {name: i for i, name in enumerate(previous)}
    for name in candidate:
        index = lookup.get(name)
        if index is None:
            return None
        positions.append(index)
    return tuple(positions)


def common_prefix_length(a, b):
    """Number of leading dimensions the two cuboids share."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n

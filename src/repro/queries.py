"""User-facing iceberg-query API.

The thesis' prototypical query is::

    SELECT A, B, ..., SUM(measure)
    FROM R
    GROUP BY A, B, ...
    HAVING COUNT(*) >= T

:func:`iceberg_query` answers one such group-by;
:func:`iceberg_cube` answers it for *every* combination of the GROUP BY
attributes (the CUBE BY form of Section 2.3), dispatching to any of the
library's algorithms; :class:`IcebergQuery` is the declarative form both
build on.
"""

from .core.aggregates import DERIVABLE_FROM_COUNT_SUM, get_aggregate
from .core.naive import naive_cuboid
from .core.thresholds import CountThreshold, as_threshold
from .errors import PlanError, SchemaError

#: name -> parallel algorithm class, resolved lazily to avoid cycles.
_ALGORITHM_NAMES = ("rp", "bpp", "asl", "pt", "aht")


class IcebergQuery:
    """A declarative iceberg query (one group-by or a full cube)."""

    def __init__(self, group_by, minsup=1, aggregate="sum", cube=False, having=None):
        """``minsup`` is the count threshold shorthand; ``having`` takes
        any :class:`~repro.core.thresholds.Threshold` and overrides it
        (e.g. ``SumThreshold(1000)`` for ``HAVING SUM(x) >= 1000``)."""
        self.group_by = tuple(group_by)
        if not self.group_by:
            raise PlanError("GROUP BY needs at least one attribute")
        self.threshold = as_threshold(having if having is not None else minsup)
        self.minsup = (
            self.threshold.min_count
            if isinstance(self.threshold, CountThreshold)
            else None
        )
        self.aggregate = aggregate.lower()
        get_aggregate(self.aggregate)  # validate early
        self.cube = cube

    def execute(self, target):
        """Run this query against any answering surface.

        ``target`` may be a :class:`~repro.data.relation.Relation` (the
        group-by is computed fresh) or anything with the serving
        ``query(cuboid, minsup=...)`` surface — a
        :class:`~repro.online.materialize.LeafMaterialization`, a
        :class:`~repro.serve.store.CubeStore` or a live
        :class:`~repro.serve.server.CubeServer`.  Returns
        ``{cell: value}`` for a single group-by, or ``{cuboid: {cell:
        value}}`` when the query was built with ``cube=True``.

        Served targets hold ``(count, sum)`` cells, so only COUNT/SUM/
        AVG are answerable there; holistic aggregates need the relation.
        """
        from .data.relation import Relation

        if isinstance(target, Relation):
            if self.cube:
                from itertools import combinations

                out = {}
                for size in range(len(self.group_by), 0, -1):
                    for cuboid in combinations(self.group_by, size):
                        out[cuboid] = iceberg_query(
                            target, cuboid, aggregate=self.aggregate,
                            having=self.threshold,
                        )
                return out
            return iceberg_query(target, self.group_by, aggregate=self.aggregate,
                                 having=self.threshold)
        if not hasattr(target, "query"):
            raise PlanError(
                "cannot execute against %r: need a Relation or an object "
                "with a query(cuboid, minsup=...) method" % (target,)
            )
        if self.aggregate not in DERIVABLE_FROM_COUNT_SUM:
            raise PlanError(
                "aggregate %r needs the raw relation; served cells only "
                "carry (count, sum)" % (self.aggregate,)
            )
        if self.cube:
            from itertools import combinations

            out = {}
            for size in range(len(self.group_by), 0, -1):
                for cuboid in combinations(self.group_by, size):
                    out[cuboid] = self._served_cells(target, cuboid)
            return out
        return self._served_cells(target, self.group_by)

    def _served_cells(self, target, cuboid):
        """One served group-by, with aggregate values derived."""
        from .core.aggregates import from_count_sum

        answer = target.query(cuboid, minsup=self.threshold)
        cells = getattr(answer, "cells", answer)  # unwrap a QueryAnswer
        return {
            cell: from_count_sum(self.aggregate, count, value)
            for cell, (count, value) in cells.items()
        }

    def sql(self, table="R", measure="measure"):
        """The query rendered as the thesis' SQL form (for display)."""
        attrs = ", ".join(self.group_by)
        by = "CUBE BY" if self.cube else "GROUP BY"
        return (
            "SELECT %s, %s(%s) FROM %s %s %s HAVING %s"
            % (attrs, self.aggregate.upper(), measure, table, by, attrs,
               self.threshold.describe())
        )

    def __repr__(self):
        return "IcebergQuery(%s)" % self.sql()


def resolve_algorithm(algorithm):
    """Turn an algorithm name or instance into a runnable instance."""
    from .parallel import AHT, ASL, BPP, PT, RP

    classes = {"rp": RP, "bpp": BPP, "asl": ASL, "pt": PT, "aht": AHT}
    if isinstance(algorithm, str):
        try:
            return classes[algorithm.lower()]()
        except KeyError:
            raise PlanError(
                "unknown algorithm %r (have %s)" % (algorithm, ", ".join(_ALGORITHM_NAMES))
            ) from None
    if hasattr(algorithm, "run"):
        return algorithm
    raise PlanError("algorithm must be a name or an instance, got %r" % (algorithm,))


def iceberg_cube(relation, dims=None, minsup=1, algorithm="pt", cluster_spec=None,
                 cost_model=None, fault_plan=None):
    """Compute the full iceberg cube.

    ``algorithm`` may be a name (``"rp"``, ``"bpp"``, ``"asl"``,
    ``"pt"``, ``"aht"``) or a configured instance.  ``fault_plan`` (a
    :class:`~repro.cluster.faults.FaultPlan`) injects node crashes,
    transient task failures and stragglers into the simulated run; the
    cube stays exact as long as one processor survives.  Returns the
    :class:`~repro.parallel.base.ParallelRunResult` — ``.result`` holds
    the cells, ``.simulation`` the modeled cluster timing (plus recovery
    telemetry for faulted runs).
    """
    algo = resolve_algorithm(algorithm)
    return algo.run(relation, dims=dims, minsup=minsup, cluster_spec=cluster_spec,
                    cost_model=cost_model, fault_plan=fault_plan)


def iceberg_query(relation, group_by, minsup=1, aggregate="sum", having=None):
    """Answer one iceberg group-by exactly, returning ``{cell: value}``.

    COUNT/SUM/AVG come from the standard ``(count, sum)`` cell pair; the
    remaining aggregates (MIN/MAX/MEDIAN...) are evaluated with their
    own accumulators on a dedicated pass.  ``having`` accepts any
    :class:`~repro.core.thresholds.Threshold` and overrides ``minsup``.
    """
    query = IcebergQuery(group_by, minsup=minsup, aggregate=aggregate, having=having)
    missing = [d for d in query.group_by if d not in relation.dims]
    if missing:
        raise SchemaError("unknown dimensions %r (have %r)" % (missing, relation.dims))
    if query.aggregate in DERIVABLE_FROM_COUNT_SUM:
        cells = naive_cuboid(relation, query.group_by)
        out = {}
        for cell, (count, total) in cells.items():
            if query.threshold.qualifies(count, total):
                from .core.aggregates import from_count_sum

                out[cell] = from_count_sum(query.aggregate, count, total)
        return out
    return _holistic_query(relation, query)


def _holistic_query(relation, query):
    """General-aggregate path: run the aggregate's own accumulator."""
    func = get_aggregate(query.aggregate)
    positions = relation.dim_indices(query.group_by)
    states = {}
    counts = {}
    sums = {}
    for i, row in enumerate(relation.rows):
        key = tuple(row[p] for p in positions)
        if key not in states:
            states[key] = func.initial()
            counts[key] = 0
            sums[key] = 0.0
        states[key] = func.step(states[key], relation.measures[i])
        counts[key] += 1
        sums[key] += relation.measures[i]
    return {
        cell: func.final(state)
        for cell, state in states.items()
        if query.threshold.qualifies(counts[cell], sums[cell])
    }

"""Cell writers: where algorithms put qualifying cells, and in what order.

The thesis' Figure 3.4 distinction — depth-first vs breadth-first
*writing* — is an I/O-pattern property, so the writer records not just
the cells but the order in which cuboids were touched.  Every change of
target cuboid between consecutive writes is a "scatter" event; the
simulated disk charges a seek for each (Section 3.2.2: depth-first
writing scatters across cuboid files, breadth-first completes one cuboid
before moving on).
"""

from .result import CELL_FIELD_BYTES, CubeResult


class ResultWriter:
    """Collects cells into a :class:`CubeResult` and logs the I/O pattern."""

    def __init__(self, dims):
        self.result = CubeResult(dims)
        self.cells_written = 0
        self.bytes_written = 0
        self.cuboid_switches = 0
        self._last_cuboid = None

    def write_cell(self, cuboid, cell, count, value):
        """Write one cell; counts a cuboid switch when the target changes."""
        if cuboid != self._last_cuboid:
            self.cuboid_switches += 1
            self._last_cuboid = cuboid
        self.cells_written += 1
        self.bytes_written += (len(cuboid) + 2) * CELL_FIELD_BYTES
        self.result.add_cell(cuboid, cell, count, value)

    def write_block(self, cuboid, items):
        """Write a whole cuboid block of ``(cell, count, value)`` at once.

        One cuboid switch at most, however many cells — the benefit of
        breadth-first writing.
        """
        first = True
        for cell, count, value in items:
            if first:
                if cuboid != self._last_cuboid:
                    self.cuboid_switches += 1
                    self._last_cuboid = cuboid
                first = False
            self.cells_written += 1
            self.bytes_written += (len(cuboid) + 2) * CELL_FIELD_BYTES
            self.result.add_cell(cuboid, cell, count, value)

    def write_columns(self, cuboid, cells, counts, values):
        """Write one cuboid block given as parallel columns.

        Semantics match :meth:`write_block` (one cuboid switch at most,
        nothing recorded for an empty block) but the cells go into the
        result in bulk — the fast kernels hand whole cuboid levels over
        without building per-cell item tuples first.
        """
        n = len(cells)
        if not n:
            return
        if cuboid != self._last_cuboid:
            self.cuboid_switches += 1
            self._last_cuboid = cuboid
        self.cells_written += n
        self.bytes_written += (len(cuboid) + 2) * CELL_FIELD_BYTES * n
        self.result.add_columns(cuboid, cells, counts, values)

    def snapshot(self):
        """Current ``(cells, bytes, switches)`` — for per-task deltas."""
        return self.cells_written, self.bytes_written, self.cuboid_switches

    @staticmethod
    def delta(before, after):
        """Difference of two snapshots as ``(cells, bytes, switches)``."""
        return tuple(b - a for a, b in zip(before, after))

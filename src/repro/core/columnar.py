"""Columnar compute kernel: bit-packed keys and counting/radix refinement.

Every algorithm in this library ultimately spends its time partitioning
row-index ranges by one dimension at a time.  The seed
:class:`~repro.core.buc.BucEngine` does that with a per-level
``sorted(key=...)`` over Python lists — correct, and priced faithfully
for the simulated cluster, but far from what the hardware allows.  This
module supplies the machinery for real speed:

* :class:`KeyPacking` — a bit-field layout that packs one dense
  dimension code per field into a single 63-bit integer, most
  significant field first, so *sorting by a masked packed key is
  exactly a lexicographic sort* of the corresponding dimension prefix
  and a cell's identity is one ``int`` instead of a tuple.
* :class:`ColumnarFrame` — a column-major snapshot of a relation:
  one ``array('q')`` buffer per dimension, an ``array('d')`` measure
  buffer, and (cardinalities permitting) the packed key of every row.
  Buffers are cheap to pickle and are shared copy-on-write by forked
  worker processes.
* Swappable refinement kernels for :class:`~repro.core.buc.BucEngine`:
  :class:`PythonKernel` (the seed behaviour, bit-for-bit, including its
  OpStats pricing), :class:`ColumnarKernel` (stdlib counting/radix
  passes over the column buffers — BUC's recursion is an MSD radix sort
  over the packed key fields, and each level's refinement becomes one
  counting pass), and :class:`NumpyKernel` (vectorised
  ``argsort``/``bincount``/``reduceat`` for large ranges, falling back
  to the stdlib path for the small ranges deep in the recursion where
  vectorisation overhead dominates).
* :func:`aggregate_cuboid` — one-pass group-by over the packed keys,
  used by the fast store-build backend and anywhere a single cuboid is
  needed without the full BUC recursion.

If the per-dimension cardinalities need more than
:data:`MAX_KEY_BITS` bits in total, packing is impossible in a machine
word; the frame then carries no key buffer, a warning is logged once,
and every consumer falls back to tuple keys (the
``test_columnar`` suite covers the fallback path).

``numpy`` is optional: :data:`HAS_NUMPY` reflects availability and
``kernel="auto"`` picks the fastest implementation present.
"""

import logging
from array import array

from ..errors import PlanError
from .thresholds import AndThreshold, CountThreshold, SumThreshold

try:  # optional fast path; the stdlib kernels never need it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in the test env
    _np = None

HAS_NUMPY = _np is not None

#: Packed keys must fit a signed 64-bit machine word (``array('q')``).
MAX_KEY_BITS = 63

#: Ranges shorter than this are refined with the stdlib path even by the
#: numpy kernel: per-call vectorisation overhead beats the loop there.
SMALL_RANGE = 32

log = logging.getLogger(__name__)


def bits_for(cardinality):
    """Bits needed to store codes ``0 .. cardinality-1`` (at least 1)."""
    return max(1, int(max(0, cardinality - 1)).bit_length())


class KeyPacking:
    """Bit-field layout for packing one row's dim codes into one int.

    Field order follows dimension order with the *first* dimension in
    the most significant bits, so for any dimension prefix ``D1..Dk``,
    ``key & mask_for(positions)`` orders rows exactly like the tuple
    ``(row[D1], ..., row[Dk])`` — the property the radix refinement and
    the group-by paths rely on.
    """

    __slots__ = ("bits", "shifts", "masks", "total_bits")

    def __init__(self, bits):
        self.bits = tuple(bits)
        self.total_bits = sum(self.bits)
        shifts = []
        used = 0
        for width in self.bits:
            used += width
            shifts.append(self.total_bits - used)
        self.shifts = tuple(shifts)
        self.masks = tuple((1 << width) - 1 for width in self.bits)

    @classmethod
    def plan(cls, cardinalities, max_bits=MAX_KEY_BITS):
        """A packing over ``cardinalities``, or ``None`` on overflow."""
        bits = [bits_for(card) for card in cardinalities]
        if sum(bits) > max_bits:
            return None
        return cls(bits)

    def pack(self, row):
        """The packed key of one coded row (aligned with the layout)."""
        key = 0
        for code, shift in zip(row, self.shifts):
            key |= code << shift
        return key

    def extract(self, key, position):
        """One dimension's code out of a packed key."""
        return (key >> self.shifts[position]) & self.masks[position]

    def mask_for(self, positions):
        """The combined bit mask selecting the given dimension fields."""
        mask = 0
        for position in positions:
            mask |= self.masks[position] << self.shifts[position]
        return mask

    def unpack(self, key, positions):
        """The cell tuple for ``positions`` encoded in (masked) ``key``."""
        return tuple(
            (key >> self.shifts[p]) & self.masks[p] for p in positions
        )

    def __repr__(self):
        return "KeyPacking(bits=%r, total=%d)" % (self.bits, self.total_bits)


class ColumnarFrame:
    """Column-major snapshot of a relation restricted to ``dims``.

    Holds one ``array('q')`` per dimension, the measures as
    ``array('d')``, per-dimension cardinalities (``max code + 1``) and,
    unless the bit budget overflows, the packed key of every row.
    """

    __slots__ = ("dims", "n_rows", "columns", "measures", "cardinalities",
                 "packing", "keys")

    def __init__(self, dims, columns, measures, cardinalities, packing, keys):
        self.dims = tuple(dims)
        self.columns = columns
        self.measures = measures
        self.cardinalities = list(cardinalities)
        self.packing = packing
        self.keys = keys
        self.n_rows = len(measures)

    @classmethod
    def from_relation(cls, relation, dims=None, max_bits=MAX_KEY_BITS):
        """Build a frame (and packed keys, if they fit) from a relation."""
        if dims is None:
            dims = relation.dims
        dims = tuple(dims)
        positions = relation.dim_indices(dims)
        rows = relation.rows
        columns = []
        cardinalities = []
        for p in positions:
            column = array("q", (row[p] for row in rows))
            columns.append(column)
            cardinalities.append((max(column) + 1) if column else 0)
        measures = array("d", relation.measures)
        packing = KeyPacking.plan(cardinalities, max_bits=max_bits)
        keys = None
        if packing is not None:
            shifts = packing.shifts
            if HAS_NUMPY and rows:
                packed = _np.zeros(len(rows), dtype=_np.int64)
                for shift, column in zip(shifts, columns):
                    packed |= _np.frombuffer(column, dtype=_np.int64) << shift
                keys = array("q", bytes(0))
                keys.frombytes(packed.tobytes())
            else:
                keys = array("q", bytes(8 * len(rows)))
                for position, column in enumerate(columns):
                    shift = shifts[position]
                    if shift:
                        for i, code in enumerate(column):
                            keys[i] |= code << shift
                    else:
                        for i, code in enumerate(column):
                            keys[i] |= code
        else:
            log.warning(
                "packed keys need %d bits for cardinalities %r (budget %d); "
                "falling back to tuple keys",
                sum(bits_for(c) for c in cardinalities), cardinalities, max_bits,
            )
        return cls(dims, columns, measures, cardinalities, packing, keys)

    def __len__(self):
        return self.n_rows

    def row_key(self, i, positions):
        """The cell tuple of row ``i`` over ``positions`` (fallback path)."""
        return tuple(self.columns[p][i] for p in positions)

    # ------------------------------------------------------------------
    # shared-memory shipping (one copy of the input for every worker)
    # ------------------------------------------------------------------
    def buffer_nbytes(self):
        """Bytes needed to lay every column buffer out contiguously."""
        per_row = 8 * (len(self.columns) + 1 + (1 if self.keys is not None
                                                else 0))
        return per_row * self.n_rows

    def buffer_meta(self):
        """The picklable header that, with the raw buffer, rebuilds the
        frame: everything except the row data itself."""
        return {
            "dims": self.dims,
            "cardinalities": list(self.cardinalities),
            "n_rows": self.n_rows,
            "has_keys": self.keys is not None,
        }

    def write_buffers(self, buf):
        """Copy dimension columns, measures and packed keys into ``buf``
        (a writable buffer of at least :meth:`buffer_nbytes` bytes), in
        the fixed layout :meth:`from_buffers` reads back."""
        view = memoryview(buf)
        offset = 0
        parts = list(self.columns) + [self.measures]
        if self.keys is not None:
            parts.append(self.keys)
        for part in parts:
            raw = part.tobytes()
            view[offset:offset + len(raw)] = raw
            offset += len(raw)
        return offset

    @classmethod
    def from_buffers(cls, meta, buf):
        """Rebuild a frame over a shared buffer — zero copies of row data.

        Columns come back as typed ``memoryview`` casts into ``buf``;
        every kernel consumes them exactly like ``array`` objects
        (indexing, ``tolist``, ``frombuffer``).  The caller must keep
        the underlying mapping alive for the frame's lifetime.
        """
        dims = tuple(meta["dims"])
        cardinalities = list(meta["cardinalities"])
        n_rows = meta["n_rows"]
        view = memoryview(buf)
        stride = 8 * n_rows
        offset = 0
        columns = []
        for _ in dims:
            columns.append(view[offset:offset + stride].cast("q"))
            offset += stride
        measures = view[offset:offset + stride].cast("d")
        offset += stride
        keys = None
        packing = KeyPacking.plan(cardinalities)
        if meta["has_keys"]:
            keys = view[offset:offset + stride].cast("q")
        return cls(dims, columns, measures, cardinalities, packing, keys)

    def __repr__(self):
        packed = self.packing.total_bits if self.packing is not None else None
        return "ColumnarFrame(dims=%r, rows=%d, key_bits=%r)" % (
            self.dims, self.n_rows, packed,
        )


# ----------------------------------------------------------------------
# group-by over packed keys
# ----------------------------------------------------------------------
def aggregate_cuboid(frame, cuboid, threshold=None, use_numpy=None):
    """One group-by over ``frame``: ``{cell: (count, sum)}``.

    ``cuboid`` is a tuple of dimension names (a subset of the frame's
    dims, any order).  With packed keys the cell identity is a single
    masked integer — hashed once, no tuple allocation per row; the
    numpy path replaces the Python loop with ``argsort`` + ``reduceat``.
    ``threshold=None`` keeps every cell (the minsup-1 store build).
    """
    positions = []
    for name in cuboid:
        try:
            positions.append(frame.dims.index(name))
        except ValueError:
            raise PlanError(
                "unknown dimension %r (frame has %r)" % (name, frame.dims)
            ) from None
    if use_numpy is None:
        use_numpy = HAS_NUMPY
    if frame.packing is None or frame.keys is None:
        cells = _aggregate_tuple_keys(frame, positions)
    elif use_numpy and HAS_NUMPY and frame.n_rows >= SMALL_RANGE:
        cells = _aggregate_packed_numpy(frame, positions)
    else:
        cells = _aggregate_packed(frame, positions)
    if threshold is None:
        return cells
    return {
        cell: (count, total)
        for cell, (count, total) in cells.items()
        if threshold.qualifies(count, total)
    }


def _aggregate_packed(frame, positions):
    packing = frame.packing
    mask = packing.mask_for(positions)
    keys = frame.keys
    measures = frame.measures
    groups = {}
    get = groups.get
    for i in range(frame.n_rows):
        masked = keys[i] & mask
        acc = get(masked)
        if acc is None:
            groups[masked] = [1, measures[i]]
        else:
            acc[0] += 1
            acc[1] += measures[i]
    unpack = packing.unpack
    return {
        unpack(masked, positions): (count, total)
        for masked, (count, total) in groups.items()
    }


def _aggregate_packed_numpy(frame, positions):
    packing = frame.packing
    mask = packing.mask_for(positions)
    keys = _np.frombuffer(frame.keys, dtype=_np.int64) & mask
    measures = _np.frombuffer(frame.measures, dtype=_np.float64)
    order = _np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    bounds = _np.flatnonzero(
        _np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    counts = _np.diff(_np.append(bounds, len(sorted_keys)))
    sums = _np.add.reduceat(measures[order], bounds)
    unpack = packing.unpack
    out = {}
    for masked, count, total in zip(
        sorted_keys[bounds].tolist(), counts.tolist(), sums.tolist()
    ):
        out[unpack(masked, positions)] = (count, total)
    return out


def _aggregate_tuple_keys(frame, positions):
    columns = [frame.columns[p] for p in positions]
    measures = frame.measures
    groups = {}
    get = groups.get
    for i in range(frame.n_rows):
        cell = tuple(column[i] for column in columns)
        acc = get(cell)
        if acc is None:
            groups[cell] = [1, measures[i]]
        else:
            acc[0] += 1
            acc[1] += measures[i]
    return {cell: (count, total) for cell, (count, total) in groups.items()}


def _threshold_mask(threshold, counts, sums):
    """A boolean keep-mask for ``threshold`` over group count/sum arrays,
    or ``None`` when the threshold's shape is not vectorisable (the
    caller then falls back to per-group ``qualifies`` calls)."""
    if isinstance(threshold, CountThreshold):
        return counts >= threshold.min_count
    if isinstance(threshold, SumThreshold):
        return sums >= threshold.min_sum
    if isinstance(threshold, AndThreshold):
        mask = None
        for condition in threshold.conditions:
            sub = _threshold_mask(condition, counts, sums)
            if sub is None:
                return None
            mask = sub if mask is None else (mask & sub)
        return mask
    return None


def _level_from_groups(groups):
    """Pack root ``(cell, s, e, count, sum)`` groups into level state.

    Level state is the breadth-first engine's working set for one
    cuboid: ``(cells, starts, counts, sums)`` in parallel — a list of
    cell tuples plus positional columns (plain lists here; the numpy
    kernel overrides with arrays so a whole cuboid level flows through
    vectorised code without per-group tuple traffic).
    """
    return (
        [g[0] for g in groups],
        [g[1] for g in groups],
        [g[3] for g in groups],
        [g[4] for g in groups],
    )


def _refine_level_loop(kernel, cells, starts, counts, position, stats,
                       threshold):
    """Reference ``refine_level``: loop ``refine`` over every group."""
    qualifies = threshold.qualifies if threshold is not None else None
    out_cells = []
    out_starts = []
    out_counts = []
    out_sums = []
    for cell, s, c in zip(cells, starts, counts):
        for value, s2, _e2, count, total in kernel.refine(
            s, s + c, position, stats
        ):
            if qualifies is None or qualifies(count, total):
                out_cells.append(cell + (value,))
                out_starts.append(s2)
                out_counts.append(count)
                out_sums.append(total)
    return out_cells, out_starts, out_counts, out_sums


# ----------------------------------------------------------------------
# refinement kernels
# ----------------------------------------------------------------------
class PythonKernel:
    """The seed refinement, verbatim: row-major lists, per-level
    ``sorted(key=...)`` (or the BUC paper's counting refinement when
    ``counting_sort`` is on).  This is the default kernel — the
    simulated cluster's OpStats pricing and every cell it produces are
    identical to the pre-kernel engine.
    """

    name = "python"

    def __init__(self, relation, dims, counting_sort=False):
        positions = relation.dim_indices(dims)
        rows = relation.rows
        self.columns = [[row[p] for row in rows] for p in positions]
        self.cardinalities = [
            (max(col) + 1 if col else 0) for col in self.columns
        ]
        self.measures = list(relation.measures)
        self.idx = list(range(len(rows)))
        self.counting_sort = counting_sort

    def __len__(self):
        return len(self.idx)

    def all_aggregate(self):
        """``(count, sum)`` of the whole input — the ``all`` cell."""
        return len(self.measures), sum(self.measures)

    def refine_segments(self, segments, position, stats, threshold=None):
        """Refine several disjoint ascending ranges by one dimension.

        Returns one group list per segment; with ``threshold`` given,
        non-qualifying groups are dropped before they are returned (the
        stats still charge the full refinement — pruning changes what
        the caller sees, not what the work cost).  The base
        implementation simply loops :meth:`refine`; vectorised kernels
        override it to partition every segment in a single pass — the
        call count then scales with processing-tree *edges*, not
        qualifying *cells*.
        """
        out = [self.refine(s, e, position, stats) for s, e in segments]
        if threshold is None:
            return out
        qualifies = threshold.qualifies
        return [
            [g for g in groups if qualifies(g[3], g[4])] for groups in out
        ]

    def level_from_groups(self, groups):
        """Pack root groups into this kernel's level-state representation."""
        return _level_from_groups(groups)

    def refine_level(self, level, position, stats, threshold=None,
                     need_rows=True):
        """Refine one whole cuboid level into the next: every group of
        ``level`` partitioned by ``position``, pruned by ``threshold``,
        returned as new level state (same representation as the input).
        ``need_rows=False`` promises the caller will not descend into
        the result (a leaf cuboid) — kernels may then skip maintaining
        the row permutation.
        """
        cells, starts, counts, _sums = level
        return _refine_level_loop(self, cells, starts, counts, position,
                                  stats, threshold)

    def refine(self, start, end, position, stats):
        """Sort ``idx[start:end]`` by one column and split into groups.

        Returns a list of ``(value, s, e, count, sum)``; charges the
        sort (or linear bucketing) to ``stats``.
        """
        idx = self.idx
        col = self.columns[position]
        card = self.cardinalities[position]
        if self.counting_sort and 0 < card <= 4 * (end - start):
            return self._refine_counting(start, end, col, stats)
        block = sorted(idx[start:end], key=col.__getitem__)
        idx[start:end] = block
        stats.add_sort(end - start)
        measures = self.measures
        groups = []
        s = start
        while s < end:
            value = col[idx[s]]
            total = measures[idx[s]]
            e = s + 1
            while e < end and col[idx[e]] == value:
                total += measures[idx[e]]
                e += 1
            groups.append((value, s, e, e - s, total))
            s = e
        stats.add_scan(end - start)
        stats.add_groups(len(groups))
        return groups

    def _refine_counting(self, start, end, col, stats):
        """Linear-time refinement: bucket the range by code.

        One pass distributes rows into per-value buckets, one pass lays
        them back contiguously.  Charged as partition moves (linear)
        plus one comparison-sort of the *distinct values* — the
        ``sorted(buckets)`` pass below is real work and the ablation
        bench prices it honestly.
        """
        idx = self.idx
        measures = self.measures
        buckets = {}
        for i in idx[start:end]:
            value = col[i]
            bucket = buckets.get(value)
            if bucket is None:
                buckets[value] = bucket = []
            bucket.append(i)
        groups = []
        position = start
        for value in sorted(buckets):
            bucket = buckets[value]
            idx[position : position + len(bucket)] = bucket
            total = 0.0
            for i in bucket:
                total += measures[i]
            groups.append((value, position, position + len(bucket), len(bucket), total))
            position += len(bucket)
        stats.partition_moves += 2 * (end - start)
        stats.add_sort(len(buckets))
        stats.add_scan(end - start)
        stats.add_groups(len(groups))
        return groups


class ColumnarKernel:
    """Stdlib columnar refinement over ``array('q')`` buffers.

    Low-cardinality levels (``card <= 4 * range``) are refined with a
    dense counting pass — two linear sweeps, no comparator calls — which
    is exactly one digit of an MSD radix sort over the packed key
    layout; high-cardinality levels fall back to timsort on the column
    codes.  Group order (ascending code, stable within a code) and
    float accumulation order match :class:`PythonKernel` exactly, so
    cells are bit-identical.
    """

    name = "columnar"

    def __init__(self, frame):
        self.frame = frame
        # Hot loops run over plain lists: CPython list indexing returns
        # cached small ints / existing objects, while array('q') boxes a
        # fresh int per access.  The frame keeps the compact buffers for
        # pickling / copy-on-write sharing; the kernel trades memory for
        # per-access speed once at construction.
        self.columns = [column.tolist() for column in frame.columns]
        self.cardinalities = frame.cardinalities
        self.measures = frame.measures.tolist()
        self.idx = list(range(frame.n_rows))

    @classmethod
    def from_relation(cls, relation, dims, counting_sort=False):
        """Build the kernel (and its frame) straight from a relation."""
        return cls(ColumnarFrame.from_relation(relation, dims))

    def __len__(self):
        return len(self.idx)

    def all_aggregate(self):
        return len(self.measures), sum(self.measures)

    def refine_segments(self, segments, position, stats, threshold=None):
        """Refine several disjoint ascending ranges by one dimension."""
        out = [self.refine(s, e, position, stats) for s, e in segments]
        if threshold is None:
            return out
        qualifies = threshold.qualifies
        return [
            [g for g in groups if qualifies(g[3], g[4])] for groups in out
        ]

    def level_from_groups(self, groups):
        return _level_from_groups(groups)

    def refine_level(self, level, position, stats, threshold=None,
                     need_rows=True):
        cells, starts, counts, _sums = level
        return _refine_level_loop(self, cells, starts, counts, position,
                                  stats, threshold)

    def refine(self, start, end, position, stats):
        n = end - start
        card = self.cardinalities[position]
        # Counting pays off once the range amortises the O(card) bucket
        # bookkeeping; tiny ranges are cheaper under timsort.
        if n >= SMALL_RANGE and 0 < card <= 4 * n:
            return self._refine_counting(start, end, position, stats)
        return self._refine_sorted(start, end, position, stats)

    def _refine_sorted(self, start, end, position, stats):
        idx = self.idx
        col = self.columns[position]
        block = sorted(idx[start:end], key=col.__getitem__)
        idx[start:end] = block
        stats.add_sort(end - start)
        measures = self.measures
        groups = []
        s = start
        while s < end:
            value = col[idx[s]]
            total = measures[idx[s]]
            e = s + 1
            while e < end and col[idx[e]] == value:
                total += measures[idx[e]]
                e += 1
            groups.append((value, s, e, e - s, total))
            s = e
        stats.add_scan(end - start)
        stats.add_groups(len(groups))
        return groups

    def _refine_counting(self, start, end, position, stats):
        """One radix digit: count codes, place rows, sum measures."""
        idx = self.idx
        col = self.columns[position]
        card = self.cardinalities[position]
        n = end - start
        seg = idx[start:end]
        counts = [0] * card
        for i in seg:
            counts[col[i]] += 1
        starts = [0] * card
        cursor = [0] * card
        position_acc = start
        for value in range(card):
            count = counts[value]
            if count:
                starts[value] = position_acc
                cursor[value] = position_acc
                position_acc += count
        sums = [0.0] * card
        measures = self.measures
        for i in seg:
            value = col[i]
            idx[cursor[value]] = i
            cursor[value] += 1
            sums[value] += measures[i]
        groups = []
        for value in range(card):
            count = counts[value]
            if count:
                s = starts[value]
                groups.append((value, s, s + count, count, sums[value]))
        stats.partition_moves += 2 * n
        stats.add_sort(len(groups))
        stats.add_scan(n)
        stats.add_groups(len(groups))
        return groups


class NumpyKernel(ColumnarKernel):
    """Columnar refinement with a vectorised fast path.

    Single large ranges are refined with a stable ``argsort`` (numpy
    selects radix sort for integer dtypes), boundary detection by
    vectorised comparison, and per-group sums via ``np.add.reduceat``.
    The real win is :meth:`refine_segments`: breadth-first BUC refines
    *every* sibling group of a cuboid by the same dimension, so all
    segments are partitioned in one pass over the composite key
    ``segment_id * cardinality + code`` — one vectorised call per
    processing-tree edge instead of one per qualifying cell.  Tiny
    workloads fall back to the stdlib path, whose per-call constant is
    smaller than numpy's.
    """

    name = "numpy"

    def __init__(self, frame):
        if not HAS_NUMPY:  # pragma: no cover - guarded by resolve_kernel
            raise PlanError("numpy kernel requested but numpy is unavailable")
        super().__init__(frame)
        self._np_columns = [
            _np.frombuffer(column, dtype=_np.int64) if len(column) else
            _np.empty(0, dtype=_np.int64)
            for column in frame.columns
        ]
        self._np_measures = (
            _np.frombuffer(frame.measures, dtype=_np.float64)
            if frame.n_rows else _np.empty(0, dtype=_np.float64)
        )
        # The permutation lives in one numpy array; both the vectorised
        # and the stdlib small-range paths read and write it, so results
        # are identical whichever path a range takes.
        self._np_idx = _np.arange(frame.n_rows, dtype=_np.int64)
        self.idx = self._np_idx  # shared view for introspection/tests

    def refine_segments(self, segments, position, stats, threshold=None):
        total = 0
        for s, e in segments:
            total += e - s
        card = self.cardinalities[position]
        if (total < SMALL_RANGE or card <= 0
                or len(segments) * card >= (1 << 62)):
            return super().refine_segments(segments, position, stats,
                                           threshold)
        n_segs = len(segments)
        starts = _np.fromiter((s for s, _e in segments), dtype=_np.int64,
                              count=n_segs)
        lengths = _np.fromiter((e - s for s, e in segments), dtype=_np.int64,
                               count=n_segs)
        # Ragged arange: the absolute idx positions of every segment row.
        offsets = _np.concatenate(([0], _np.cumsum(lengths)[:-1]))
        pos = _np.repeat(starts - offsets, lengths) + _np.arange(total)
        seg_id = _np.repeat(_np.arange(n_segs, dtype=_np.int64), lengths)
        rows = self._np_idx[pos]
        values = self._np_columns[position][rows]
        composite = seg_id * card + values
        order = _np.argsort(composite, kind="stable")
        rows = rows[order]
        self._np_idx[pos] = rows
        csort = composite[order]
        bounds = _np.flatnonzero(
            _np.concatenate(([True], csort[1:] != csort[:-1]))
        )
        counts = _np.diff(_np.append(bounds, total))
        sums = _np.add.reduceat(self._np_measures[rows], bounds)
        stats.add_sort(total)
        stats.add_scan(total)
        stats.add_groups(len(bounds))
        codes = csort[bounds]
        group_pos = pos[bounds]
        if threshold is not None:
            # Prune vectorised when the threshold shape allows it: the
            # dropped groups never become Python tuples at all.
            mask = _threshold_mask(threshold, counts, sums)
            if mask is not None:
                codes = codes[mask]
                group_pos = group_pos[mask]
                counts = counts[mask]
                sums = sums[mask]
                threshold = None
        out = [[] for _ in range(n_segs)]
        if threshold is None:
            for key, s_abs, count, total_m in zip(
                codes.tolist(), group_pos.tolist(),
                counts.tolist(), sums.tolist(),
            ):
                out[key // card].append(
                    (key % card, s_abs, s_abs + count, count, total_m)
                )
        else:
            qualifies = threshold.qualifies
            for key, s_abs, count, total_m in zip(
                codes.tolist(), group_pos.tolist(),
                counts.tolist(), sums.tolist(),
            ):
                if qualifies(count, total_m):
                    out[key // card].append(
                        (key % card, s_abs, s_abs + count, count, total_m)
                    )
        return out

    def level_from_groups(self, groups):
        """Numpy level state carries the *rows themselves*: ``(cells,
        rows, counts, sums)`` where ``rows`` concatenates every group's
        row ids in cell order.  Each refinement then works on its own
        compact arrays — no scatter back into the global permutation,
        no ragged position arithmetic to find the groups again, and
        pruning physically shrinks the working set for deeper levels.
        (Safe for the prefix cache: root ranges in ``_np_idx`` are
        never disturbed by breadth-first work.)
        """
        n = len(groups)
        if n:
            rows = _np.concatenate(
                [self._np_idx[g[1]:g[2]] for g in groups]
            )
        else:
            rows = _np.empty(0, dtype=_np.int64)
        return (
            [g[0] for g in groups],
            rows,
            _np.fromiter((g[3] for g in groups), dtype=_np.int64, count=n),
            _np.fromiter((g[4] for g in groups), dtype=_np.float64, count=n),
        )

    def refine_level(self, level, position, stats, threshold=None,
                     need_rows=True):
        cells, rows, counts, _sums = level
        n_segs = len(cells)
        card = self.cardinalities[position]
        total = int(rows.shape[0])
        if (total < SMALL_RANGE or card <= 0
                or n_segs * card >= (1 << 62)):
            return self._refine_level_small(cells, rows, counts, position,
                                            stats, threshold)
        seg_id = _np.repeat(_np.arange(n_segs, dtype=_np.int64), counts)
        composite = seg_id * card + self._np_columns[position][rows]
        bins = n_segs * card
        if not need_rows and bins <= 4 * total + 1024:
            # Leaf cuboid: the recursion never descends, so no row
            # permutation is needed — counts and sums come from two
            # linear bincount passes, no sort at all.  (Exact for the
            # usual integer-valued measures; float measures may differ
            # from the sorted path in accumulation order, within the
            # result tolerance.)
            counts_bins = _np.bincount(composite, minlength=bins)
            sums_bins = _np.bincount(
                composite, weights=self._np_measures[rows], minlength=bins
            )
            codes = _np.flatnonzero(counts_bins)
            g_counts = counts_bins[codes]
            g_sums = sums_bins[codes]
            rows = rows[:0]
        else:
            # One composite-key pass partitions the entire cuboid level:
            # rows, values, group boundaries and sums all stay in numpy
            # until the surviving cells are materialised as tuples.
            order = _np.argsort(composite, kind="stable")
            rows = rows[order]
            csort = composite[order]
            bounds = _np.flatnonzero(
                _np.concatenate(([True], csort[1:] != csort[:-1]))
            )
            g_counts = _np.diff(_np.append(bounds, total))
            g_sums = _np.add.reduceat(self._np_measures[rows], bounds)
            codes = csort[bounds]
        stats.add_sort(total)
        stats.add_scan(total)
        stats.add_groups(len(codes))
        if threshold is not None:
            mask = _threshold_mask(threshold, g_counts, g_sums)
            if mask is None:
                qualifies = threshold.qualifies
                mask = _np.fromiter(
                    (qualifies(c, t) for c, t in
                     zip(g_counts.tolist(), g_sums.tolist())),
                    dtype=bool, count=len(codes),
                )
            if not mask.all():
                if len(rows):
                    rows = rows[_np.repeat(mask, g_counts)]
                codes = codes[mask]
                g_counts = g_counts[mask]
                g_sums = g_sums[mask]
        parent = (codes // card).tolist()
        value = (codes % card).tolist()
        child_cells = [cells[p] + (v,) for p, v in zip(parent, value)]
        return (child_cells, rows, g_counts, g_sums)

    def _refine_level_small(self, cells, rows, counts, position, stats,
                            threshold=None):
        """Stdlib refinement of a small level's rows-carried state."""
        col = self.columns[position]
        measures = self.measures
        qualifies = threshold.qualifies if threshold is not None else None
        out_cells = []
        out_rows = []
        out_counts = []
        out_sums = []
        rows_list = rows.tolist()
        offset = 0
        for cell, c in zip(cells, counts.tolist()):
            seg = rows_list[offset:offset + c]
            offset += c
            seg.sort(key=col.__getitem__)
            stats.add_sort(c)
            n_groups = 0
            s = 0
            while s < c:
                i = seg[s]
                value = col[i]
                total = measures[i]
                e = s + 1
                while e < c and col[seg[e]] == value:
                    total += measures[seg[e]]
                    e += 1
                n_groups += 1
                if qualifies is None or qualifies(e - s, total):
                    out_cells.append(cell + (value,))
                    out_rows.extend(seg[s:e])
                    out_counts.append(e - s)
                    out_sums.append(total)
                s = e
            stats.add_scan(c)
            stats.add_groups(n_groups)
        return (
            out_cells,
            _np.asarray(out_rows, dtype=_np.int64),
            _np.asarray(out_counts, dtype=_np.int64),
            _np.asarray(out_sums, dtype=_np.float64),
        )

    def refine(self, start, end, position, stats):
        n = end - start
        if n < SMALL_RANGE:
            return self._refine_small(start, end, position, stats)
        return self._refine_vector(start, end, position, stats)

    def _refine_small(self, start, end, position, stats):
        """Stdlib refinement of a short range of the numpy permutation."""
        seg = self._np_idx[start:end].tolist()
        col = self.columns[position]
        seg.sort(key=col.__getitem__)
        self._np_idx[start:end] = seg
        stats.add_sort(end - start)
        measures = self.measures
        groups = []
        s = 0
        n = end - start
        while s < n:
            i = seg[s]
            value = col[i]
            total = measures[i]
            e = s + 1
            while e < n and col[seg[e]] == value:
                total += measures[seg[e]]
                e += 1
            groups.append((value, start + s, start + e, e - s, total))
            s = e
        stats.add_scan(n)
        stats.add_groups(len(groups))
        return groups

    def _refine_vector(self, start, end, position, stats):
        n = end - start
        seg = self._np_idx[start:end]
        values = self._np_columns[position][seg]
        order = _np.argsort(values, kind="stable")
        seg = seg[order]
        self._np_idx[start:end] = seg
        sorted_values = values[order]
        bounds = _np.flatnonzero(
            _np.concatenate(([True], sorted_values[1:] != sorted_values[:-1]))
        )
        counts = _np.diff(_np.append(bounds, n))
        sums = _np.add.reduceat(self._np_measures[seg], bounds)
        groups = [
            (value, start + s, start + s + count, count, total)
            for value, s, count, total in zip(
                sorted_values[bounds].tolist(), bounds.tolist(),
                counts.tolist(), sums.tolist(),
            )
        ]
        stats.add_sort(n)
        stats.add_scan(n)
        stats.add_groups(len(groups))
        return groups


#: Kernel names accepted by ``BucEngine(kernel=...)`` and the CLI.
KERNELS = ("python", "columnar", "numpy", "auto")


def best_kernel_name():
    """The fastest kernel available on this interpreter."""
    return "numpy" if HAS_NUMPY else "columnar"


def resolve_kernel(kernel):
    """Normalise a kernel name to a ``(relation, dims, counting_sort)``
    factory.  ``"auto"`` resolves to the fastest available
    implementation; an object exposing ``refine`` passes through as a
    prebuilt instance factory."""
    if hasattr(kernel, "refine"):
        return lambda relation, dims, counting_sort=False: kernel
    name = str(kernel).lower()
    if name == "auto":
        name = best_kernel_name()
    if name == "python":
        return PythonKernel
    if name == "columnar":
        return ColumnarKernel.from_relation
    if name == "numpy":
        if not HAS_NUMPY:
            raise PlanError(
                "kernel 'numpy' requested but numpy is not installed; "
                "use 'columnar', 'python' or 'auto'"
            )
        return NumpyKernel.from_relation
    raise PlanError(
        "unknown kernel %r (have %s)" % (kernel, ", ".join(KERNELS))
    )


def kernel_from_frame(kernel, frame):
    """Instantiate a columnar-family kernel over a prebuilt frame.

    This is the worker-process entry point: the frame's buffers are
    shared copy-on-write after ``fork``, so no per-worker re-extraction
    happens.  ``"python"`` is rejected — it has no frame form.
    """
    name = str(kernel).lower()
    if name == "auto":
        name = best_kernel_name()
    if name == "columnar":
        return ColumnarKernel(frame)
    if name == "numpy":
        if not HAS_NUMPY:
            raise PlanError("kernel 'numpy' requested but numpy is not installed")
        return NumpyKernel(frame)
    raise PlanError(
        "kernel %r cannot run over a shared frame (use 'columnar', "
        "'numpy' or 'auto')" % (kernel,)
    )

"""Array-based cube computation (Zhao/Deshpande/Naughton, Section 2.4.1).

MOLAP-style: the data lives in a dense d-dimensional array indexed by
the dimension codes (mixed-radix addressing), so aggregation needs "no
tuple comparison, only array indexing".  Each cuboid is marginalized
from its smallest already-materialized parent by summing out one
dimension — one linear pass over the parent array per cuboid.

The thesis dismisses the approach for its problem domain in one line:
"if the data is sparse, the algorithms become infeasible, as the array
becomes huge."  This implementation honours that: it refuses inputs
whose cell-space (the cardinality product) exceeds ``max_cells``,
raising :class:`~repro.errors.PlanError` rather than allocating
gigabytes — exactly the trade the review describes.
"""

from ..errors import PlanError
from ..lattice.lattice import CubeLattice
from .result import CubeResult
from .stats import OpStats
from .thresholds import as_threshold

DEFAULT_MAX_CELLS = 2_000_000


class DenseArray:
    """A d-dimensional (count, sum) array with mixed-radix addressing."""

    __slots__ = ("shape", "strides", "size", "counts", "sums")

    def __init__(self, shape):
        self.shape = tuple(int(s) for s in shape)
        self.size = 1
        strides = []
        for extent in reversed(self.shape):
            strides.append(self.size)
            self.size *= max(1, extent)
        self.strides = tuple(reversed(strides))
        self.counts = [0] * self.size
        self.sums = [0.0] * self.size

    def offset(self, key):
        """Flat offset of a coordinate tuple."""
        off = 0
        for coordinate, stride in zip(key, self.strides):
            off += coordinate * stride
        return off

    def add(self, key, measure):
        """Accumulate one tuple into the cell at ``key``."""
        off = self.offset(key)
        self.counts[off] += 1
        self.sums[off] += measure

    def marginalize(self, drop_axis):
        """Sum out one dimension; returns the smaller array.

        One linear pass: every source cell contributes to the target
        cell with the dropped coordinate removed.
        """
        new_shape = self.shape[:drop_axis] + self.shape[drop_axis + 1 :]
        target = DenseArray(new_shape)
        extent = max(1, self.shape[drop_axis])
        stride = self.strides[drop_axis]
        # Iterate target offsets by decomposing source offsets.
        outer = stride * extent
        t_off = 0
        for base in range(0, self.size, outer):
            for inner in range(stride):
                count = 0
                total = 0.0
                src = base + inner
                for _k in range(extent):
                    count += self.counts[src]
                    total += self.sums[src]
                    src += stride
                target.counts[t_off] += count
                target.sums[t_off] += total
                t_off += 1
        return target

    def cells(self):
        """Yield ``(key, count, sum)`` for populated cells."""
        for off, count in enumerate(self.counts):
            if count:
                yield self._key_of(off), count, self.sums[off]

    def _key_of(self, off):
        key = []
        for stride, extent in zip(self.strides, self.shape):
            coordinate = (off // stride) % max(1, extent)
            key.append(coordinate)
        return tuple(key)


def array_iceberg_cube(relation, dims=None, minsup=1, max_cells=DEFAULT_MAX_CELLS):
    """Run the array-based cube; returns ``(CubeResult, OpStats)``.

    Raises :class:`PlanError` when the dense cell space exceeds
    ``max_cells`` — the sparse-data infeasibility the thesis notes.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    threshold = as_threshold(minsup)
    # Array extents must cover the code *range*, not just the distinct
    # count (codes need not be contiguous).
    positions_for_extent = relation.dim_indices(dims)
    cardinalities = [
        max((row[p] for row in relation.rows), default=-1) + 1
        for p in positions_for_extent
    ]
    space = 1
    for card in cardinalities:
        space *= max(1, card)
    if space > max_cells:
        raise PlanError(
            "dense array would need %d cells (> %d): array-based cube "
            "computation is infeasible for sparse data" % (space, max_cells)
        )
    stats = OpStats()
    stats.read_tuples += len(relation)
    result = CubeResult(dims)

    root = DenseArray(cardinalities)
    positions = relation.dim_indices(dims)
    for row, measure in zip(relation.rows, relation.measures):
        root.add(tuple(row[p] for p in positions), measure)
    stats.add_scan(len(relation))
    stats.note_items(root.size)

    lattice = CubeLattice(dims)
    arrays = {tuple(dims): root}
    # Top-down: every cuboid marginalized from its smallest parent.
    for cuboid in lattice.cuboids(include_all=False):
        if cuboid not in arrays:
            parent, axis = _best_parent(cuboid, arrays, lattice)
            arrays[cuboid] = arrays[parent].marginalize(axis)
            stats.add_scan(arrays[parent].size)
        array = arrays[cuboid]
        for key, count, total in array.cells():
            if threshold.qualifies(count, total):
                result.add_cell(cuboid, key, count, total)
        stats.add_groups(len(array.counts))
    stats.note_items(sum(a.size for a in arrays.values()))

    count = len(relation)
    measure_sum = sum(relation.measures)
    if threshold.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats


def _best_parent(cuboid, arrays, lattice):
    """The smallest materialized parent and the axis to sum out."""
    best = None
    best_size = None
    for parent in lattice.parents(cuboid):
        array = arrays.get(parent)
        if array is None:
            continue
        if best_size is None or array.size < best_size:
            best, best_size = parent, array.size
    if best is None:
        raise PlanError("no materialized parent for cuboid %r" % (cuboid,))
    dropped = (set(best) - set(cuboid)).pop()
    return best, best.index(dropped)

"""PipeSort (Agrawal et al., Section 2.4.1) — a top-down baseline.

PipeSort computes the full cube level by level.  Each cuboid is computed
from a parent one level up; a parent can feed exactly *one* child
without re-sorting (cost ``A(X)`` — the child's dimensions are a prefix
of the parent's sort order) while every other child requires a re-sort
(cost ``S(X) > A(X)``).  The planning stage picks the parent edges to
minimize total cost; chains of no-sort edges become *pipelines*, each
computed in a single ordered scan.

This implementation follows the paper's structure with a greedy
level-matching planner (largest children claim the pipeline slots of
their cheapest parents first) instead of the exact bipartite matching —
the plan is near-minimal and the execution machinery (sort heads,
pipelined prefix aggregation) is the paper's.  Like all top-down
algorithms it cannot prune below ``minsup``; the threshold is applied
only when cells are emitted, which is exactly why BUC beats it on
iceberg queries.
"""

from ..lattice.lattice import CubeLattice
from .result import CubeResult
from .stats import OpStats
from .thresholds import as_threshold


def estimated_size(cuboid, cardinalities, n_rows):
    """The papers' size estimate: cardinality product capped by |R|."""
    product = 1
    for dim in cuboid:
        product *= max(1, cardinalities[dim])
        if product >= n_rows:
            return n_rows
    return product


class PipeSortPlan:
    """The chosen parent edges and the pipelines they chain into."""

    def __init__(self, parent_of, pipelined, pipelines):
        #: child cuboid -> parent cuboid (root maps to None)
        self.parent_of = parent_of
        #: set of (parent, child) edges that reuse the parent's order
        self.pipelined = pipelined
        #: list of pipelines, each a list of cuboids from head down
        self.pipelines = pipelines

    @property
    def n_sorts(self):
        """Sorts performed: one per pipeline head."""
        return len(self.pipelines)


def plan_pipesort(dims, cardinalities, n_rows):
    """Build the PipeSort plan over the lattice of ``dims``."""
    lattice = CubeLattice(dims)
    root = tuple(dims)
    parent_of = {root: None}
    pipelined = set()
    levels = lattice.levels()  # descending size; levels[0] == [root]
    for level_index in range(1, len(levels) - 1):  # skip the all node
        children = sorted(
            levels[level_index],
            key=lambda c: -estimated_size(c, cardinalities, n_rows),
        )
        slot_taken = set()
        for child in children:
            best_parent = None
            best_cost = None
            best_piped = False
            for parent in lattice.parents(child):
                size = estimated_size(parent, cardinalities, n_rows)
                if parent not in slot_taken:
                    cost, piped = size, True  # A(X): reuse the order
                else:
                    cost, piped = 2 * size, False  # S(X): re-sort
                if best_cost is None or cost < best_cost:
                    best_parent, best_cost, best_piped = parent, cost, piped
            parent_of[child] = best_parent
            if best_piped:
                slot_taken.add(best_parent)
                pipelined.add((best_parent, child))
    pipelines = _build_pipelines(parent_of, pipelined, root)
    return PipeSortPlan(parent_of, pipelined, pipelines)


def _build_pipelines(parent_of, pipelined, root):
    """Chain pipelined edges into head-first pipelines."""
    piped_child_of = {parent: child for parent, child in pipelined}
    heads = [root] + [
        child
        for child, parent in parent_of.items()
        if parent is not None and (parent, child) not in pipelined
    ]
    pipelines = []
    for head in heads:
        chain = [head]
        node = head
        while node in piped_child_of:
            node = piped_child_of[node]
            chain.append(node)
        pipelines.append(chain)
    return pipelines


def chain_order(chain):
    """An attribute order making every chain member a prefix of the head.

    The chain runs head (largest) -> tail (smallest); the order lists
    the tail's attributes first, then each attribute added walking back
    up toward the head.
    """
    order = list(chain[-1])
    known = set(order)
    for cuboid in reversed(chain[:-1]):
        for dim in cuboid:
            if dim not in known:
                order.append(dim)
                known.add(dim)
    return tuple(order)


def pipesort_iceberg_cube(relation, dims=None, minsup=1):
    """Run PipeSort; returns ``(CubeResult, OpStats, PipeSortPlan)``.

    Cells are exact; ``minsup`` filtering happens at emission (no
    pruning — PipeSort computes the full cube).
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    minsup = as_threshold(minsup)
    cardinalities = {d: relation.cardinality(d) for d in dims}
    plan = plan_pipesort(dims, cardinalities, len(relation))
    stats = OpStats()
    stats.read_tuples += len(relation)
    result = CubeResult(dims)

    # Materialized cells per cuboid, in that cuboid's plan order, as
    # (key_in_plan_order, count, sum) lists; parents feed children.
    materialized = {}
    # Heads at higher lattice levels first, so every head's plan parent
    # is materialized before the pipeline that needs it runs.
    for pipeline in sorted(plan.pipelines, key=lambda p: -len(p[0])):
        order = chain_order(pipeline)
        head = pipeline[0]
        items = _source_items(relation, plan, head, order, materialized, stats)
        _run_pipeline(pipeline, order, items, materialized, result, minsup, stats)

    count = len(relation)
    measure_sum = sum(relation.measures)
    if minsup.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats, plan


def _source_items(relation, plan, head, order, materialized, stats):
    """Sorted (key, count, sum) items feeding a pipeline's head.

    The root pipeline sorts the raw relation; other heads re-sort their
    plan parent's materialized cells (the S(X) edge).
    """
    parent = plan.parent_of[head]
    if parent is None:
        positions = relation.dim_indices(order)
        items = [
            (tuple(row[p] for p in positions), 1, measure)
            for row, measure in zip(relation.rows, relation.measures)
        ]
    else:
        parent_order, parent_items = materialized[parent]
        index_of = {dim: i for i, dim in enumerate(parent_order)}
        positions = [index_of[dim] for dim in order]
        items = [
            (tuple(key[p] for p in positions), count, total)
            for key, count, total in parent_items
        ]
    items.sort(key=lambda item: item[0])
    stats.add_sort(len(items))
    return items


def _run_pipeline(pipeline, order, items, materialized, result, minsup, stats):
    """One ordered scan computing every cuboid on the pipeline.

    ``items`` are sorted by ``order``; each pipeline member is a prefix
    of ``order``, so its groups are contiguous.
    """
    widths = [len(cuboid) for cuboid in pipeline]
    accumulators = {w: None for w in widths}  # width -> [key, count, sum]
    outputs = {w: [] for w in widths}
    for key, count, total in items:
        for w in widths:
            prefix = key[:w]
            acc = accumulators[w]
            if acc is None or acc[0] != prefix:
                if acc is not None:
                    outputs[w].append((acc[0], acc[1], acc[2]))
                accumulators[w] = [prefix, count, total]
            else:
                acc[1] += count
                acc[2] += total
    for w in widths:
        acc = accumulators[w]
        if acc is not None:
            outputs[w].append((acc[0], acc[1], acc[2]))
    stats.add_scan(len(items) * len(widths))
    for cuboid, w in zip(pipeline, widths):
        cuboid_order = order[:w]
        cells = outputs[w]
        stats.add_groups(len(cells))
        materialized[cuboid] = (cuboid_order, cells)
        for key, count, total in cells:
            if minsup.qualifies(count, total):
                result.record(cuboid_order, key, count, total)

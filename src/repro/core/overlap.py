"""Overlap (Naughton et al., Section 2.4.1) — the sort-overlap baseline.

Overlap fixes one attribute order at the root (here: schema order) and
computes every cuboid from the parent that shares the *longest GROUP BY
prefix* with it (ties broken by the smaller estimated parent).  A shared
prefix of length ``k`` means the parent's sorted cells form one
partition per distinct prefix value, and each partition can be sorted
independently on the child's remaining attributes — much cheaper than a
full re-sort, and the longer the prefix the smaller the partitions.

The thesis reports Overlap "performs consistently better than PipeSort
and PipeHash", while Ross & Srivastava observe it still writes a lot of
intermediate state on sparse cubes; both behaviours fall out of the cost
ledger here (cheaper sorts than PipeSort, with `peak_items` recording
the materialized intermediates).
"""

from ..lattice.lattice import CubeLattice, common_prefix_length
from .pipesort import estimated_size
from .result import CubeResult
from .stats import OpStats
from .thresholds import as_threshold


def cuboid_order(cuboid, dims):
    """A cuboid's attribute order under Overlap: root (schema) order."""
    member = set(cuboid)
    return tuple(d for d in dims if d in member)


def plan_overlap(dims, cardinalities, n_rows):
    """Choose each cuboid's parent: longest shared prefix, then smallest.

    Returns ``{child: (parent, shared_prefix_length)}`` with the root
    mapping to ``(None, 0)``.
    """
    dims = tuple(dims)
    lattice = CubeLattice(dims)
    root = dims
    plan = {root: (None, 0)}
    for level in lattice.levels()[1:-1]:
        for child in level:
            child_seq = cuboid_order(child, dims)
            best = None
            best_key = None
            for parent in lattice.parents(child):
                shared = common_prefix_length(child_seq, cuboid_order(parent, dims))
                size = estimated_size(parent, cardinalities, n_rows)
                key = (-shared, size, parent)
                if best_key is None or key < best_key:
                    best, best_key = (parent, shared), key
            plan[child] = best
    return plan


def overlap_iceberg_cube(relation, dims=None, minsup=1):
    """Run Overlap; returns ``(CubeResult, OpStats, plan)``."""
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    minsup = as_threshold(minsup)
    cardinalities = {d: relation.cardinality(d) for d in dims}
    plan = plan_overlap(dims, cardinalities, len(relation))
    stats = OpStats()
    stats.read_tuples += len(relation)
    result = CubeResult(dims)
    root = dims

    children_of = {}
    for child, (parent, _shared) in plan.items():
        if parent is not None:
            children_of.setdefault(parent, []).append(child)

    # Root: sort the raw data once in schema order and aggregate.
    positions = relation.dim_indices(root)
    rows = sorted(
        (tuple(row[p] for p in positions), measure)
        for row, measure in zip(relation.rows, relation.measures)
    )
    stats.add_sort(len(rows))
    root_cells = _aggregate_sorted(rows, stats)
    materialized = {root: root_cells}

    for cuboid in sorted(plan, key=len, reverse=True):
        cells = materialized[cuboid]
        stats.add_groups(len(cells))
        for key, count, total in cells:
            if minsup.qualifies(count, total):
                result.record(cuboid_order(cuboid, dims), key, count, total)
        for child in children_of.get(cuboid, ()):
            materialized[child] = _compute_child(
                cells, cuboid, child, plan[child][1], dims, stats
            )
        stats.note_items(sum(len(c) for c in materialized.values()))
        del materialized[cuboid]

    count = len(relation)
    measure_sum = sum(relation.measures)
    if minsup.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats, plan


def _aggregate_sorted(items, stats):
    """Collapse an ordered ``(key, measure)`` stream into cell triples."""
    cells = []
    current = None
    count = 0
    total = 0.0
    for key, measure in items:
        if key != current:
            if current is not None:
                cells.append((current, count, total))
            current = key
            count = 0
            total = 0.0
        count += 1
        total += measure
    if current is not None:
        cells.append((current, count, total))
    stats.add_scan(len(items))
    return cells


def _compute_child(parent_cells, parent, child, shared, dims, stats):
    """One Overlap step: partitioned sub-sorts of the parent's cells.

    The parent's cells are sorted in the parent's order; the first
    ``shared`` coordinates match the child's order, so cells sharing
    those coordinates are contiguous.  Each such partition is projected
    onto the child's attributes and sorted independently.
    """
    parent_seq = cuboid_order(parent, dims)
    child_seq = cuboid_order(child, dims)
    index_of = {d: i for i, d in enumerate(parent_seq)}
    child_positions = [index_of[d] for d in child_seq]

    out = []
    partition = []
    current_prefix = None
    for key, count, total in parent_cells:
        prefix = key[:shared]
        if prefix != current_prefix:
            if partition:
                _flush_partition(partition, out, stats)
                partition = []
            current_prefix = prefix
        partition.append((tuple(key[p] for p in child_positions), count, total))
    if partition:
        _flush_partition(partition, out, stats)
    stats.add_scan(len(parent_cells))
    return out


def _flush_partition(partition, out, stats):
    """Sort one partition on the child key and merge equal cells."""
    partition.sort(key=lambda item: item[0])
    stats.add_sort(len(partition))
    current = None
    count = 0
    total = 0.0
    for key, c, v in partition:
        if key != current:
            if current is not None:
                out.append((current, count, total))
            current = key
            count = 0
            total = 0.0
        count += c
        total += v
    if current is not None:
        out.append((current, count, total))

"""Operation counters shared by all algorithm kernels.

The reproduction does not trust Python wall-clock (the paper ran C/MPI on
real hardware); instead every kernel counts the primitive operations it
performs and the simulated cluster's cost model converts them to time.
:class:`OpStats` is the ledger: plain integer counters with merge
support, kept deliberately coarse so counting does not dominate the
actual work.
"""

import math


def key_compare_weight(key_length):
    """Cost weight of one cell-key comparison or hash, in work units.

    Lexicographic tuple comparisons usually resolve on the first field
    and hashing touches every field once; a mild linear term keeps the
    thesis' Figure 4.4 effect — key costs growing with dimensionality —
    without pricing every comparison as a full-key scan.
    """
    return 1.0 + 0.25 * key_length


class OpStats:
    """Primitive-operation counts for one task or one whole run."""

    __slots__ = (
        "read_tuples",
        "sort_units",
        "scan_tuples",
        "groups",
        "structure_units",
        "partition_moves",
        "peak_items",
    )

    def __init__(self):
        self.read_tuples = 0  # raw tuples loaded / scanned from input
        self.sort_units = 0.0  # comparison units: sum of k*log2(k) per sorted block
        self.scan_tuples = 0  # tuples touched while aggregating groups
        self.groups = 0  # value groups formed while partitioning
        self.structure_units = 0.0  # skip-list / hash / tree work units
        self.partition_moves = 0  # tuples moved during data partitioning
        self.peak_items = 0  # high-water mark of cells/tuples held in memory

    def add_sort(self, block_size):
        """Charge one comparison-sort of ``block_size`` keys."""
        if block_size > 1:
            self.sort_units += block_size * math.log2(block_size)

    def add_scan(self, tuples):
        """Charge an aggregation scan over ``tuples`` rows/cells."""
        self.scan_tuples += tuples

    def add_groups(self, count):
        """Charge the formation of ``count`` value groups."""
        self.groups += count

    def add_structure(self, units):
        """Charge ``units`` of data-structure work (list/hash/tree ops)."""
        self.structure_units += units

    def note_items(self, items):
        """Record an in-memory high-water mark (not priced into time)."""
        if items > self.peak_items:
            self.peak_items = items

    def merge(self, other):
        """Accumulate another ledger into this one (peak takes the max)."""
        self.read_tuples += other.read_tuples
        self.sort_units += other.sort_units
        self.scan_tuples += other.scan_tuples
        self.groups += other.groups
        self.structure_units += other.structure_units
        self.partition_moves += other.partition_moves
        if other.peak_items > self.peak_items:
            self.peak_items = other.peak_items
        return self

    def copy(self):
        """An independent copy of this ledger."""
        out = OpStats()
        out.merge(self)
        return out

    def total_units(self):
        """A single scalar summary (used in tests, not by the cost model)."""
        return (
            self.read_tuples
            + self.sort_units
            + self.scan_tuples
            + self.groups
            + self.structure_units
            + self.partition_moves
        )

    def __repr__(self):
        return (
            "OpStats(read=%d, sort=%.0f, scan=%d, groups=%d, structure=%.0f, moves=%d)"
            % (
                self.read_tuples,
                self.sort_units,
                self.scan_tuples,
                self.groups,
                self.structure_units,
                self.partition_moves,
            )
        )

"""Persisting cube results: one CSV file per cuboid plus a manifest.

This mirrors how the thesis' implementation laid results out — "the
output, that is, the cells of cuboids, remains distributed where
processors output to their local disks", one file per cuboid — and is
what makes the library's results usable outside Python.  A saved cube
round-trips exactly through :func:`load_cube`.

Layout::

    <directory>/
      manifest.json          # dims, cuboid index, cell counts
      all.csv                # the empty group-by (when present)
      A.csv, A_B.csv, ...    # one file per cuboid: coords, count, sum
"""

import csv
import json
import os

from ..errors import SchemaError
from .result import CubeResult

MANIFEST = "manifest.json"
ALL_FILE = "all.csv"

#: Bumped whenever the on-disk layout changes incompatibly; checked by
#: :func:`load_cube` so a newer writer fails loudly instead of parsing
#: wrong.
FORMAT_VERSION = 1


def _cuboid_filename(cuboid):
    return (("_".join(cuboid)) if cuboid else "all") + ".csv"


def atomic_write(path, write_body, binary=False):
    """Write ``path`` via a same-directory temp file and :func:`os.replace`.

    ``write_body`` receives the open handle.  A crash mid-write leaves
    the previous file (or nothing) in place — never a truncated one.
    """
    tmp = "%s.tmp.%d" % (path, os.getpid())
    mode = "wb" if binary else "w"
    kwargs = {} if binary else {"newline": ""}
    try:
        with open(tmp, mode, **kwargs) as handle:
            write_body(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_cube(result, directory):
    """Write a :class:`CubeResult` under ``directory``.

    Each file lands atomically (temp file + ``os.replace``), the manifest
    last, so a crashed save never leaves a half-written cuboid CSV next
    to a manifest that claims it is complete.  Returns the manifest dict
    that was written.
    """
    os.makedirs(directory, exist_ok=True)
    index = []
    for cuboid in sorted(result.cuboids, key=lambda c: (len(c), c)):
        cells = result.cuboids[cuboid]
        filename = _cuboid_filename(cuboid)
        path = os.path.join(directory, filename)

        def write_body(handle, cuboid=cuboid, cells=cells):
            writer = csv.writer(handle)
            writer.writerow(list(cuboid) + ["count", "sum"])
            for cell in sorted(cells):
                count, value = cells[cell]
                writer.writerow(list(cell) + [count, repr(value)])

        atomic_write(path, write_body)
        index.append({
            "cuboid": list(cuboid),
            "file": filename,
            "cells": len(cells),
        })
    manifest = {
        "format": "repro-cube/1",
        "format_version": FORMAT_VERSION,
        "dims": list(result.dims),
        "cuboids": index,
        "total_cells": result.total_cells(),
    }
    atomic_write(
        os.path.join(directory, MANIFEST),
        lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
    )
    return manifest


def load_cube(directory):
    """Read a cube previously written by :func:`save_cube`."""
    manifest_path = os.path.join(directory, MANIFEST)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise SchemaError("no cube manifest at %r" % (manifest_path,)) from None
    if manifest.get("format") != "repro-cube/1":
        raise SchemaError("unknown cube format %r" % (manifest.get("format"),))
    version = manifest.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SchemaError(
            "cube format_version %r not supported (this library reads %d)"
            % (version, FORMAT_VERSION)
        )
    result = CubeResult(tuple(manifest["dims"]))
    for entry in manifest["cuboids"]:
        cuboid = tuple(entry["cuboid"])
        path = os.path.join(directory, entry["file"])
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            expected = list(cuboid) + ["count", "sum"]
            if header != expected:
                raise SchemaError(
                    "cuboid file %r has header %r, expected %r"
                    % (entry["file"], header, expected)
                )
            for line in reader:
                cell = tuple(int(v) for v in line[: len(cuboid)])
                count = int(line[len(cuboid)])
                value = float(line[len(cuboid) + 1])
                result.add_cell(cuboid, cell, count, value)
        if len(result.cuboids.get(cuboid, ())) != entry["cells"]:
            raise SchemaError(
                "cuboid %r has %d cells, manifest says %d"
                % (cuboid, len(result.cuboids.get(cuboid, ())), entry["cells"])
            )
    return result

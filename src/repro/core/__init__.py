"""Core cube computation: results, aggregates, BUC and the sequential
baselines reviewed in Chapter 2 of the thesis."""

from .aggregates import (
    ALGEBRAIC,
    DISTRIBUTIVE,
    HOLISTIC,
    AggregateFunction,
    from_count_sum,
    get_aggregate,
)
from .apriori_cube import apriori_iceberg_cube
from .arraycube import array_iceberg_cube
from .buc import BucEngine, PrefixCache, buc_iceberg_cube
from .columnar import (
    HAS_NUMPY,
    KERNELS,
    ColumnarFrame,
    ColumnarKernel,
    KeyPacking,
    NumpyKernel,
    PythonKernel,
    aggregate_cuboid,
    best_kernel_name,
    resolve_kernel,
)
from .naive import naive_cuboid, naive_iceberg_cube
from .overlap import overlap_iceberg_cube, plan_overlap
from .partitioned_cube import (
    memory_cube,
    minimal_paths,
    partitioned_cube,
    symmetric_chain_decomposition,
)
from .pipehash import pipehash_iceberg_cube, plan_pipehash
from .pipesort import pipesort_iceberg_cube, plan_pipesort
from .result import CubeResult
from .stats import OpStats
from .thresholds import (
    AndThreshold,
    CountThreshold,
    SumThreshold,
    Threshold,
    as_threshold,
)
from .writer import ResultWriter

__all__ = [
    "CubeResult",
    "OpStats",
    "Threshold",
    "CountThreshold",
    "SumThreshold",
    "AndThreshold",
    "as_threshold",
    "ResultWriter",
    "AggregateFunction",
    "get_aggregate",
    "from_count_sum",
    "DISTRIBUTIVE",
    "ALGEBRAIC",
    "HOLISTIC",
    "naive_cuboid",
    "naive_iceberg_cube",
    "BucEngine",
    "PrefixCache",
    "buc_iceberg_cube",
    "ColumnarFrame",
    "ColumnarKernel",
    "NumpyKernel",
    "PythonKernel",
    "KeyPacking",
    "KERNELS",
    "HAS_NUMPY",
    "aggregate_cuboid",
    "best_kernel_name",
    "resolve_kernel",
    "pipesort_iceberg_cube",
    "plan_pipesort",
    "overlap_iceberg_cube",
    "plan_overlap",
    "pipehash_iceberg_cube",
    "plan_pipehash",
    "partitioned_cube",
    "memory_cube",
    "minimal_paths",
    "symmetric_chain_decomposition",
    "apriori_iceberg_cube",
    "array_iceberg_cube",
]

"""Iceberg thresholds beyond ``COUNT(*) >= N`` (Section 2.3).

The thesis evaluates only the count condition but notes that "other
aggregate conditions can be handled as well [BUC]".  BUC-style pruning
is sound for any *anti-monotone* condition — one a cell can only fail
harder as it is refined — so this module provides:

* :class:`CountThreshold` — ``HAVING COUNT(*) >= N`` (the default);
* :class:`SumThreshold` — ``HAVING SUM(measure) >= S``, anti-monotone
  when every measure is non-negative (validated at run time);
* :class:`AndThreshold` — a conjunction of anti-monotone conditions,
  itself anti-monotone.

Every cube algorithm in the library accepts either an integer minimum
support (shorthand for :class:`CountThreshold`) or one of these objects.
"""

from ..errors import PlanError


class Threshold:
    """An anti-monotone iceberg qualifier over a cell's (count, sum)."""

    #: Whether soundness requires all measures to be non-negative.
    requires_nonnegative_measures = False

    def qualifies(self, count, total):
        """Whether a cell with this support and measure sum is kept.

        Because the condition is anti-monotone, a failing partition can
        also be pruned from deeper (bottom-up) refinement.
        """
        raise NotImplementedError

    def describe(self):
        """The condition as HAVING-clause text."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.describe())


class CountThreshold(Threshold):
    """``HAVING COUNT(*) >= min_count`` — the thesis' minsup."""

    def __init__(self, min_count):
        if min_count < 1:
            raise PlanError("min_count must be >= 1, got %r" % (min_count,))
        self.min_count = int(min_count)

    def qualifies(self, count, total):
        return count >= self.min_count

    def describe(self):
        return "COUNT(*) >= %d" % self.min_count


class SumThreshold(Threshold):
    """``HAVING SUM(measure) >= min_sum``.

    Anti-monotone only when measures cannot be negative: refining a
    partition then never increases any cell's sum.  Algorithms validate
    this before pruning with it.
    """

    requires_nonnegative_measures = True

    def __init__(self, min_sum):
        self.min_sum = float(min_sum)

    def qualifies(self, count, total):
        return total >= self.min_sum

    def describe(self):
        return "SUM(measure) >= %g" % self.min_sum


class AndThreshold(Threshold):
    """A conjunction of anti-monotone conditions (still anti-monotone)."""

    def __init__(self, *conditions):
        if not conditions:
            raise PlanError("AndThreshold needs at least one condition")
        self.conditions = tuple(as_threshold(c) for c in conditions)

    @property
    def requires_nonnegative_measures(self):
        return any(c.requires_nonnegative_measures for c in self.conditions)

    def qualifies(self, count, total):
        return all(c.qualifies(count, total) for c in self.conditions)

    def describe(self):
        return " AND ".join(c.describe() for c in self.conditions)


def as_threshold(value):
    """Normalize an int minsup or :class:`Threshold` to a threshold."""
    if isinstance(value, Threshold):
        return value
    if isinstance(value, bool):
        raise PlanError("minsup must be an integer or Threshold, got a bool")
    if isinstance(value, int):
        return CountThreshold(value)
    raise PlanError("minsup must be an integer or Threshold, got %r" % (value,))


def validate_measures(threshold, relation):
    """Reject workloads where pruning with ``threshold`` is unsound."""
    if threshold.requires_nonnegative_measures and any(
        m < 0 for m in relation.measures
    ):
        raise PlanError(
            "%s requires non-negative measures for sound pruning"
            % type(threshold).__name__
        )

"""BUC — BottomUpCube (Beyer & Ramakrishnan) and the shared kernel.

:class:`BucEngine` implements bottom-up cube computation over an index
array: each recursion level sorts a row-index range by the next
dimension, scans it into value groups, prunes groups below ``minsup``
and recurses.  The engine serves four masters:

* sequential BUC (:func:`buc_iceberg_cube`) — the thesis' Figure 2.9;
* RP — one engine per processor, depth-first writing (Figure 3.1);
* BPP — BPP-BUC over a data chunk, breadth-first writing (Figure 3.5);
* PT — BPP-BUC over full or chopped subtree tasks (Figure 3.10).

The two write orders differ exactly as in Figure 3.4: depth-first emits
each cell the moment its partition qualifies (scattering output across
cuboids); breadth-first completes every cuboid as one contiguous block
before descending.

The engine counts sorts, scans and groups into an
:class:`~repro.core.stats.OpStats`, which the simulated cluster turns
into CPU time.

The *refinement* machinery — how a row-index range is partitioned by
one dimension — is a swappable strategy (``kernel=``): the default
:class:`~repro.core.columnar.PythonKernel` reproduces the seed
behaviour bit-for-bit (cells *and* OpStats pricing, so every simulated
figure is unchanged), while ``"columnar"``/``"numpy"``/``"auto"``
select the fast kernels from :mod:`repro.core.columnar` for real
wall-clock work.  All kernels refine in ascending code order with
stable within-group row order, so the produced cells are identical.
"""

from .. import obs
from ..errors import PlanError
from ..lattice.processing_tree import ProcessingTree, SubtreeTask
from .columnar import resolve_kernel
from .stats import OpStats
from .thresholds import as_threshold, validate_measures
from .writer import ResultWriter


class PrefixCache:
    """Sort-sharing cache for consecutive tasks on one processor.

    PT's affinity scheduling (Section 3.4) hands a worker tasks whose
    subtree roots share a prefix with its previous task, so the worker's
    data is already partitioned on that shared prefix.  The cache keeps
    the qualifying group boundaries along the last root path; a new task
    resumes refinement from the deepest shared level instead of
    re-sorting from scratch.

    Validity: every sort the engine performs happens strictly inside one
    group of the level it descends from, so shallower group boundaries
    survive deeper work.  Diverging from the cached path truncates the
    cache to the shared depth.
    """

    def __init__(self):
        self.path = []  # list of (dim_name, groups) per refined level

    def shared_depth(self, root):
        """How many leading root dimensions match the cached path."""
        depth = 0
        for (name, _groups), dim in zip(self.path, root):
            if name != dim:
                break
            depth += 1
        return depth


class BucEngine:
    """Bottom-up cube computation over one in-memory relation."""

    def __init__(self, relation, dims, minsup, writer, stats=None, counting_sort=False,
                 kernel="python"):
        """``counting_sort=True`` enables the BUC paper's linear-time
        refinement: ranges are bucketed by code instead of comparison
        -sorted whenever a dimension's cardinality is small relative to
        the range (``CountingSort`` in Beyer & Ramakrishnan).  Off by
        default so the simulated-cluster calibration (comparison-sort
        pricing) matches the thesis' figures; the ablation bench
        measures the difference.

        ``kernel`` selects the refinement machinery: ``"python"`` (the
        default, seed-identical), ``"columnar"``, ``"numpy"`` or
        ``"auto"`` (see :mod:`repro.core.columnar`), or a prebuilt
        kernel instance — in which case ``relation`` may be ``None``
        (worker processes build kernels from shared column buffers)."""
        self.dims = tuple(dims)
        self.threshold = as_threshold(minsup)
        self._qualifies = self.threshold.qualifies
        self.writer = writer
        self.stats = stats if stats is not None else OpStats()
        self.counting_sort = counting_sort
        self.tree = ProcessingTree(self.dims)
        self.kernel = resolve_kernel(kernel)(relation, self.dims, counting_sort)
        self._dim_pos = {name: i for i, name in enumerate(self.dims)}

    def __len__(self):
        return len(self.kernel)

    def all_aggregate(self):
        """``(count, sum)`` of the whole input — the ``all`` cell."""
        return self.kernel.all_aggregate()

    def _refine(self, start, end, dim_position):
        """Partition ``idx[start:end]`` by one column into value groups.

        Returns a list of ``(value, s, e, count, sum)``; the kernel
        charges the sort (or linear bucketing) and scan to the stats
        ledger.
        """
        return self.kernel.refine(start, end, dim_position, self.stats)

    def _refine_to_root(self, task, cache=None):
        """Partition the whole input down to the task's root prefix.

        Returns qualifying ``(cell, s, e, count, sum)`` groups at root
        level; groups below ``minsup`` are pruned on the way (safe: every
        node in the subtree contains all root dimensions).  With a
        :class:`PrefixCache`, refinement resumes from the deepest level
        shared with the previous task's root (prefix affinity).
        """
        groups = [((), 0, len(self.kernel), len(self.kernel), None)]
        depth = 0
        if cache is not None:
            depth = cache.shared_depth(task.root)
            del cache.path[depth:]
            if depth:
                groups = cache.path[depth - 1][1]
        for name in task.root[depth:]:
            position = self._dim_pos[name]
            segments = [(s, e) for _cell, s, e, _count, _total in groups]
            refined = []
            for (cell, _s, _e, _count, _total), seg_groups in zip(
                groups,
                self.kernel.refine_segments(segments, position, self.stats,
                                            self.threshold),
            ):
                for value, s2, e2, count, total in seg_groups:
                    refined.append((cell + (value,), s2, e2, count, total))
            groups = refined
            if cache is not None:
                cache.path.append((name, groups))
        return groups

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_task(self, task, breadth_first, cache=None):
        """Compute every node of ``task`` (a :class:`SubtreeTask`).

        The ``all`` node (empty prefix) is never written here — callers
        aggregate it separately, as the thesis does ("we do not include
        the aggregation for the node all as one of the tasks").

        ``cache`` (a :class:`PrefixCache`) enables PT's sort sharing
        between consecutive tasks on the same processor.
        """
        if not isinstance(task, SubtreeTask):
            raise PlanError("expected a SubtreeTask, got %r" % (task,))
        with obs.span("buc.task") as span:
            if span:
                span.set(root="/".join(task.root) if task.root else "(all)",
                         breadth_first=breadth_first)
            groups = self._refine_to_root(task, cache=cache)
            root_cuboid = task.root
            children = task.active_children(self.tree)
            if breadth_first:
                if root_cuboid:
                    self.writer.write_block(
                        root_cuboid,
                        [(cell, count, total)
                         for cell, _s, _e, count, total in groups]
                    )
                self._breadth_first(self.kernel.level_from_groups(groups),
                                    children)
            else:
                if root_cuboid:
                    for cell, s, e, count, total in groups:
                        self.writer.write_cell(root_cuboid, cell, count, total)
                        self._depth_first(root_cuboid, cell, s, e,
                                          children_override=children)
                else:
                    # Depth-first from the (unwritten) all node.
                    for _cell, s, e, _count, _total in groups:
                        self._depth_first((), (), s, e,
                                          children_override=children)

    def _depth_first(self, node, cell, start, end, children_override=None):
        """Classic BUC recursion: write each qualifying cell, then descend."""
        children = (
            children_override if children_override is not None else self.tree.children(node)
        )
        for child in children:
            position = self._dim_pos[child[-1]]
            for value, s, e, count, total in self._refine(start, end, position):
                if self._qualifies(count, total):
                    child_cell = cell + (value,)
                    self.writer.write_cell(child, child_cell, count, total)
                    self._depth_first(child, child_cell, s, e)

    def _breadth_first(self, level, children):
        """BPP-BUC recursion: finish each cuboid's block before descending.

        ``level`` is kernel-specific level state (parallel cells /
        starts / counts / sums columns for one cuboid).  Every sibling
        group of a cuboid is refined by the same dimension, so the whole
        level goes through ``kernel.refine_level`` in one call — the
        vectorised kernels partition an entire cuboid with a single
        composite-key pass instead of one call per cell — and the block
        is written column-wise in bulk.
        """
        for child in children:
            position = self._dim_pos[child[-1]]
            grandchildren = self.tree.children(child)
            with obs.span("buc.cuboid") as span:
                refined = self.kernel.refine_level(
                    level, position, self.stats, self.threshold,
                    need_rows=bool(grandchildren),
                )
                cells, _starts, counts, sums = refined
                self.writer.write_columns(child, cells, counts, sums)
                if span:
                    span.set(cuboid="/".join(child), cells=len(cells))
            if len(cells) and grandchildren:
                self._breadth_first(refined, grandchildren)


def buc_iceberg_cube(relation, dims=None, minsup=1, breadth_first=False, writer=None,
                     counting_sort=False, kernel="python"):
    """Sequential BUC over all ``2**d`` cuboids (including ``all``).

    Returns ``(CubeResult, OpStats, ResultWriter)`` so callers can
    inspect both the cells and the I/O pattern.  ``counting_sort``
    enables the BUC paper's linear bucketing for low-cardinality
    dimensions; ``kernel`` swaps the refinement machinery (``"python"``
    keeps the seed pricing, ``"columnar"``/``"numpy"``/``"auto"`` run
    the fast columnar kernels).
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if writer is None:
        writer = ResultWriter(dims)
    threshold = as_threshold(minsup)
    validate_measures(threshold, relation)
    stats = OpStats()
    stats.read_tuples += len(relation)
    engine = BucEngine(relation, dims, threshold, writer, stats,
                       counting_sort=counting_sort, kernel=kernel)
    count, total = engine.all_aggregate()
    if threshold.qualifies(count, total):
        writer.write_cell((), (), count, total)
    engine.run_task(SubtreeTask(()), breadth_first=breadth_first)
    return writer.result, stats, writer

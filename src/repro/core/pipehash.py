"""PipeHash (Agrawal et al., Section 2.4.1) — the hash-based baseline.

PipeHash computes every cuboid from its *smallest estimated parent* —
the minimum spanning tree of the lattice under the size estimate — with
hash tables instead of sorting.  When everything fits in memory the
whole cube takes one scan of the raw data plus one pass over each
parent's cells.

The thesis notes PipeHash's two weaknesses: it re-hashes for every
group-by and needs memory for all in-flight hash tables — it only beats
the sort-based algorithms on *dense* data.  This implementation keeps
the in-memory regime (the paper's data-partitioning fallback for
memory pressure belongs to PartitionedCube, implemented separately) and
releases a parent's cells once all its planned children are computed,
mirroring the cache-results/amortize-scans optimizations.
"""

from ..lattice.lattice import CubeLattice
from .pipesort import estimated_size
from .result import CubeResult
from .stats import OpStats, key_compare_weight
from .thresholds import as_threshold


def plan_pipehash(dims, cardinalities, n_rows):
    """Smallest-parent plan: ``{child: parent}`` (root's parent is None)."""
    lattice = CubeLattice(dims)
    root = tuple(dims)
    parent_of = {root: None}
    for level in lattice.levels()[1:-1]:  # below the root, above "all"
        for child in level:
            parent_of[child] = min(
                lattice.parents(child),
                key=lambda p: (estimated_size(p, cardinalities, n_rows), p),
            )
    return parent_of


def pipehash_iceberg_cube(relation, dims=None, minsup=1):
    """Run PipeHash; returns ``(CubeResult, OpStats, parent_of)``."""
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    minsup = as_threshold(minsup)
    cardinalities = {d: relation.cardinality(d) for d in dims}
    parent_of = plan_pipehash(dims, cardinalities, len(relation))
    stats = OpStats()
    stats.read_tuples += len(relation)
    result = CubeResult(dims)
    root = tuple(dims)

    children_of = {}
    for child, parent in parent_of.items():
        if parent is not None:
            children_of.setdefault(parent, []).append(child)

    # Root cuboid: one hash-aggregation scan of the raw data.
    positions = relation.dim_indices(root)
    root_cells = {}
    for row, measure in zip(relation.rows, relation.measures):
        key = tuple(row[p] for p in positions)
        acc = root_cells.get(key)
        if acc is None:
            root_cells[key] = [1, measure]
        else:
            acc[0] += 1
            acc[1] += measure
    stats.add_scan(len(relation))
    # Every tuple is hashed on the full root key ("requiring re-hash for
    # every group-by" is PipeHash's documented weakness).
    stats.add_structure(len(relation) * key_compare_weight(len(root)))

    materialized = {root: root_cells}
    # Top-down (big cuboids first) so parents exist before children.
    order = sorted(parent_of, key=len, reverse=True)
    for cuboid in order:
        cells = materialized[cuboid]
        stats.add_groups(len(cells))
        for cell, (count, total) in cells.items():
            if minsup.qualifies(count, total):
                result.add_cell(cuboid, cell, count, total)
        for child in children_of.get(cuboid, ()):
            index_of = {dim: i for i, dim in enumerate(cuboid)}
            child_positions = [index_of[dim] for dim in child]
            child_cells = {}
            for key, (count, total) in cells.items():
                child_key = tuple(key[p] for p in child_positions)
                acc = child_cells.get(child_key)
                if acc is None:
                    child_cells[child_key] = [count, total]
                else:
                    acc[0] += count
                    acc[1] += total
            stats.add_structure(len(cells) * key_compare_weight(len(child)))
            materialized[child] = child_cells
        stats.note_items(sum(len(c) for c in materialized.values()))
        # Cache-results: every child of this cuboid is now materialized,
        # so its own cells can be dropped.
        del materialized[cuboid]

    count = len(relation)
    measure_sum = sum(relation.measures)
    if minsup.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats, parent_of

"""PartitionedCube / MemoryCube (Ross & Srivastava, Section 2.4.1).

The top-down algorithm built for *sparse* cubes:

* **PartitionedCube** partitions the input on one attribute into
  memory-sized fragments; all cuboids *containing* that attribute are
  computed fragment by fragment (a cell's value on the partition
  attribute pins it to one fragment, so partial results just union).
  The full-dimension cuboid — much smaller than the raw fragments — then
  becomes the input for computing the remaining cuboids, recursively.
* **MemoryCube** computes all (required) cuboids of an in-memory input
  with the *minimum number of sorted pipelines*: its Paths algorithm
  covers the lattice with the provably minimal number of chains.  Here
  that minimal cover is produced by the classic symmetric chain
  decomposition of the subset lattice (de Bruijn et al.), which yields
  exactly ``C(d, floor(d/2))`` chains — the thesis' Figure 2.8(b) shows
  the 6 = C(4,2) paths for four dimensions.  Each chain adds one
  attribute per step, so ordering the sort key accordingly makes every
  chain member a prefix: one sort plus one scan computes the whole
  pipeline.

Internally the input is a list of weighted items ``(key, count, sum)``
so a materialized cuboid can feed the recursion exactly as the paper
describes.
"""

from ..errors import PlanError
from .result import CubeResult
from .stats import OpStats
from .thresholds import as_threshold


def symmetric_chain_decomposition(elements):
    """Cover all subsets of ``elements`` with symmetric chains.

    Returns a list of chains; each chain is a list of frozensets, each a
    strict subset of the next with exactly one more element.  The chain
    count is ``C(n, n//2)`` — the minimum possible, since each chain
    crosses the lattice's widest level at most once.
    """
    chains = [[frozenset()]]
    for element in elements:
        extended = []
        for chain in chains:
            longer = chain + [chain[-1] | {element}]
            extended.append(longer)
            if len(chain) > 1:
                extended.append([s | {element} for s in chain[:-1]])
        chains = extended
    return chains


def chain_attribute_order(chain, dims_order):
    """A sort order making each chain member a prefix.

    ``chain`` ascends one element per step; the order lists the smallest
    member's attributes first (in schema order), then each added
    attribute.
    """
    order = sorted(chain[0], key=dims_order.index)
    known = set(order)
    for subset in chain[1:]:
        added = subset - known
        if len(added) != 1:
            raise PlanError("chain step adds %d elements, expected 1" % len(added))
        order.extend(added)
        known |= added
    return tuple(order)


def minimal_paths(dims, must_contain=()):
    """MemoryCube's path cover, optionally restricted.

    Covers every non-empty cuboid over ``dims`` that contains all of
    ``must_contain``, using chains over the remaining attributes with
    ``must_contain`` folded into every chain member.  Returns a list of
    chains (ascending lists of frozensets); empty sets are dropped.
    """
    dims = tuple(dims)
    must_contain = frozenset(must_contain)
    free = [d for d in dims if d not in must_contain]
    paths = []
    for chain in symmetric_chain_decomposition(free):
        full_chain = [s | must_contain for s in chain if s | must_contain]
        if full_chain:
            paths.append(full_chain)
    return paths


def _chain_order(chain_sets, dims):
    """Attribute order for an ascending chain of sets (helper)."""
    order = sorted(chain_sets[0], key=dims.index)
    known = set(order)
    for subset in chain_sets[1:]:
        for dim in sorted(subset - known, key=dims.index):
            order.append(dim)
            known.add(dim)
    return tuple(order)


class _Items:
    """A weighted in-memory input: parallel key/count/sum lists."""

    __slots__ = ("dims", "rows")

    def __init__(self, dims, rows):
        self.dims = tuple(dims)
        self.rows = rows  # list of (key_tuple, count, sum)

    def __len__(self):
        return len(self.rows)

    @classmethod
    def from_relation(cls, relation, dims):
        positions = relation.dim_indices(dims)
        rows = [
            (tuple(row[p] for p in positions), 1, measure)
            for row, measure in zip(relation.rows, relation.measures)
        ]
        return cls(dims, rows)

    def project(self, dims):
        positions = [self.dims.index(d) for d in dims]
        return _Items(
            dims,
            [(tuple(key[p] for p in positions), c, v) for key, c, v in self.rows],
        )

    def distinct_counts(self):
        counts = {}
        for i, dim in enumerate(self.dims):
            counts[dim] = len({key[i] for key, _c, _v in self.rows})
        return counts


def memory_cube(items, minsup, result, stats, must_contain=()):
    """Compute all cuboids of ``items`` containing ``must_contain``.

    Returns the full-dimension cuboid's *unfiltered* aggregated rows so
    PartitionedCube can feed them back in as a smaller input.
    """
    minsup = as_threshold(minsup)
    dims = items.dims
    full = frozenset(dims)
    full_rows = None
    for chain_sets in minimal_paths(dims, must_contain):
        order = _chain_order(chain_sets, list(dims))
        positions = [dims.index(d) for d in order]
        sorted_rows = sorted(
            ((tuple(key[p] for p in positions), c, v) for key, c, v in items.rows),
            key=lambda row: row[0],
        )
        stats.add_sort(len(sorted_rows))
        widths = [len(s) for s in chain_sets]
        emitted = _pipeline_scan(sorted_rows, widths, stats)
        for subset, width in zip(chain_sets, widths):
            cells = emitted[width]
            stats.add_groups(len(cells))
            cuboid_order = order[:width]
            for key, count, total in cells:
                if minsup.qualifies(count, total):
                    result.record(cuboid_order, key, count, total)
            if subset == full and full_rows is None:
                full_rows = [
                    (tuple(key), count, total) for key, count, total in cells
                ]
                # Re-map to schema order for reuse as an input relation.
                remap = [cuboid_order.index(d) for d in dims]
                full_rows = [
                    (tuple(key[p] for p in remap), count, total)
                    for key, count, total in full_rows
                ]
    return full_rows


def _pipeline_scan(sorted_rows, widths, stats):
    """One pass over sorted rows aggregating every prefix width."""
    accumulators = {w: None for w in widths}
    outputs = {w: [] for w in widths}
    for key, count, total in sorted_rows:
        for w in widths:
            prefix = key[:w]
            acc = accumulators[w]
            if acc is None or acc[0] != prefix:
                if acc is not None:
                    outputs[w].append((acc[0], acc[1], acc[2]))
                accumulators[w] = [prefix, count, total]
            else:
                acc[1] += count
                acc[2] += total
    for w in widths:
        acc = accumulators[w]
        if acc is not None:
            outputs[w].append((acc[0], acc[1], acc[2]))
    stats.add_scan(len(sorted_rows) * max(1, len(widths)))
    return outputs


def _partition_items(items, dim, memory_items):
    """Split items into fragments of at most ``memory_items`` rows by
    grouping consecutive values of ``dim`` (a value never straddles
    fragments)."""
    position = items.dims.index(dim)
    by_value = {}
    for row in items.rows:
        by_value.setdefault(row[0][position], []).append(row)
    fragments = []
    current = []
    for value in sorted(by_value):
        rows = by_value[value]
        if current and len(current) + len(rows) > memory_items:
            fragments.append(_Items(items.dims, current))
            current = []
        current.extend(rows)
    if current:
        fragments.append(_Items(items.dims, current))
    return fragments


def _compute(items, minsup, memory_items, result, stats, must_contain, depth=0):
    """Recursive PartitionedCube over weighted items.

    Computes every cuboid over ``items.dims`` containing all of
    ``must_contain``, and returns the full-dimension cuboid's
    *unfiltered* aggregated rows (needed one recursion level up).
    """
    dims = items.dims
    counts = items.distinct_counts()
    candidates = [d for d in dims if d not in must_contain and counts[d] > 1]
    if len(items) <= memory_items or depth > len(dims) or not candidates:
        # Fits in memory — or nothing can split the data further, in
        # which case the paper assumes fragments eventually fit anyway.
        return memory_cube(items, minsup, result, stats, must_contain) or []
    # The free attribute with the most distinct values splits fragments
    # most evenly.
    attr = max(candidates, key=lambda d: counts[d])
    fragments = _partition_items(items, attr, memory_items)
    stats.partition_moves += len(items)
    full_rows = []
    for fragment in fragments:
        # All target cuboids containing `attr`, fragment by fragment.
        full_rows.extend(
            _compute(fragment, minsup, memory_items, result, stats,
                     must_contain | {attr}, depth + 1)
        )
    # The materialized full cuboid — much smaller than the raw input —
    # feeds the cuboids that do not contain `attr`.
    remaining_dims = tuple(d for d in dims if d != attr)
    if remaining_dims:
        projected = _Items(dims, full_rows).project(remaining_dims)
        _compute(projected, minsup, memory_items, result, stats, must_contain, depth + 1)
    return full_rows


def partitioned_cube(relation, dims=None, minsup=1, memory_rows=None):
    """Run PartitionedCube; returns ``(CubeResult, OpStats)``.

    ``memory_rows`` is the in-memory fragment limit; when the whole
    input fits (the default) this is pure MemoryCube.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if memory_rows is None:
        memory_rows = len(relation) + 1
    if memory_rows < 1:
        raise PlanError("memory_rows must be >= 1")
    minsup = as_threshold(minsup)
    stats = OpStats()
    stats.read_tuples += len(relation)
    result = CubeResult(dims)
    items = _Items.from_relation(relation, dims)
    _compute(items, minsup, memory_rows, result, stats, frozenset())
    count = len(relation)
    measure_sum = sum(relation.measures)
    if minsup.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats

"""Cube results: the output of every algorithm in the library.

A :class:`CubeResult` maps each cuboid (tuple of dimension names in
schema order) to its cells — a dict from coordinate tuples to
``(count, value)`` pairs, where ``count`` is the cell's support
(``COUNT(*)``) and ``value`` the SUM of the measure.  Only cells meeting
the iceberg threshold are present.

Results from partitioned algorithms (BPP, POL) are produced per
processor and combined with :meth:`CubeResult.merge_from`.
"""

from ..errors import SchemaError

#: Bytes charged per written cell coordinate / aggregate field by the
#: simulated disk; (len(cuboid) + 2) fields per cell (coords, count, sum).
CELL_FIELD_BYTES = 8


class CubeResult:
    """All qualifying cells of an iceberg cube, organized by cuboid."""

    def __init__(self, dims):
        self.dims = tuple(dims)
        self._order = {name: i for i, name in enumerate(self.dims)}
        self.cuboids = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(self, cuboid, cell, count, value):
        """Record one cell; accumulates if the cell already exists.

        ``cuboid`` must already be in schema order with ``cell``
        coordinates aligned to it.
        """
        cells = self.cuboids.get(cuboid)
        if cells is None:
            cells = self.cuboids[cuboid] = {}
        existing = cells.get(cell)
        if existing is None:
            cells[cell] = (count, value)
        else:
            cells[cell] = (existing[0] + count, existing[1] + value)

    def add_columns(self, cuboid, cells, counts, values):
        """Record one cuboid block given as parallel columns.

        ``cells`` must be distinct within the call (a BUC cuboid block
        is — each cell's partition is refined exactly once); across
        calls, cells accumulate like :meth:`add_cell`.  The common case
        (first block for a cuboid) is a single C-speed ``dict.update``.
        """
        if hasattr(counts, "tolist"):
            counts = counts.tolist()
        if hasattr(values, "tolist"):
            values = values.tolist()
        target = self.cuboids.get(cuboid)
        if target is None:
            target = self.cuboids[cuboid] = {}
        if not target:
            target.update(zip(cells, zip(counts, values)))
            if len(target) != len(cells):
                raise SchemaError(
                    "add_columns block for cuboid %r contains duplicate "
                    "cells" % (cuboid,)
                )
            return
        for cell, count, value in zip(cells, counts, values):
            existing = target.get(cell)
            if existing is None:
                target[cell] = (count, value)
            else:
                target[cell] = (existing[0] + count, existing[1] + value)

    def record(self, dims_order, cell, count, value):
        """Record a cell given in an arbitrary dimension order.

        Top-down algorithms that re-sort attributes (PipeSort) produce
        cells in plan order; this canonicalizes to schema order.
        """
        pairs = sorted(zip(dims_order, cell), key=lambda p: self._order_of(p[0]))
        cuboid = tuple(name for name, _ in pairs)
        coords = tuple(code for _, code in pairs)
        self.add_cell(cuboid, coords, count, value)

    def _order_of(self, name):
        try:
            return self._order[name]
        except KeyError:
            raise SchemaError("unknown dimension %r (schema %r)" % (name, self.dims)) from None

    def merge_from(self, other):
        """Accumulate another (partial) result into this one.

        Used to complete BPP's per-chunk partial cuboids and POL's per
        -processor skip-list partitions: cells with equal coordinates sum
        their counts and values.
        """
        for cuboid, cells in other.cuboids.items():
            mine = self.cuboids.setdefault(cuboid, {})
            for cell, (count, value) in cells.items():
                existing = mine.get(cell)
                if existing is None:
                    mine[cell] = (count, value)
                else:
                    mine[cell] = (existing[0] + count, existing[1] + value)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def cuboid(self, dims):
        """Cells of one cuboid (``{}`` if it produced no qualifying cell)."""
        cuboid = tuple(sorted(dims, key=self._order_of))
        return self.cuboids.get(cuboid, {})

    def total_cells(self):
        """Number of qualifying cells across all cuboids."""
        return sum(len(cells) for cells in self.cuboids.values())

    def output_bytes(self):
        """Approximate on-disk size of the result (the thesis' output MB)."""
        total = 0
        for cuboid, cells in self.cuboids.items():
            total += len(cells) * (len(cuboid) + 2) * CELL_FIELD_BYTES
        return total

    def filtered(self, minsup):
        """A new result keeping only cells with ``count >= minsup``.

        This is how a low-threshold materialization answers a higher
        -threshold query (Section 5.1).
        """
        out = CubeResult(self.dims)
        for cuboid, cells in self.cuboids.items():
            kept = {
                cell: agg for cell, agg in cells.items() if agg[0] >= minsup
            }
            if kept:
                out.cuboids[cuboid] = kept
        return out

    def equals(self, other, tolerance=1e-9):
        """Exact cell-by-cell equality (values within ``tolerance``)."""
        return not self.diff(other, tolerance=tolerance, limit=1)

    def diff(self, other, tolerance=1e-9, limit=10):
        """Human-readable differences vs. ``other`` (at most ``limit``)."""
        problems = []
        cuboids = set(self.cuboids) | set(other.cuboids)
        for cuboid in sorted(cuboids, key=lambda c: (len(c), c)):
            mine = self.cuboids.get(cuboid, {})
            theirs = other.cuboids.get(cuboid, {})
            for cell in set(mine) | set(theirs):
                a = mine.get(cell)
                b = theirs.get(cell)
                if a is None or b is None:
                    problems.append("cuboid %r cell %r: %r vs %r" % (cuboid, cell, a, b))
                elif a[0] != b[0] or abs(a[1] - b[1]) > tolerance:
                    problems.append("cuboid %r cell %r: %r vs %r" % (cuboid, cell, a, b))
                if len(problems) >= limit:
                    return problems
        return problems

    def decoded(self, encoder):
        """Cells with coordinates decoded to original attribute values.

        Returns ``{cuboid: {decoded_cell: (count, value)}}``.
        """
        out = {}
        for cuboid, cells in self.cuboids.items():
            out[cuboid] = {
                encoder.decode_cell(cuboid, cell): agg for cell, agg in cells.items()
            }
        return out

    def __repr__(self):
        return "CubeResult(dims=%r, cuboids=%d, cells=%d)" % (
            self.dims,
            len(self.cuboids),
            self.total_cells(),
        )

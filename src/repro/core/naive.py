"""Naive full-scan iceberg cube: the ground-truth baseline.

One hash-aggregation pass of the relation per cuboid — no shared sorts,
no pruning, no cleverness.  Far too slow for real use (that is the point
of the paper), but unambiguous, which makes it the correctness oracle
every other algorithm is validated against.
"""

from ..lattice.lattice import CubeLattice
from .result import CubeResult
from .thresholds import as_threshold


def naive_cuboid(relation, dims):
    """Aggregate one group-by with a dict; returns ``{cell: (count, sum)}``.

    ``dims`` may be in any order; cells are keyed in that order.
    """
    positions = relation.dim_indices(dims)
    cells = {}
    rows = relation.rows
    measures = relation.measures
    for i, row in enumerate(rows):
        key = tuple(row[p] for p in positions)
        existing = cells.get(key)
        if existing is None:
            cells[key] = [1, measures[i]]
        else:
            existing[0] += 1
            existing[1] += measures[i]
    return {cell: (count, value) for cell, (count, value) in cells.items()}


def naive_iceberg_cube(relation, dims=None, minsup=1):
    """Compute the full iceberg cube by scanning once per cuboid.

    ``minsup`` may be an integer minimum support or any
    :class:`~repro.core.thresholds.Threshold`.  Includes the ``all``
    cuboid (the empty group-by) when it qualifies.  Returns a
    :class:`~repro.core.result.CubeResult`.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    threshold = as_threshold(minsup)
    lattice = CubeLattice(dims)
    result = CubeResult(dims)
    for cuboid in lattice.cuboids(include_all=False):
        for cell, (count, value) in naive_cuboid(relation, cuboid).items():
            if threshold.qualifies(count, value):
                result.add_cell(cuboid, cell, count, value)
    total = len(relation)
    measure_sum = sum(relation.measures)
    if threshold.qualifies(total, measure_sum):
        result.add_cell((), (), total, measure_sum)
    return result

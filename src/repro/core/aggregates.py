"""Aggregate functions and Gray et al.'s classification (Section 2.2).

The thesis' prototypical iceberg query computes ``SUM(measure)`` with a
``HAVING COUNT(*) >= T`` constraint, so every cube kernel natively
accumulates ``(count, sum)``.  This module generalizes that pair into the
classes of [Gray et al. 1996]:

* **distributive** — ``F(T) = G({F(S_i)})``: COUNT, SUM, MIN, MAX;
* **algebraic** — a constant-size intermediate state suffices: AVERAGE
  (sum and count), plus anything distributive;
* **holistic** — no constant-size state: MEDIAN (provided for the naive
  path only).

Each function exposes ``initial()``, ``step(state, measure)``,
``merge(a, b)`` and ``final(state)``, so distributive/algebraic functions
can be computed over partitioned data and merged — which is what lets
BPP and POL work on chunks.
"""

from ..errors import SchemaError

DISTRIBUTIVE = "distributive"
ALGEBRAIC = "algebraic"
HOLISTIC = "holistic"


class AggregateFunction:
    """Base interface; subclasses define the four accumulation hooks."""

    name = "?"
    kind = HOLISTIC

    def initial(self):
        """Return the empty accumulation state."""
        raise NotImplementedError

    def step(self, state, measure):
        """Fold one measure value into ``state``; returns the new state."""
        raise NotImplementedError

    def merge(self, a, b):
        """Combine two partial states (disjoint partitions of the input)."""
        raise NotImplementedError

    def final(self, state):
        """Turn an accumulation state into the aggregate's value."""
        raise NotImplementedError

    @property
    def mergeable(self):
        """Whether partial states from disjoint partitions can combine."""
        return self.kind in (DISTRIBUTIVE, ALGEBRAIC)


class Count(AggregateFunction):
    name = "count"
    kind = DISTRIBUTIVE

    def initial(self):
        return 0

    def step(self, state, measure):
        return state + 1

    def merge(self, a, b):
        return a + b

    def final(self, state):
        return state


class Sum(AggregateFunction):
    name = "sum"
    kind = DISTRIBUTIVE

    def initial(self):
        return 0.0

    def step(self, state, measure):
        return state + measure

    def merge(self, a, b):
        return a + b

    def final(self, state):
        return state


class Min(AggregateFunction):
    name = "min"
    kind = DISTRIBUTIVE

    def initial(self):
        return None

    def step(self, state, measure):
        return measure if state is None or measure < state else state

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if a < b else b

    def final(self, state):
        return state


class Max(AggregateFunction):
    name = "max"
    kind = DISTRIBUTIVE

    def initial(self):
        return None

    def step(self, state, measure):
        return measure if state is None or measure > state else state

    def merge(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a if a > b else b

    def final(self, state):
        return state


class Average(AggregateFunction):
    """Algebraic: state is ``(sum, count)``; ``final`` divides."""

    name = "avg"
    kind = ALGEBRAIC

    def initial(self):
        return (0.0, 0)

    def step(self, state, measure):
        return (state[0] + measure, state[1] + 1)

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def final(self, state):
        return state[0] / state[1] if state[1] else None


class Median(AggregateFunction):
    """Holistic: the state is every measure seen (naive path only)."""

    name = "median"
    kind = HOLISTIC

    def initial(self):
        return []

    def step(self, state, measure):
        state.append(measure)
        return state

    def merge(self, a, b):
        return a + b

    def final(self, state):
        if not state:
            return None
        ordered = sorted(state)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


_REGISTRY = {f.name: f for f in (Count(), Sum(), Min(), Max(), Average(), Median())}


def get_aggregate(name):
    """Look an aggregate up by name (``count``/``sum``/``min``/...)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise SchemaError(
            "unknown aggregate %r (have %s)" % (name, ", ".join(sorted(_REGISTRY)))
        ) from None


def from_count_sum(name, count, total):
    """Derive an aggregate's value from a cell's ``(count, sum)`` pair.

    Valid for the aggregates whose final value is a function of count and
    sum — COUNT, SUM and AVG — which is why the cube kernels only carry
    that pair.  Others must be computed on the naive path.
    """
    name = name.lower()
    if name == "count":
        return count
    if name == "sum":
        return total
    if name == "avg":
        return total / count if count else None
    raise SchemaError("aggregate %r cannot be derived from (count, sum)" % (name,))


DERIVABLE_FROM_COUNT_SUM = frozenset({"count", "sum", "avg"})

"""The hash-tree (Apriori-based) cube algorithm (Section 3.5.1).

The thesis' first hash-based attempt: treat every ``(attribute, value)``
pair as an *item* over a global index, so a group-by cell is an itemset
with at most one item per attribute, and cells with support >= minsup
are exactly the frequent itemsets.  Computation is Apriori's level-wise
breadth-first search — generate candidate ``k``-itemsets from frequent
``(k-1)``-itemsets, prune candidates with an infrequent subset, count
supports with the hash tree's subset operation — adapted to cubes by (a)
the one-item-per-attribute constraint during the self-join and (b) a
global item index whose size is the *sum of all attribute
cardinalities*.

That global index is the algorithm's documented downfall: breadth-first
generation materializes enormous candidate sets before pruning can act,
and "the hash tree ... quickly consumes all available memory".  The
implementation is faithful to that failure: all structures are charged
to a :class:`~repro.structures.hash_tree.MemoryMeter` and the run dies
with :class:`~repro.errors.MemoryBudgetExceeded` when the budget (128 MB
by default, as on the thesis' small nodes) is crossed — which on sparse
or low-minsup inputs it will be.
"""

from itertools import combinations

from ..structures.hash_tree import ENTRY_BASE_BYTES, ENTRY_ITEM_BYTES, HashTree, MemoryMeter
from .result import CubeResult
from .stats import OpStats
from .thresholds import as_threshold, validate_measures

DEFAULT_BUDGET_BYTES = 128 * 1024 * 1024


class ItemIndex:
    """The global item universe: one id per (attribute, value) pair."""

    def __init__(self, relation, dims):
        self.dims = tuple(dims)
        positions = relation.dim_indices(self.dims)
        self.offsets = []
        self.cardinalities = []
        offset = 0
        values_per_dim = []
        for p in positions:
            values = sorted({row[p] for row in relation.rows})
            values_per_dim.append({v: i for i, v in enumerate(values)})
            self.offsets.append(offset)
            self.cardinalities.append(len(values))
            offset += len(values)
        self.n_items = offset
        self._positions = positions
        self._values_per_dim = values_per_dim
        self._decode = []
        for d, values in enumerate(values_per_dim):
            for value, _i in sorted(values.items(), key=lambda kv: kv[1]):
                self._decode.append((d, value))

    def transaction(self, row):
        """A tuple's sorted item-id list (one item per attribute)."""
        return tuple(
            self.offsets[d] + self._values_per_dim[d][row[p]]
            for d, p in enumerate(self._positions)
        )

    def dim_of(self, item):
        """Which attribute (index into ``dims``) an item belongs to."""
        return self._decode[item][0]

    def decode(self, item):
        """``(dim_index, value_code)`` for an item id."""
        return self._decode[item]


def _generate_candidates(frequent, index, k):
    """Apriori self-join + prune with the one-item-per-dimension rule."""
    frequent_set = set(frequent)
    by_prefix = {}
    for itemset in frequent:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    candidates = []
    for prefix, lasts in by_prefix.items():
        lasts.sort()
        for i in range(len(lasts)):
            for j in range(i + 1, len(lasts)):
                a, b = lasts[i], lasts[j]
                if index.dim_of(a) == index.dim_of(b):
                    continue  # a cell has one value per attribute
                candidate = prefix + (a, b)
                if _all_subsets_frequent(candidate, frequent_set, k):
                    candidates.append(candidate)
    return candidates


def _all_subsets_frequent(candidate, frequent_set, k):
    for subset in combinations(candidate, k - 1):
        if subset not in frequent_set:
            return False
    return True


def apriori_iceberg_cube(relation, dims=None, minsup=1, memory_budget=DEFAULT_BUDGET_BYTES):
    """Run the hash-tree cube; returns ``(CubeResult, OpStats, meter)``.

    Raises :class:`MemoryBudgetExceeded` when the candidate hash tree
    outgrows ``memory_budget`` — the thesis' observed failure mode.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    minsup = as_threshold(minsup)
    validate_measures(minsup, relation)
    meter = MemoryMeter(memory_budget)
    stats = OpStats()
    stats.read_tuples += len(relation)
    index = ItemIndex(relation, dims)
    # The global index table itself occupies memory proportional to the
    # sum of the cardinalities — the thesis calls this out explicitly.
    meter.add(index.n_items * (ENTRY_BASE_BYTES + ENTRY_ITEM_BYTES))
    result = CubeResult(dims)

    transactions = [index.transaction(row) for row in relation.rows]
    stats.add_scan(len(transactions))

    # F1: count single items with a flat array.
    counts = [0] * index.n_items
    sums = [0.0] * index.n_items
    for t, measure in zip(transactions, relation.measures):
        for item in t:
            counts[item] += 1
            sums[item] += measure
    stats.add_scan(len(transactions) * max(1, len(dims)))
    frequent = []
    for item in range(index.n_items):
        if minsup.qualifies(counts[item], sums[item]):
            frequent.append((item,))
            _emit(result, dims, index, (item,), counts[item], sums[item])

    k = 2
    while frequent and k <= len(dims):
        candidates = _generate_candidates(frequent, index, k)
        if not candidates:
            break
        tree = HashTree(k, hash_mod=16, leaf_capacity=16, meter=meter)
        for candidate in candidates:
            tree.insert(candidate)
        for t, measure in zip(transactions, relation.measures):
            tree.count_subsets(t, measure)
        stats.add_structure(tree.node_visits)
        frequent = []
        for itemset, count, value in tree.items():
            if minsup.qualifies(count, value):
                frequent.append(itemset)
                _emit(result, dims, index, itemset, count, value)
        frequent.sort()
        k += 1

    count = len(relation)
    measure_sum = sum(relation.measures)
    if minsup.qualifies(count, measure_sum):
        result.add_cell((), (), count, measure_sum)
    return result, stats, meter


def _emit(result, dims, index, itemset, count, value):
    """Record a frequent itemset as a cube cell."""
    decoded = [index.decode(item) for item in itemset]
    cuboid = tuple(dims[d] for d, _v in decoded)
    cell = tuple(v for _d, v in decoded)
    result.add_cell(cuboid, cell, count, value)

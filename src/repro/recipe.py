"""The thesis' "recipe" for picking an algorithm (Figure 4.7).

The evaluation's headline finding is that iceberg-cube computation on PC
clusters is not one-algorithm-fits-all.  Figure 4.7 condenses it:

=========================  ====  ====  ===  ====  ====  ===
situation                   PT   ASL   RP   BPP   AHT  POL
=========================  ====  ====  ===  ====  ====  ===
dense cubes                       x                 x
small dimensionality (<5)   x     x    x           x
high dimensionality         x
less memory occupation                       x
otherwise                   x     x
online support                                          x
=========================  ====  ====  ===  ====  ====  ===

:func:`recommend` applies those rules to a workload description;
:func:`recipe_table` returns the matrix itself.
"""

#: Figure 4.7, row by row: (situation, tuple of recommended algorithms).
RECIPE_ROWS = (
    ("dense cubes", ("ASL", "AHT")),
    ("small dimensionality (< 5)", ("PT", "ASL", "RP", "AHT")),
    ("high dimensionality", ("PT",)),
    ("less memory occupation", ("BPP",)),
    ("otherwise", ("PT", "ASL")),
    ("online support", ("POL",)),
)

#: Thresholds distilled from Section 4.9.1's prose.
DENSE_CELL_LIMIT = 1e8  # "total number of cells ... not too high (e.g. < 1e8)"
SMALL_DIMENSIONALITY = 5
HIGH_DIMENSIONALITY = 12


class Workload:
    """The traits the recipe keys on."""

    def __init__(self, n_tuples, cardinalities, online=False, memory_constrained=False):
        self.n_tuples = n_tuples
        self.cardinalities = tuple(cardinalities)
        self.online = online
        self.memory_constrained = memory_constrained

    @property
    def n_dims(self):
        return len(self.cardinalities)

    @property
    def cardinality_product(self):
        product = 1
        for card in self.cardinalities:
            product *= max(1, card)
        return product

    @property
    def is_dense(self):
        """Dense per the thesis: the full cube's potential cell count is
        modest relative to the data (most cells well populated)."""
        return self.cardinality_product <= DENSE_CELL_LIMIT

    @classmethod
    def from_relation(cls, relation, dims=None, online=False, memory_constrained=False):
        dims = tuple(dims) if dims is not None else relation.dims
        return cls(
            len(relation),
            [relation.cardinality(d) for d in dims],
            online=online,
            memory_constrained=memory_constrained,
        )


def recommend(workload):
    """The recipe's pick (ordered by preference) for a workload.

    Follows Section 4.9.1: PT is the default; ASL/AHT take over on
    dense cubes; BPP when memory is the constraint; POL when the query
    must be answered online.
    """
    if workload.online:
        return ("POL",)
    if workload.memory_constrained:
        return ("BPP",)
    if workload.n_dims >= HIGH_DIMENSIONALITY:
        return ("PT",)
    if workload.is_dense:
        # AHT wins when dimensionality is low; ASL is the safer pick
        # because AHT degrades sharply with dimensionality (Fig 4.4).
        if workload.n_dims < SMALL_DIMENSIONALITY:
            return ("AHT", "ASL")
        return ("ASL", "AHT")
    if workload.n_dims < SMALL_DIMENSIONALITY:
        # Everything behaves similarly; RP "may have a slight edge in
        # that it is the simplest algorithm to implement".
        return ("PT", "ASL", "RP", "AHT")
    return ("PT", "ASL")


def recommend_for(relation, dims=None, online=False, memory_constrained=False):
    """Convenience: recommend directly from a relation."""
    return recommend(
        Workload.from_relation(
            relation, dims, online=online, memory_constrained=memory_constrained
        )
    )


def recipe_table():
    """Figure 4.7 as ``(situation, algorithms)`` rows."""
    return list(RECIPE_ROWS)

"""Fault injection and recovery for the simulated cluster.

The thesis targets cheap commodity PC clusters — exactly the hardware
where nodes crash mid-run and background load turns a machine into a
straggler.  This module makes those conditions first-class in the
simulator: a deterministic, seedable :class:`FaultPlan` describes

* **node crashes** — processor ``p`` dies at virtual time ``T``; work in
  flight is lost (charged up to ``T``), its queue is reassigned to
  survivors;
* **transient task failures** — an attempt runs to completion, fails,
  and is retried after an exponential backoff in *simulated* time (the
  work of the failed attempt is priced and counted as lost);
* **slowdowns / stragglers** — a machine's CPU runs ``factor`` times
  slower from a given virtual time onward.

Recovery is scheduler-driven: :func:`run_dynamic_faulted` re-queues a
failed or orphaned task so the demand policy (``select_task``)
reassigns it to whichever surviving worker goes idle, while
:func:`run_static_faulted` retries on the same node and falls back to
round-robin over survivors when a node dies.  Escalation: a task whose
failures exceed ``max_retries`` raises
:class:`~repro.errors.TaskRetryExhausted`; losing every processor with
work outstanding raises :class:`~repro.errors.ClusterDegradedError`.

Replay idempotence: with a fault plan active, drivers isolate each
attempt's cells in ``TaskExecution.output``; only *committed* attempts
(collected in :attr:`RecoveryLog.committed`) contribute to the merged
cube, so a retried task can never double-count.

Determinism: every decision is a pure function of the plan's seed and
the (task id, attempt) pair — re-running the same plan on the same
inputs reproduces the schedule exactly.
"""

import random
from collections import deque

from .. import obs
from ..errors import ClusterDegradedError, ClusterError, TaskRetryExhausted
from .simulator import SimulationResult, resolve_choice

__all__ = [
    "NodeCrash",
    "Slowdown",
    "TaskFailure",
    "FaultPlan",
    "RecoveryLog",
    "run_static_faulted",
    "run_dynamic_faulted",
]


class NodeCrash:
    """Processor ``processor`` fails permanently at virtual time ``at``."""

    __slots__ = ("processor", "at")

    def __init__(self, processor, at):
        if at < 0:
            raise ClusterError("crash time must be >= 0, got %r" % (at,))
        self.processor = int(processor)
        self.at = float(at)

    def __repr__(self):
        return "NodeCrash(p%d @ %.3fs)" % (self.processor, self.at)


class Slowdown:
    """Processor ``processor`` runs ``factor``x slower from ``start`` on.

    Models a straggler: antivirus scan, swapping, a flaky fan throttling
    the CPU.  Only CPU time is scaled — the disk and NIC keep their
    speed, as in the thesis' heterogeneous-machine discussion.
    """

    __slots__ = ("processor", "factor", "start")

    def __init__(self, processor, factor, start=0.0):
        if factor < 1.0:
            raise ClusterError("slowdown factor must be >= 1.0, got %r" % (factor,))
        self.processor = int(processor)
        self.factor = float(factor)
        self.start = float(start)

    def __repr__(self):
        return "Slowdown(p%d x%.1f from %.3fs)" % (self.processor, self.factor, self.start)


class TaskFailure:
    """Explicitly fail attempt ``attempt`` (0-based) of task ``task_id``.

    ``task_id`` is the task's index in the submitted sequence — the
    position in ``assignments`` for static runs, in ``tasks`` for
    dynamic runs — which is stable across retries and reassignment.
    """

    __slots__ = ("task_id", "attempt")

    def __init__(self, task_id, attempt=0):
        self.task_id = int(task_id)
        self.attempt = int(attempt)

    def __repr__(self):
        return "TaskFailure(task %d, attempt %d)" % (self.task_id, self.attempt)


class FaultPlan:
    """A deterministic, seedable schedule of injected faults.

    ``failure_rate`` draws per-(task, attempt) transient failures from a
    hash of ``(seed, task_id, attempt)`` — independent of wall-clock and
    of scheduling order, so runs replay exactly.  ``failures`` adds
    explicit :class:`TaskFailure` events on top (tests use these).
    Retries wait ``backoff_s * backoff_factor**(failures-1)`` simulated
    seconds; a task failing more than ``max_retries`` times escalates.
    """

    def __init__(self, crashes=(), slowdowns=(), failures=(), failure_rate=0.0,
                 max_retries=3, backoff_s=0.05, backoff_factor=2.0, seed=0):
        if not 0.0 <= failure_rate <= 1.0:
            raise ClusterError("failure_rate must be in [0, 1], got %r" % (failure_rate,))
        if max_retries < 0:
            raise ClusterError("max_retries must be >= 0, got %r" % (max_retries,))
        self.crashes = tuple(crashes)
        self.slowdowns = tuple(slowdowns)
        self.failure_rate = float(failure_rate)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_factor = float(backoff_factor)
        self.seed = int(seed)
        self._crash_at = {}
        for crash in self.crashes:
            previous = self._crash_at.get(crash.processor)
            if previous is None or crash.at < previous:
                self._crash_at[crash.processor] = crash.at
        self._slow = {}
        for slow in self.slowdowns:
            self._slow.setdefault(slow.processor, []).append(slow)
        self._explicit = {(f.task_id, f.attempt) for f in failures}

    @classmethod
    def random_plan(cls, seed, n_processors, horizon, crash_fraction=0.25,
                    straggler_fraction=0.0, straggler_factor=4.0,
                    failure_rate=0.0, max_retries=3, keep_alive=1):
        """A seeded random plan over ``n_processors`` nodes.

        ``crash_fraction`` of the nodes crash at times drawn uniformly
        over ``(0, horizon)`` and ``straggler_fraction`` slow down by
        ``straggler_factor``; at least ``keep_alive`` nodes are spared
        from crashing so the run can complete.
        """
        rng = random.Random(seed)
        indices = list(range(n_processors))
        rng.shuffle(indices)
        n_crash = min(int(round(crash_fraction * n_processors)),
                      max(0, n_processors - keep_alive))
        crashed = indices[:n_crash]
        crashes = [NodeCrash(p, rng.uniform(0.05 * horizon, horizon)) for p in crashed]
        n_slow = int(round(straggler_fraction * n_processors))
        slow = [p for p in indices[n_crash:] if p not in crashed][:n_slow]
        slowdowns = [Slowdown(p, straggler_factor, start=0.0) for p in slow]
        return cls(crashes=crashes, slowdowns=slowdowns, failure_rate=failure_rate,
                   max_retries=max_retries, seed=seed)

    # ------------------------------------------------------------------
    # queries (all pure functions of the plan)
    # ------------------------------------------------------------------
    def crash_time(self, processor_index):
        """When ``processor_index`` dies, or ``None`` if it survives."""
        return self._crash_at.get(processor_index)

    def slowdown_factor(self, processor_index, at):
        """CPU slowdown multiplier for the node at virtual time ``at``."""
        factor = 1.0
        for slow in self._slow.get(processor_index, ()):
            if at >= slow.start:
                factor *= slow.factor
        return factor

    def attempt_fails(self, task_id, attempt):
        """Whether attempt ``attempt`` (0-based) of ``task_id`` fails."""
        if (task_id, attempt) in self._explicit:
            return True
        if self.failure_rate <= 0.0:
            return False
        mix = (self.seed * 1000003 + task_id) * 1000003 + attempt
        return random.Random(mix).random() < self.failure_rate

    def backoff_seconds(self, failures):
        """Simulated wait before the retry after the ``failures``-th failure."""
        return self.backoff_s * self.backoff_factor ** (failures - 1)

    def local_fault(self, task_id, attempt):
        """The fault to inject into a *real* worker process, or ``None``.

        The supervised local backend
        (:func:`~repro.parallel.local.multiprocess_iceberg_cube`) reuses
        this plan's vocabulary against real OS processes, keyed by the
        *batch id* instead of a simulated processor:

        * explicit :class:`TaskFailure` entries and the seeded
          ``failure_rate`` SIGKILL the worker mid-batch (``"kill"``);
        * a :class:`NodeCrash` whose ``processor`` equals the batch id
          kills the batch's first attempt too (``crash:B@T`` reads as
          "the worker running batch B dies");
        * a :class:`Slowdown` keyed by the batch id hangs the first
          attempt past any batch timeout (``"hang"``).

        Crash/hang directives only fire on attempt 0 and the seeded
        draws are bounded by ``max_retries``, so a run under any plan
        with ``failure_rate < 1`` still completes.  Deterministic: a
        pure function of the plan and ``(task_id, attempt)``.
        """
        if self.attempt_fails(task_id, attempt):
            return "kill"
        if attempt == 0:
            if task_id in self._crash_at:
                return "kill"
            if task_id in self._slow:
                return "hang"
        return None

    def __repr__(self):
        return "FaultPlan(%d crashes, %d slowdowns, rate=%.3f, seed=%d)" % (
            len(self.crashes), len(self.slowdowns), self.failure_rate, self.seed,
        )


class RecoveryLog:
    """Telemetry of one fault-tolerant run (``SimulationResult.recovery``)."""

    __slots__ = ("retries", "reassignments", "lost_work_seconds",
                 "backoff_seconds", "failed_processors", "committed")

    def __init__(self):
        #: transient-failure re-executions
        self.retries = 0
        #: dispatches of a task on a different node than its previous
        #: attempt (or, for static runs, than its planned assignment)
        self.reassignments = 0
        #: simulated seconds charged to attempts whose output was discarded
        self.lost_work_seconds = 0.0
        #: simulated seconds workers spent waiting out retry backoffs
        self.backoff_seconds = 0.0
        #: processor indices that crashed, in crash order
        self.failed_processors = []
        #: the committed TaskExecutions (exactly one per task)
        self.committed = []


def _dispatch(cluster, plan, log, processor, task_id, task, execute, attempts,
              last_proc, overhead=0.0):
    """Execute one attempt and charge it; returns ``"done"``, ``"failed"``
    or ``"crashed"``.

    The attempt's cost is priced through the normal cost model (so a
    reassigned task pays its re-read and re-communication again), scaled
    by any active slowdown, and truncated at the node's crash time when
    the node dies mid-task.
    """
    previous = last_proc.get(task_id)
    if previous is not None and previous != processor.index:
        log.reassignments += 1
    last_proc[task_id] = processor.index

    execution = execute(processor, task)
    cpu, io, comm = cluster.price(processor, execution)
    factor = plan.slowdown_factor(processor.index, processor.clock)
    if factor != 1.0:
        cpu *= factor
    if overhead:
        processor.clock += overhead
        processor.comm_time += overhead

    crash_at = plan.crash_time(processor.index)
    start = processor.clock
    end = start + cpu + io + comm
    if crash_at is not None and end > crash_at:
        # The node dies mid-task: charge the fraction done, lose it all.
        duration = end - start
        frac = (crash_at - start) / duration if duration > 0 else 0.0
        frac = max(0.0, frac)
        entry = cluster.charge_priced(processor, "%s!crash" % execution.label,
                                      cpu * frac, io * frac, comm * frac,
                                      execution=execution)
        processor.clock = crash_at
        log.lost_work_seconds += max(0.0, crash_at - start)
        obs.event("sim.node_crash", processor=processor.index,
                  sim_time=crash_at, task=str(execution.label))
        return "crashed", entry

    failures = attempts.get(task_id, 0)
    if plan.attempt_fails(task_id, failures):
        attempts[task_id] = failures + 1
        if failures + 1 > plan.max_retries:
            raise TaskRetryExhausted(execution.label, failures + 1)
        entry = cluster.charge_priced(processor, "%s!retry" % execution.label,
                                      cpu, io, comm, execution=execution)
        backoff = plan.backoff_seconds(failures + 1)
        processor.clock += backoff
        log.backoff_seconds += backoff
        log.lost_work_seconds += cpu + io + comm
        log.retries += 1
        obs.event("sim.task_retry", processor=processor.index,
                  task=str(execution.label), attempt=failures + 1,
                  backoff_s=backoff)
        return "failed", entry

    entry = cluster.charge_priced(processor, execution.label, cpu, io, comm,
                                  execution=execution)
    log.committed.append(execution)
    return "done", entry


def run_static_faulted(cluster, assignments, execute, plan):
    """Static scheduling under a :class:`FaultPlan`.

    Per-processor queues preserve the planned order; a transiently
    failed task retries on its own node after backoff, and a dead node's
    queue (plus its interrupted task) is redistributed round-robin over
    the survivors — the natural degradation of RP/BPP's fixed maps.
    """
    queues = [deque() for _ in cluster.processors]
    last_proc = {}
    for task_id, (proc_index, task) in enumerate(assignments):
        if not 0 <= proc_index < len(cluster):
            raise ClusterError(
                "assignment to processor %d of %d" % (proc_index, len(cluster))
            )
        queues[proc_index].append((task_id, task))
        last_proc[task_id] = proc_index
    log = RecoveryLog()
    schedule = []
    attempts = {}
    dead = set()
    robin = [0]  # round-robin cursor over survivors, shared by redistributions

    def redistribute(orphans):
        survivors = [p.index for p in cluster.processors if p.index not in dead]
        if not survivors:
            raise ClusterDegradedError(len(orphans), log.failed_processors)
        for item in orphans:
            queues[survivors[robin[0] % len(survivors)]].append(item)
            robin[0] += 1

    def kill(processor, pending_extra=()):
        dead.add(processor.index)
        log.failed_processors.append(processor.index)
        orphans = list(pending_extra) + list(queues[processor.index])
        queues[processor.index].clear()
        redistribute(orphans)

    while True:
        candidates = [p for p in cluster.processors
                      if p.index not in dead and queues[p.index]]
        if not candidates:
            break
        processor = min(candidates, key=lambda p: (p.clock, p.index))
        crash_at = plan.crash_time(processor.index)
        if crash_at is not None and processor.clock >= crash_at:
            # Died idle, before picking up its next task.
            processor.clock = crash_at
            kill(processor)
            continue
        task_id, task = queues[processor.index].popleft()
        outcome, entry = _dispatch(cluster, plan, log, processor, task_id, task,
                                   execute, attempts, last_proc)
        schedule.append(entry)
        if outcome == "crashed":
            kill(processor, pending_extra=[(task_id, task)])
        elif outcome == "failed":
            queues[processor.index].appendleft((task_id, task))
    return SimulationResult(cluster.processors, schedule, recovery=log)


def run_dynamic_faulted(cluster, tasks, select_task, execute, plan):
    """Demand scheduling under a :class:`FaultPlan`.

    Failed and orphaned tasks are pushed back to the front of
    ``pending``, so the existing ``select_task`` policy reassigns them to
    whichever surviving worker idles first — demand scheduling recovers
    for free, which is exactly the thesis' load-balancing argument
    extended to failures.
    """
    pending = list(tasks)
    pending_ids = list(range(len(tasks)))
    log = RecoveryLog()
    schedule = []
    attempts = {}
    last_proc = {}
    dead = set()
    overhead = cluster.cost_model.schedule_overhead_s
    while pending:
        candidates = [p for p in cluster.processors if p.index not in dead]
        if not candidates:
            raise ClusterDegradedError(len(pending), log.failed_processors)
        processor = min(candidates, key=lambda p: (p.clock, p.index))
        crash_at = plan.crash_time(processor.index)
        if crash_at is not None and processor.clock >= crash_at:
            processor.clock = crash_at
            dead.add(processor.index)
            log.failed_processors.append(processor.index)
            continue
        index = resolve_choice(pending, select_task(processor, pending))
        task = pending.pop(index)
        task_id = pending_ids.pop(index)
        outcome, entry = _dispatch(cluster, plan, log, processor, task_id, task,
                                   execute, attempts, last_proc, overhead=overhead)
        schedule.append(entry)
        if outcome == "crashed":
            dead.add(processor.index)
            log.failed_processors.append(processor.index)
            pending.insert(0, task)
            pending_ids.insert(0, task_id)
        elif outcome == "failed":
            pending.insert(0, task)
            pending_ids.insert(0, task_id)
    return SimulationResult(cluster.processors, schedule, recovery=log)

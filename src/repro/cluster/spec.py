"""Cluster hardware descriptions: machines, networks, disks.

The thesis' testbed (Section 4.2) was a heterogeneous PC cluster of
eight 500 MHz PIII machines (256 MB) and eight 266 MHz PII machines
(128 MB), each with a local 30 GB disk, connected by 100 Mbit Ethernet;
the POL experiments add a Myrinet network "approximately three times
faster than the Ethernet" (Section 5.4.1).  These specs parameterize the
simulated cluster so those configurations can be reproduced exactly:

* :func:`cluster1` — eight PIII-500/Ethernet (the CUBE baseline);
* :func:`cluster2` — eight PII-266/Ethernet;
* :func:`cluster3` — eight PII-266/Myrinet;
* :func:`paper_cluster` — the full 16-node heterogeneous cluster.
"""

from ..errors import ClusterError


class MachineSpec:
    """One node: its clock speed sets its relative CPU cost factor."""

    __slots__ = ("name", "cpu_mhz", "memory_mb")

    #: Reference clock: cost-model constants are calibrated for this.
    REFERENCE_MHZ = 500.0

    def __init__(self, name, cpu_mhz, memory_mb):
        self.name = name
        self.cpu_mhz = float(cpu_mhz)
        self.memory_mb = memory_mb

    @property
    def speed(self):
        """Relative speed vs the 500 MHz reference (PIII-500 = 1.0)."""
        return self.cpu_mhz / self.REFERENCE_MHZ

    def __repr__(self):
        return "MachineSpec(%s, %dMHz, %dMB)" % (self.name, self.cpu_mhz, self.memory_mb)


class NetworkSpec:
    """A cluster interconnect: per-message latency plus bandwidth."""

    __slots__ = ("name", "bandwidth_bytes_per_s", "latency_s")

    def __init__(self, name, bandwidth_bytes_per_s, latency_s):
        self.name = name
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)
        self.latency_s = float(latency_s)

    def transfer_seconds(self, nbytes, messages=1):
        """Time to move ``nbytes`` in ``messages`` point-to-point sends."""
        return messages * self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def __repr__(self):
        return "NetworkSpec(%s)" % self.name


class DiskSpec:
    """A local commodity disk: sequential bandwidth plus a scatter penalty.

    ``scatter_s`` is charged once per cuboid switch in the write log —
    the cost of abandoning a sequential stream for a different output
    file (seek + buffer flush).  It is deliberately far below a raw seek
    time because the OS buffers per-file writes; its default is
    calibrated so depth-first writing lands ~5x breadth-first on the
    thesis' baseline, as measured in Figure 3.6.
    """

    __slots__ = ("name", "read_bandwidth", "write_bandwidth", "scatter_s")

    def __init__(self, name="commodity-ide", read_bandwidth=25e6, write_bandwidth=18e6,
                 scatter_s=6e-5):
        self.name = name
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self.scatter_s = float(scatter_s)

    def read_seconds(self, nbytes):
        """Time to sequentially read ``nbytes`` from the local disk."""
        return nbytes / self.read_bandwidth

    def write_seconds(self, nbytes, switches=0):
        """Time to write ``nbytes`` with ``switches`` cuboid-file changes."""
        return nbytes / self.write_bandwidth + switches * self.scatter_s


#: The thesis' machine types.
PIII_500 = MachineSpec("PIII-500", 500, 256)
PII_266 = MachineSpec("PII-266", 266, 128)

#: The thesis' networks; Myrinet ~3x the Ethernet's speed.
ETHERNET_100 = NetworkSpec("100Mbit-ethernet", 12.5e6, 120e-6)
MYRINET = NetworkSpec("myrinet", 37.5e6, 40e-6)


class ClusterSpec:
    """An ordered set of machines plus the interconnect and disk model."""

    def __init__(self, machines, network=ETHERNET_100, disk=None, name="cluster"):
        self.machines = list(machines)
        if not self.machines:
            raise ClusterError("a cluster needs at least one machine")
        self.network = network
        self.disk = disk if disk is not None else DiskSpec()
        self.name = name

    def __len__(self):
        return len(self.machines)

    @property
    def n_processors(self):
        return len(self.machines)

    def __repr__(self):
        return "ClusterSpec(%s, %d nodes, %s)" % (self.name, len(self.machines),
                                                  self.network.name)


def homogeneous(n, machine=PIII_500, network=ETHERNET_100, name=None):
    """``n`` identical machines on one network."""
    return ClusterSpec([machine] * n, network, name=name or ("%dx%s" % (n, machine.name)))


def cluster1(n=8):
    """Eight 500 MHz PIII / 256 MB on Ethernet (the baseline cluster)."""
    return homogeneous(n, PIII_500, ETHERNET_100, name="cluster1")


def cluster2(n=8):
    """Eight 266 MHz PII / 128 MB on Ethernet."""
    return homogeneous(n, PII_266, ETHERNET_100, name="cluster2")


def cluster3(n=8):
    """Eight 266 MHz PII / 128 MB on Myrinet (~3x faster network)."""
    return homogeneous(n, PII_266, MYRINET, name="cluster3")


def paper_cluster(n=16):
    """The full heterogeneous testbed: 8 fast nodes then 8 slow nodes."""
    machines = ([PIII_500] * 8 + [PII_266] * 8)[:n]
    return ClusterSpec(machines, ETHERNET_100, name="paper-cluster")

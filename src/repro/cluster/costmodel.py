"""The operation-count -> seconds cost model.

Every algorithm kernel reports what it *did* (an
:class:`~repro.core.stats.OpStats` ledger plus write-log and message
deltas); this module prices that work.  The constants are calibrated so
the thesis' baseline configuration — 176,631 nine-dimension tuples,
minsup 2, eight 500 MHz processors — lands in the same tens-of-seconds
regime the thesis reports, and more importantly so the *relative* costs
(sorting vs scanning vs structure maintenance vs I/O vs communication)
match a late-90s PC: a few hundred nanoseconds of useful work per tuple
-level operation on the 500 MHz reference machine.

Only ratios matter for the reproduced figures; absolute seconds are a
convenience for readability against the thesis' plots.
"""

from ..core.stats import OpStats


class CostModel:
    """Prices :class:`OpStats` ledgers on a given machine."""

    def __init__(
        self,
        read_tuple_s=0.9e-6,
        sort_unit_s=0.28e-6,
        scan_tuple_s=0.22e-6,
        group_s=0.9e-6,
        structure_unit_s=0.30e-6,
        partition_move_s=0.6e-6,
        task_overhead_s=0.004,
        schedule_overhead_s=0.0008,
    ):
        self.read_tuple_s = read_tuple_s
        self.sort_unit_s = sort_unit_s
        self.scan_tuple_s = scan_tuple_s
        self.group_s = group_s
        self.structure_unit_s = structure_unit_s
        self.partition_move_s = partition_move_s
        #: fixed per-task startup cost (buffers, file opens, recursion setup)
        self.task_overhead_s = task_overhead_s
        #: manager round-trip for one dynamic task assignment
        self.schedule_overhead_s = schedule_overhead_s

    def cpu_seconds(self, stats, machine):
        """CPU time for an :class:`OpStats` ledger on ``machine``."""
        raw = (
            stats.read_tuples * self.read_tuple_s
            + stats.sort_units * self.sort_unit_s
            + stats.scan_tuples * self.scan_tuple_s
            + stats.groups * self.group_s
            + stats.structure_units * self.structure_unit_s
            + stats.partition_moves * self.partition_move_s
        )
        return raw / machine.speed

    def task_seconds(self, machine):
        """Fixed per-task cost on ``machine``."""
        return self.task_overhead_s / machine.speed


def empty_stats():
    """A fresh ledger (convenience for drivers)."""
    return OpStats()

"""The deterministic cluster simulator.

This is the substitution for the thesis' physical PC cluster: each
algorithm executes its real work in-process (single-threaded, correct
results) while the simulator keeps one virtual clock per processor and
advances it by the *priced* cost of each task — CPU (operation ledger /
machine speed), disk I/O (write log through the disk spec) and
communication (message bytes through the network spec).

Two scheduling modes cover all the thesis' algorithms:

* :func:`run_static` — the task->processor map is fixed up front
  (RP's round-robin, BPP's partition ownership);
* :func:`run_dynamic` — demand scheduling: whenever a processor goes
  idle the manager hands it the next task, chosen by a policy that sees
  the worker's previous task (ASL/PT/AHT affinity scheduling).

Determinism: ties on the clock break by processor index, and policies
receive tasks in a stable order, so a run is exactly reproducible.

With :func:`repro.obs.install` active, every charged task additionally
records a span on the *simulated* clock — one per task per node, named
by the task label, carrying the priced cpu/io/comm split and the
:class:`~repro.core.stats.OpStats` ledger as attributes — and each run
wraps in a wall-clock ``sim.run`` span, so simulated and real time sit
side by side in the exported timeline.  Instrumentation only reads;
simulated figures are bit-identical with it on or off.
"""

from .. import obs
from ..errors import ClusterError


class TaskExecution:
    """What one executed task cost, as reported by the algorithm driver.

    ``output`` is an optional per-attempt payload (fault-tolerant runs
    put the attempt's partial :class:`~repro.core.result.CubeResult`
    here, so a failed attempt's cells can be discarded instead of
    double-counting on retry).
    """

    __slots__ = (
        "label",
        "stats",
        "cells",
        "bytes_written",
        "switches",
        "read_bytes",
        "comm_bytes",
        "comm_messages",
        "output",
    )

    def __init__(
        self,
        label,
        stats,
        cells=0,
        bytes_written=0,
        switches=0,
        read_bytes=0,
        comm_bytes=0,
        comm_messages=0,
        output=None,
    ):
        self.label = label
        self.stats = stats
        self.cells = cells
        self.bytes_written = bytes_written
        self.switches = switches
        self.read_bytes = read_bytes
        self.comm_bytes = comm_bytes
        self.comm_messages = comm_messages
        self.output = output


class Processor:
    """One simulated node: clock, time breakdown and worker state."""

    def __init__(self, index, machine):
        self.index = index
        self.machine = machine
        self.clock = 0.0
        self.cpu_time = 0.0
        self.io_time = 0.0
        self.comm_time = 0.0
        self.tasks_run = 0
        #: algorithm-specific worker state (e.g. ASL's root skip list)
        self.state = None

    @property
    def busy_time(self):
        return self.cpu_time + self.io_time + self.comm_time

    def __repr__(self):
        return "Processor(%d, %s, clock=%.3f)" % (self.index, self.machine.name, self.clock)


class ScheduleEntry:
    """One task's placement in simulated time (for traces and plots)."""

    __slots__ = ("label", "processor", "start", "end", "cpu", "io", "comm")

    def __init__(self, label, processor, start, end, cpu, io, comm):
        self.label = label
        self.processor = processor
        self.start = start
        self.end = end
        self.cpu = cpu
        self.io = io
        self.comm = comm

    def __repr__(self):
        return "ScheduleEntry(%r, p%d, %.3f..%.3f)" % (
            self.label,
            self.processor,
            self.start,
            self.end,
        )


class SimulationResult:
    """Outcome of a simulated run: per-processor times and the schedule.

    ``recovery`` (a :class:`~repro.cluster.faults.RecoveryLog`, or
    ``None`` for fault-free runs) carries the fault-tolerance telemetry;
    the ``retries`` / ``reassignments`` / ``lost_work_seconds`` /
    ``degraded_makespan`` properties read through it and report zeros /
    the plain makespan when no faults were injected.
    """

    def __init__(self, processors, schedule, recovery=None):
        self.processors = processors
        self.schedule = schedule
        self.recovery = recovery

    @property
    def makespan(self):
        """Wall-clock: the time the slowest processor finishes."""
        return max(p.clock for p in self.processors)

    # ------------------------------------------------------------------
    # recovery telemetry (zeros when no fault plan was active)
    # ------------------------------------------------------------------
    @property
    def retries(self):
        """Task attempts that failed transiently and were re-executed."""
        return self.recovery.retries if self.recovery is not None else 0

    @property
    def reassignments(self):
        """Task dispatches on a different node than the previous attempt."""
        return self.recovery.reassignments if self.recovery is not None else 0

    @property
    def lost_work_seconds(self):
        """Simulated seconds of work charged to attempts that failed."""
        return self.recovery.lost_work_seconds if self.recovery is not None else 0.0

    @property
    def failed_processors(self):
        """Indices of processors that crashed during the run."""
        return tuple(self.recovery.failed_processors) if self.recovery is not None else ()

    @property
    def degraded_makespan(self):
        """Wall-clock over the *surviving* processors.

        A node that crashed early freezes its clock at the crash time;
        this is when the remaining fleet actually finished the cube.
        Equals :attr:`makespan` for fault-free runs.
        """
        failed = set(self.failed_processors)
        clocks = [p.clock for p in self.processors if p.index not in failed]
        return max(clocks) if clocks else self.makespan

    def loads(self):
        """Per-processor busy time (Figure 4.1's bars)."""
        return [p.busy_time for p in self.processors]

    def load_imbalance(self):
        """max/mean busy time; 1.0 is perfectly balanced."""
        loads = self.loads()
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0

    def time_breakdown(self):
        """Totals of (cpu, io, comm) seconds across processors."""
        return (
            sum(p.cpu_time for p in self.processors),
            sum(p.io_time for p in self.processors),
            sum(p.comm_time for p in self.processors),
        )


class Cluster:
    """A runnable simulated cluster: spec + cost model + processors."""

    def __init__(self, spec, cost_model):
        self.spec = spec
        self.cost_model = cost_model
        self.processors = [Processor(i, m) for i, m in enumerate(spec.machines)]

    def __len__(self):
        return len(self.processors)

    def reset(self):
        """Zero all clocks and worker state for a fresh run."""
        self.processors = [Processor(i, m) for i, m in enumerate(self.spec.machines)]

    def price(self, processor, execution, include_task_overhead=True):
        """Price one task on ``processor`` as ``(cpu, io, comm)`` seconds
        without advancing any clock (used to charge partial/lost work)."""
        cpu = self.cost_model.cpu_seconds(execution.stats, processor.machine)
        if include_task_overhead:
            cpu += self.cost_model.task_seconds(processor.machine)
        io = self.spec.disk.write_seconds(execution.bytes_written, execution.switches)
        io += self.spec.disk.read_seconds(execution.read_bytes)
        comm = 0.0
        if execution.comm_messages or execution.comm_bytes:
            comm = self.spec.network.transfer_seconds(
                execution.comm_bytes, max(1, execution.comm_messages)
            )
        return cpu, io, comm

    def charge_priced(self, processor, label, cpu, io, comm, execution=None):
        """Advance ``processor``'s clock by an already-priced cost.

        ``execution`` (when the caller has one) is only read for
        observability: its :class:`~repro.core.stats.OpStats` ledger and
        output counts become span attributes.
        """
        start = processor.clock
        processor.clock = start + cpu + io + comm
        processor.cpu_time += cpu
        processor.io_time += io
        processor.comm_time += comm
        processor.tasks_run += 1
        active = obs.current()
        if active is not None:
            self._trace_task(active, processor, label, start, cpu, io, comm,
                             execution)
        return ScheduleEntry(
            label, processor.index, start, processor.clock, cpu, io, comm
        )

    def _trace_task(self, active, processor, label, start, cpu, io, comm,
                    execution):
        """One simulated-clock span per charged task (obs installed)."""
        attrs = {
            "processor": processor.index,
            "machine": processor.machine.name,
            "cpu_s": cpu, "io_s": io, "comm_s": comm,
        }
        if execution is not None:
            stats = execution.stats
            attrs.update(
                cells=execution.cells,
                bytes_written=execution.bytes_written,
                opstats_read_tuples=stats.read_tuples,
                opstats_sort_units=stats.sort_units,
                opstats_scan_tuples=stats.scan_tuples,
                opstats_groups=stats.groups,
                opstats_structure_units=stats.structure_units,
                opstats_partition_moves=stats.partition_moves,
                opstats_peak_items=stats.peak_items,
            )
        active.tracer.add_span(str(label), start, cpu + io + comm,
                               tid="p%d" % processor.index, attrs=attrs)
        active.registry.counter(
            "repro_sim_tasks_total", "Simulated tasks charged, per node.",
            ("processor",)).inc(processor=processor.index)

    def charge(self, processor, execution, include_task_overhead=True):
        """Advance ``processor``'s clock by the priced cost of one task."""
        cpu, io, comm = self.price(processor, execution, include_task_overhead)
        return self.charge_priced(processor, execution.label, cpu, io, comm,
                                  execution=execution)


def resolve_choice(pending, choice):
    """Index of the policy's chosen task in ``pending``.

    Policies preferably return an ``int`` index into ``pending`` — an
    O(1) lookup with no equality scan over (possibly expensive) task
    keys.  Returning the task object itself is still accepted for
    compatibility; either way an out-of-range index or an object not in
    ``pending`` raises :class:`~repro.errors.ClusterError`.
    """
    if isinstance(choice, int) and not isinstance(choice, bool):
        if not 0 <= choice < len(pending):
            raise ClusterError(
                "select_task returned index %d, outside pending range 0..%d"
                % (choice, len(pending) - 1)
            )
        return choice
    for index, task in enumerate(pending):
        if task is choice or task == choice:
            return index
    raise ClusterError(
        "select_task returned %r, which is not one of the %d pending task(s)"
        % (choice, len(pending))
    )


def take_pending(pending, choice):
    """Pop the policy's chosen task from ``pending`` (see resolve_choice)."""
    return pending.pop(resolve_choice(pending, choice))


def run_static(cluster, assignments, execute, fault_plan=None):
    """Run with a fixed task->processor map.

    ``assignments`` is a list of ``(processor_index, task)`` pairs, run
    in order per processor.  ``execute(processor, task)`` performs the
    work and returns a :class:`TaskExecution`.  With a ``fault_plan``
    (:class:`~repro.cluster.faults.FaultPlan`) the run goes through the
    fault-tolerant scheduler: failed tasks retry with backoff and a
    crashed node's queue is redistributed round-robin over survivors.
    """
    with obs.span("sim.run", mode="static") as span:
        if fault_plan is not None:
            from .faults import run_static_faulted

            result = run_static_faulted(cluster, assignments, execute,
                                        fault_plan)
        else:
            schedule = []
            for proc_index, task in assignments:
                try:
                    processor = cluster.processors[proc_index]
                except IndexError:
                    raise ClusterError(
                        "assignment to processor %d of %d"
                        % (proc_index, len(cluster))
                    ) from None
                execution = execute(processor, task)
                schedule.append(cluster.charge(processor, execution))
            result = SimulationResult(cluster.processors, schedule)
        if span:
            span.set(processors=len(cluster), tasks=len(result.schedule),
                     makespan=result.makespan, faulted=fault_plan is not None)
        return result


def run_dynamic(cluster, tasks, select_task, execute, fault_plan=None):
    """Run with demand (manager/worker) scheduling.

    Whenever a processor's clock is the earliest, the manager gives it
    the task chosen by ``select_task(processor, pending)`` (``pending``
    is a list in stable order; the policy returns the *index* of its
    pick, or — for compatibility — the task object itself).  Each
    assignment also pays the manager round-trip
    (``schedule_overhead_s``) — the thesis overlaps the manager with a
    worker on one node, so scheduling is cheap but not free.  With a
    ``fault_plan`` the fault-tolerant scheduler re-queues failed and
    orphaned tasks for the surviving workers to pick up on demand.
    """
    with obs.span("sim.run", mode="dynamic") as span:
        if fault_plan is not None:
            from .faults import run_dynamic_faulted

            result = run_dynamic_faulted(cluster, tasks, select_task, execute,
                                         fault_plan)
        else:
            pending = list(tasks)
            schedule = []
            overhead = cluster.cost_model.schedule_overhead_s
            while pending:
                processor = min(cluster.processors,
                                key=lambda p: (p.clock, p.index))
                task = take_pending(pending, select_task(processor, pending))
                execution = execute(processor, task)
                processor.clock += overhead
                processor.comm_time += overhead
                schedule.append(cluster.charge(processor, execution))
            result = SimulationResult(cluster.processors, schedule)
        if span:
            span.set(processors=len(cluster), tasks=len(result.schedule),
                     makespan=result.makespan, faulted=fault_plan is not None)
        return result

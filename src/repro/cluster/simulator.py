"""The deterministic cluster simulator.

This is the substitution for the thesis' physical PC cluster: each
algorithm executes its real work in-process (single-threaded, correct
results) while the simulator keeps one virtual clock per processor and
advances it by the *priced* cost of each task — CPU (operation ledger /
machine speed), disk I/O (write log through the disk spec) and
communication (message bytes through the network spec).

Two scheduling modes cover all the thesis' algorithms:

* :func:`run_static` — the task->processor map is fixed up front
  (RP's round-robin, BPP's partition ownership);
* :func:`run_dynamic` — demand scheduling: whenever a processor goes
  idle the manager hands it the next task, chosen by a policy that sees
  the worker's previous task (ASL/PT/AHT affinity scheduling).

Determinism: ties on the clock break by processor index, and policies
receive tasks in a stable order, so a run is exactly reproducible.
"""

from ..errors import ClusterError


class TaskExecution:
    """What one executed task cost, as reported by the algorithm driver."""

    __slots__ = (
        "label",
        "stats",
        "cells",
        "bytes_written",
        "switches",
        "read_bytes",
        "comm_bytes",
        "comm_messages",
    )

    def __init__(
        self,
        label,
        stats,
        cells=0,
        bytes_written=0,
        switches=0,
        read_bytes=0,
        comm_bytes=0,
        comm_messages=0,
    ):
        self.label = label
        self.stats = stats
        self.cells = cells
        self.bytes_written = bytes_written
        self.switches = switches
        self.read_bytes = read_bytes
        self.comm_bytes = comm_bytes
        self.comm_messages = comm_messages


class Processor:
    """One simulated node: clock, time breakdown and worker state."""

    def __init__(self, index, machine):
        self.index = index
        self.machine = machine
        self.clock = 0.0
        self.cpu_time = 0.0
        self.io_time = 0.0
        self.comm_time = 0.0
        self.tasks_run = 0
        #: algorithm-specific worker state (e.g. ASL's root skip list)
        self.state = None

    @property
    def busy_time(self):
        return self.cpu_time + self.io_time + self.comm_time

    def __repr__(self):
        return "Processor(%d, %s, clock=%.3f)" % (self.index, self.machine.name, self.clock)


class ScheduleEntry:
    """One task's placement in simulated time (for traces and plots)."""

    __slots__ = ("label", "processor", "start", "end", "cpu", "io", "comm")

    def __init__(self, label, processor, start, end, cpu, io, comm):
        self.label = label
        self.processor = processor
        self.start = start
        self.end = end
        self.cpu = cpu
        self.io = io
        self.comm = comm

    def __repr__(self):
        return "ScheduleEntry(%r, p%d, %.3f..%.3f)" % (
            self.label,
            self.processor,
            self.start,
            self.end,
        )


class SimulationResult:
    """Outcome of a simulated run: per-processor times and the schedule."""

    def __init__(self, processors, schedule):
        self.processors = processors
        self.schedule = schedule

    @property
    def makespan(self):
        """Wall-clock: the time the slowest processor finishes."""
        return max(p.clock for p in self.processors)

    def loads(self):
        """Per-processor busy time (Figure 4.1's bars)."""
        return [p.busy_time for p in self.processors]

    def load_imbalance(self):
        """max/mean busy time; 1.0 is perfectly balanced."""
        loads = self.loads()
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0

    def time_breakdown(self):
        """Totals of (cpu, io, comm) seconds across processors."""
        return (
            sum(p.cpu_time for p in self.processors),
            sum(p.io_time for p in self.processors),
            sum(p.comm_time for p in self.processors),
        )


class Cluster:
    """A runnable simulated cluster: spec + cost model + processors."""

    def __init__(self, spec, cost_model):
        self.spec = spec
        self.cost_model = cost_model
        self.processors = [Processor(i, m) for i, m in enumerate(spec.machines)]

    def __len__(self):
        return len(self.processors)

    def reset(self):
        """Zero all clocks and worker state for a fresh run."""
        self.processors = [Processor(i, m) for i, m in enumerate(self.spec.machines)]

    def charge(self, processor, execution, include_task_overhead=True):
        """Advance ``processor``'s clock by the priced cost of one task."""
        cpu = self.cost_model.cpu_seconds(execution.stats, processor.machine)
        if include_task_overhead:
            cpu += self.cost_model.task_seconds(processor.machine)
        io = self.spec.disk.write_seconds(execution.bytes_written, execution.switches)
        io += self.spec.disk.read_seconds(execution.read_bytes)
        comm = 0.0
        if execution.comm_messages or execution.comm_bytes:
            comm = self.spec.network.transfer_seconds(
                execution.comm_bytes, max(1, execution.comm_messages)
            )
        start = processor.clock
        processor.clock = start + cpu + io + comm
        processor.cpu_time += cpu
        processor.io_time += io
        processor.comm_time += comm
        processor.tasks_run += 1
        return ScheduleEntry(
            execution.label, processor.index, start, processor.clock, cpu, io, comm
        )


def run_static(cluster, assignments, execute):
    """Run with a fixed task->processor map.

    ``assignments`` is a list of ``(processor_index, task)`` pairs, run
    in order per processor.  ``execute(processor, task)`` performs the
    work and returns a :class:`TaskExecution`.
    """
    schedule = []
    for proc_index, task in assignments:
        try:
            processor = cluster.processors[proc_index]
        except IndexError:
            raise ClusterError(
                "assignment to processor %d of %d" % (proc_index, len(cluster))
            ) from None
        execution = execute(processor, task)
        schedule.append(cluster.charge(processor, execution))
    return SimulationResult(cluster.processors, schedule)


def run_dynamic(cluster, tasks, select_task, execute):
    """Run with demand (manager/worker) scheduling.

    Whenever a processor's clock is the earliest, the manager gives it
    the task chosen by ``select_task(processor, pending)`` (``pending``
    is a list in stable order; the policy must return one of its
    members).  Each assignment also pays the manager round-trip
    (``schedule_overhead_s``) — the thesis overlaps the manager with a
    worker on one node, so scheduling is cheap but not free.
    """
    pending = list(tasks)
    schedule = []
    overhead = cluster.cost_model.schedule_overhead_s
    while pending:
        processor = min(cluster.processors, key=lambda p: (p.clock, p.index))
        task = select_task(processor, pending)
        pending.remove(task)
        execution = execute(processor, task)
        processor.clock += overhead
        processor.comm_time += overhead
        schedule.append(cluster.charge(processor, execution))
    return SimulationResult(cluster.processors, schedule)

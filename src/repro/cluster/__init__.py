"""Simulated PC-cluster substrate: specs, cost model and scheduler."""

from .costmodel import CostModel
from .faults import (
    FaultPlan,
    NodeCrash,
    RecoveryLog,
    Slowdown,
    TaskFailure,
)
from .simulator import (
    Cluster,
    Processor,
    ScheduleEntry,
    SimulationResult,
    TaskExecution,
    run_dynamic,
    run_static,
)
from .spec import (
    ETHERNET_100,
    MYRINET,
    PII_266,
    PIII_500,
    ClusterSpec,
    DiskSpec,
    MachineSpec,
    NetworkSpec,
    cluster1,
    cluster2,
    cluster3,
    homogeneous,
    paper_cluster,
)

__all__ = [
    "CostModel",
    "FaultPlan",
    "NodeCrash",
    "Slowdown",
    "TaskFailure",
    "RecoveryLog",
    "Cluster",
    "Processor",
    "ScheduleEntry",
    "SimulationResult",
    "TaskExecution",
    "run_static",
    "run_dynamic",
    "ClusterSpec",
    "MachineSpec",
    "NetworkSpec",
    "DiskSpec",
    "PIII_500",
    "PII_266",
    "ETHERNET_100",
    "MYRINET",
    "homogeneous",
    "cluster1",
    "cluster2",
    "cluster3",
    "paper_cluster",
]

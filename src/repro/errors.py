"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type to handle anything the library signals deliberately.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query referenced dimensions inconsistently."""


class EncodingError(ReproError):
    """A value could not be encoded or a code could not be decoded."""


class PlanError(ReproError):
    """An algorithm's planning stage received an impossible configuration."""


class ClusterError(ReproError):
    """The simulated cluster was configured or driven incorrectly."""


class TaskRetryExhausted(ClusterError):
    """A task kept failing after every allowed retry.

    Raised by the fault-tolerant runners when one task's transient
    failures exceed the :class:`~repro.cluster.faults.FaultPlan`'s
    ``max_retries`` budget.
    """

    def __init__(self, label, attempts, message=""):
        detail = message or "task retries exhausted"
        super().__init__(
            "%s: task %r failed %d time(s), exceeding max_retries"
            % (detail, label, attempts)
        )
        self.label = label
        self.attempts = attempts


class ClusterDegradedError(ClusterError):
    """Every processor crashed while work was still outstanding.

    Carries how many tasks were stranded and which processors failed, so
    callers can report how far the degraded run got.
    """

    def __init__(self, pending_tasks, failed_processors, message=""):
        detail = message or "cluster fully degraded"
        super().__init__(
            "%s: %d task(s) stranded after processors %s failed"
            % (detail, pending_tasks, sorted(failed_processors))
        )
        self.pending_tasks = pending_tasks
        self.failed_processors = tuple(failed_processors)


class MemoryBudgetExceeded(ReproError):
    """A data structure outgrew its configured memory budget.

    Raised by the Apriori hash-tree cube to reproduce the paper's finding
    that the hash-tree algorithm "used up memory too rapidly that it fails
    to process large data set" (Section 3.5.1).
    """

    def __init__(self, used_bytes, budget_bytes, message=""):
        detail = message or "memory budget exceeded"
        super().__init__(
            "%s: used %d bytes of a %d byte budget" % (detail, used_bytes, budget_bytes)
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes

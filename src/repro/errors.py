"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type to handle anything the library signals deliberately.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query referenced dimensions inconsistently."""


class EncodingError(ReproError):
    """A value could not be encoded or a code could not be decoded."""


class PlanError(ReproError):
    """An algorithm's planning stage received an impossible configuration."""


class ClusterError(ReproError):
    """The simulated cluster was configured or driven incorrectly."""


class MemoryBudgetExceeded(ReproError):
    """A data structure outgrew its configured memory budget.

    Raised by the Apriori hash-tree cube to reproduce the paper's finding
    that the hash-tree algorithm "used up memory too rapidly that it fails
    to process large data set" (Section 3.5.1).
    """

    def __init__(self, used_bytes, budget_bytes, message=""):
        detail = message or "memory budget exceeded"
        super().__init__(
            "%s: used %d bytes of a %d byte budget" % (detail, used_bytes, budget_bytes)
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes

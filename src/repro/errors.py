"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch one type to handle anything the library signals deliberately.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or query referenced dimensions inconsistently."""


class EncodingError(ReproError):
    """A value could not be encoded or a code could not be decoded."""


class PlanError(ReproError):
    """An algorithm's planning stage received an impossible configuration."""


class ClusterError(ReproError):
    """The simulated cluster was configured or driven incorrectly."""


class TaskRetryExhausted(ClusterError):
    """A task kept failing after every allowed retry.

    Raised by the fault-tolerant runners when one task's transient
    failures exceed the :class:`~repro.cluster.faults.FaultPlan`'s
    ``max_retries`` budget.
    """

    def __init__(self, label, attempts, message=""):
        detail = message or "task retries exhausted"
        super().__init__(
            "%s: task %r failed %d time(s), exceeding max_retries"
            % (detail, label, attempts)
        )
        self.label = label
        self.attempts = attempts


class ClusterDegradedError(ClusterError):
    """Every processor crashed while work was still outstanding.

    Carries how many tasks were stranded and which processors failed, so
    callers can report how far the degraded run got.
    """

    def __init__(self, pending_tasks, failed_processors, message=""):
        detail = message or "cluster fully degraded"
        super().__init__(
            "%s: %d task(s) stranded after processors %s failed"
            % (detail, pending_tasks, sorted(failed_processors))
        )
        self.pending_tasks = pending_tasks
        self.failed_processors = tuple(failed_processors)


class WorkerCrashError(ReproError):
    """A real worker process kept dying (or hanging) past the retry budget.

    Raised by the supervised local backend
    (:func:`~repro.parallel.local.multiprocess_iceberg_cube`) when one
    task batch fails more than ``max_retries`` times — the worker was
    SIGKILLed, segfaulted, or exceeded the batch timeout on every
    attempt.
    """

    def __init__(self, batch_id, attempts, message=""):
        detail = message or "worker crash retries exhausted"
        super().__init__(
            "%s: batch %r failed %d time(s), exceeding the retry budget"
            % (detail, batch_id, attempts)
        )
        self.batch_id = batch_id
        self.attempts = attempts


class StoreCorruptError(ReproError):
    """A persistent cube store failed integrity verification.

    Raised by :meth:`~repro.serve.store.CubeStore.open` when a leaf file
    is truncated, corrupted or missing and cannot be salvaged.  ``leaf``
    names the offending cuboid (or file) precisely.
    """

    def __init__(self, leaf, reason, directory=""):
        where = " in %r" % (directory,) if directory else ""
        super().__init__(
            "cube store corrupt%s: leaf %s: %s" % (where, leaf, reason)
        )
        self.leaf = leaf
        self.reason = reason
        self.directory = directory


class WalCorruptError(ReproError):
    """A write-ahead-log record failed verification.

    Raised by :mod:`repro.serve.ingest` when a WAL record's checksum,
    magic or structure does not parse — a torn write that survived the
    atomic-rename protocol (e.g. disk corruption) or foreign debris in
    the WAL directory.  ``path`` names the offending record file.
    """

    def __init__(self, path, reason):
        super().__init__("WAL record %s corrupt: %s" % (path, reason))
        self.path = path
        self.reason = reason


class ServerOverloadedError(ReproError):
    """The server shed this query instead of queueing it unboundedly.

    Raised on admission when the pending-query queue is full, or when
    the recompute circuit breaker is open.  Maps to HTTP 429.
    """

    def __init__(self, reason="admission queue full", pending=None, limit=None):
        detail = reason
        if pending is not None and limit is not None:
            detail = "%s (%d pending, limit %d)" % (reason, pending, limit)
        super().__init__("server overloaded: %s" % detail)
        self.reason = reason
        self.pending = pending
        self.limit = limit


class ReplicaError(ReproError):
    """One replica of a sharded serving tier failed to answer.

    Raised by the router's replica client on a connection error, a
    timeout, or a 5xx reply — the failure modes that justify failing
    over to a sibling replica.  4xx replies are *not* wrapped: a bad
    query stays bad on every replica.
    """

    def __init__(self, url, reason, status=None):
        detail = "replica %s failed: %s" % (url, reason)
        if status is not None:
            detail += " (HTTP %d)" % status
        super().__init__(detail)
        self.url = url
        self.reason = reason
        self.status = status


class ShardUnavailableError(ReproError):
    """Every replica of one shard is down: a partial, honest outage.

    The router raises this instead of inventing an answer when a whole
    shard (all its replicas) fails or is breaker-open.  Maps to a
    structured HTTP 503 naming the missing shard — never a wrong or
    silently truncated result.
    """

    def __init__(self, shard, n_replicas, detail=""):
        message = ("shard %d unavailable: all %d replica(s) failed"
                   % (shard, n_replicas))
        if detail:
            message += " (%s)" % detail
        super().__init__(message)
        self.shard = shard
        self.n_replicas = n_replicas


class GenerationSkewError(ReproError):
    """A fan-out query could not pin one store generation.

    Raised when shards keep answering from different generations for
    longer than the router's retry budget (appends landing faster than
    reads can converge).  Maps to HTTP 503: the client should retry —
    the router never merges two generations into one answer.
    """

    def __init__(self, generations, attempts):
        super().__init__(
            "generation skew across shards persisted for %d attempt(s): "
            "saw generations %s" % (attempts, sorted(generations))
        )
        self.generations = tuple(sorted(generations))
        self.attempts = attempts


class DeadlineExceededError(ReproError):
    """A query (or batch) ran past its deadline.  Maps to HTTP 504."""

    def __init__(self, deadline_s, elapsed_s=None, stage=""):
        detail = "deadline of %.3fs exceeded" % (deadline_s,)
        if elapsed_s is not None:
            detail += " after %.3fs" % (elapsed_s,)
        if stage:
            detail += " during %s" % (stage,)
        super().__init__(detail)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.stage = stage


class MemoryBudgetExceeded(ReproError):
    """A data structure outgrew its configured memory budget.

    Raised by the Apriori hash-tree cube to reproduce the paper's finding
    that the hash-tree algorithm "used up memory too rapidly that it fails
    to process large data set" (Section 3.5.1).
    """

    def __init__(self, used_bytes, budget_bytes, message=""):
        detail = message or "memory budget exceeded"
        super().__init__(
            "%s: used %d bytes of a %d byte budget" % (detail, used_bytes, budget_bytes)
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes

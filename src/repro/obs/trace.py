"""Structured tracing: nestable spans into a bounded in-memory buffer.

A :class:`Tracer` records :class:`Span` intervals — named, attributed,
nested via per-thread stacks so ids/parent-ids reconstruct the call
tree — plus instant events, into a bounded ring buffer (oldest spans
evicted, eviction counted).  Two clock domains coexist:

* ``wall`` — real spans opened with :meth:`Tracer.span`, timed by an
  injectable monotonic clock relative to the tracer's epoch;
* ``sim`` — already-timed intervals (the cluster simulator's virtual
  processor clocks) recorded whole with :meth:`Tracer.add_span`.

:meth:`Tracer.chrome_trace` renders everything as Chrome
``trace_event`` JSON — load the file in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ and a whole cube build (or a
fault-recovery episode) sits on one timeline, wall and simulated time
side by side as two named processes.
"""

import itertools
import json
import threading
import time

__all__ = ["Span", "Tracer", "WALL_PID", "SIM_PID"]

#: Chrome-trace process ids for the two clock domains.
WALL_PID = 1
SIM_PID = 2


class Span:
    """One traced interval (or instant event, when ``duration is None``).

    Live spans are context managers::

        with tracer.span("store.append", rows=n) as span:
            ...
            span.event("journal.commit")
            span.set(leaves=len(out))

    A span records itself into the tracer's buffer on exit; attributes
    set after exit are not seen by exports already taken.
    """

    __slots__ = ("name", "span_id", "parent_id", "tid", "start", "duration",
                 "attrs", "events", "clock", "_tracer")

    def __init__(self, tracer, name, span_id, parent_id, tid, start,
                 attrs=None, clock="wall", duration=None):
        # The span takes ownership of ``attrs`` (no defensive copy):
        # this runs per cuboid on the hot path.
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.start = start
        self.duration = duration
        self.attrs = attrs if attrs is not None else {}
        self.events = None  # lazily created; most spans have none
        self.clock = clock

    def set(self, **attrs):
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a named instant inside this span (span-relative ts)."""
        ts = self._tracer.now() if self.clock == "wall" else self.start
        if self.events is None:
            self.events = []
        self.events.append((name, ts, attrs))
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._finish(self, error=exc_type is not None)
        return False

    def __repr__(self):
        dur = "%.6fs" % self.duration if self.duration is not None else "?"
        return "Span(%r, id=%d, parent=%r, %s, %s)" % (
            self.name, self.span_id, self.parent_id, dur, self.clock)


class Tracer:
    """Span recorder with a bounded buffer and Chrome-trace export."""

    def __init__(self, max_spans=20_000, clock=time.perf_counter):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1, got %r" % (max_spans,))
        self.max_spans = int(max_spans)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._buffer = []
        self._head = 0  # ring-buffer write position once full
        self._ids = itertools.count(1)  # next() is atomic in CPython
        #: spans evicted from the buffer (oldest-first) since creation
        self.dropped = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self):
        """Seconds since the tracer's epoch (the wall-span timebase)."""
        return self._clock() - self._epoch

    def _stack(self):
        # One (stack, thread-name) pair per thread, created on first use;
        # the try/except is cheaper than getattr-with-default on the hit
        # path, and this runs per span.
        local = self._local
        try:
            return local.stack
        except AttributeError:
            local.stack = []
            local.tid = threading.current_thread().name
            return local.stack

    def _new_id(self):
        return next(self._ids)

    def current_span(self):
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name, **attrs):
        """Open a nested wall-clock span on the calling thread."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            self, name, next(self._ids),
            parent.span_id if parent is not None else None,
            self._local.tid, self._clock() - self._epoch, attrs,
        )
        stack.append(span)
        return span

    def event(self, name, **attrs):
        """An instant event: on the current span, else standalone."""
        current = self.current_span()
        if current is not None:
            current.event(name, **attrs)
            return
        span = Span(self, name, next(self._ids), None,
                    self._local.tid, self.now(), attrs)
        self._record(span)  # duration None -> rendered as an instant

    def add_span(self, name, start, duration, tid="sim", parent_id=None,
                 attrs=None, clock="sim"):
        """Record an already-timed interval (e.g. simulated time).

        ``start``/``duration`` are seconds on the caller's clock;
        ``clock="sim"`` renders under the simulated-cluster process in
        the Chrome export, keeping virtual and wall timelines apart.
        """
        span = Span(self, name, self._new_id(), parent_id, tid,
                    float(start), attrs, clock=clock,
                    duration=float(duration))
        self._record(span)
        return span

    def _finish(self, span, error=False):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - exotic exit order
            stack.remove(span)
        span.duration = max(0.0, self.now() - span.start)
        if error:
            span.attrs.setdefault("error", True)
        self._record(span)

    def _record(self, span):
        with self._lock:
            if len(self._buffer) < self.max_spans:
                self._buffer.append(span)
            else:
                self._buffer[self._head] = span
                self._head = (self._head + 1) % self.max_spans
                self.dropped += 1

    # ------------------------------------------------------------------
    # reading and export
    # ------------------------------------------------------------------
    def spans(self, name=None):
        """Snapshot of recorded spans, oldest first."""
        with self._lock:
            ordered = self._buffer[self._head:] + self._buffer[:self._head]
        if name is not None:
            ordered = [s for s in ordered if s.name == name]
        return ordered

    def __len__(self):
        with self._lock:
            return len(self._buffer)

    def chrome_trace(self):
        """The buffer as a Chrome ``trace_event`` JSON object.

        Wall spans land under process "wall clock", simulated spans
        under "simulated cluster"; per-domain threads keep their
        recorded names.  ``ts``/``dur`` are microseconds, as the format
        requires.
        """
        events = []
        tids = {}  # (pid, tid_label) -> numeric tid

        def tid_for(pid, label):
            key = (pid, str(label))
            if key not in tids:
                tids[key] = len(tids) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tids[key], "args": {"name": str(label)},
                })
            return tids[key]

        for pid, label in ((WALL_PID, "wall clock"),
                           (SIM_PID, "simulated cluster")):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": label}})
        for span in self.spans():
            pid = SIM_PID if span.clock == "sim" else WALL_PID
            tid = tid_for(pid, span.tid)
            ts = span.start * 1e6
            args = {key: _jsonable(value)
                    for key, value in span.attrs.items()}
            if span.parent_id is not None:
                args["parent_span_id"] = span.parent_id
            args["span_id"] = span.span_id
            if span.duration is None:
                events.append({"name": span.name, "ph": "i", "s": "t",
                               "pid": pid, "tid": tid, "ts": ts,
                               "args": args})
            else:
                events.append({"name": span.name, "ph": "X", "pid": pid,
                               "tid": tid, "ts": ts,
                               "dur": span.duration * 1e6, "args": args})
            for name, ts_event, attrs in span.events or ():
                events.append({
                    "name": name, "ph": "i", "s": "t", "pid": pid,
                    "tid": tid, "ts": ts_event * 1e6,
                    "args": {key: _jsonable(value)
                             for key, value in attrs.items()},
                })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"dropped_spans": self.dropped}}

    def export_chrome(self, path):
        """Write :meth:`chrome_trace` to ``path``; returns the dict."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
        return trace


def _jsonable(value):
    """Coerce an attribute to something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)

"""Structured tracing: nestable spans into a bounded in-memory buffer.

A :class:`Tracer` records :class:`Span` intervals — named, attributed,
nested via per-thread stacks so ids/parent-ids reconstruct the call
tree — plus instant events, into a bounded ring buffer (oldest spans
evicted, eviction counted).  Two clock domains coexist:

* ``wall`` — real spans opened with :meth:`Tracer.span`, timed by an
  injectable monotonic clock relative to the tracer's epoch;
* ``sim`` — already-timed intervals (the cluster simulator's virtual
  processor clocks) recorded whole with :meth:`Tracer.add_span`.

**Distributed context.**  Every span belongs to a *trace*: a 128-bit
trace id shared by every span of one request, across every process it
touches.  Span ids are random 64-bit values (unique without
coordination), so a context can hop processes as a W3C
``traceparent``-style header::

    00-<32 hex trace id>-<16 hex parent span id>-01

:meth:`Tracer.inject` renders the calling thread's current context as
that header; :meth:`Tracer.extract` parses one (tolerantly — a
malformed header is ``None``, never an error); :meth:`Tracer.activate`
installs an extracted :class:`SpanContext` as the thread's *remote
parent*, so the next root span opened on the thread joins the caller's
trace instead of starting its own.  The serve stack threads this
through HTTP request headers and the worker-pool job tuples.

:meth:`Tracer.chrome_trace` renders everything as Chrome
``trace_event`` JSON — load the file in ``chrome://tracing`` or
`Perfetto <https://ui.perfetto.dev>`_ and a whole cube build (or a
fault-recovery episode) sits on one timeline, wall and simulated time
side by side as two named processes.  :func:`merge_chrome_traces` does
the same for a *cluster*: one process track per node, every node's
spans aligned on a shared wall-clock axis, correlated by trace id.
"""

import json
import os
import random
import re
import threading
import time
from collections import namedtuple
from contextlib import contextmanager

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "format_traceparent",
    "parse_traceparent",
    "merge_chrome_traces",
    "WALL_PID",
    "SIM_PID",
]

#: Chrome-trace process ids for the two clock domains.
WALL_PID = 1
SIM_PID = 2

#: One propagated trace position: the 32-hex-char trace id and the
#: integer span id of the remote parent.
SpanContext = namedtuple("SpanContext", ("trace_id", "span_id"))

_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")


def format_traceparent(trace_id, span_id):
    """Render a context as a ``traceparent``-style header value."""
    return "00-%s-%016x-01" % (trace_id, span_id)


def parse_traceparent(header):
    """Parse a ``traceparent`` header into a :class:`SpanContext`.

    Tolerant by design: anything malformed — wrong version, wrong
    width, all-zero ids, not a string — returns ``None``.  A bad
    header from a peer must degrade to "no context", never to a 500.
    """
    if not isinstance(header, str):
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_hex = match.groups()
    if trace_id == "0" * 32 or span_hex == "0" * 16:
        return None
    return SpanContext(trace_id, int(span_hex, 16))


class Span:
    """One traced interval (or instant event, when ``duration is None``).

    Live spans are context managers::

        with tracer.span("store.append", rows=n) as span:
            ...
            span.event("journal.commit")
            span.set(leaves=len(out))

    A span records itself into the tracer's buffer on exit; attributes
    set after exit are not seen by exports already taken.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "tid",
                 "start", "duration", "attrs", "events", "clock", "seq",
                 "_tracer")

    def __init__(self, tracer, name, span_id, parent_id, tid, start,
                 attrs=None, clock="wall", duration=None, trace_id=None):
        # The span takes ownership of ``attrs`` (no defensive copy):
        # this runs per cuboid on the hot path.
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.start = start
        self.duration = duration
        self.attrs = attrs if attrs is not None else {}
        self.events = None  # lazily created; most spans have none
        self.clock = clock
        self.seq = 0  # buffer sequence number, assigned at record time

    def context(self):
        """This span's position as a :class:`SpanContext`."""
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs):
        """Attach (or overwrite) attributes on the span."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a named instant inside this span (span-relative ts)."""
        ts = self._tracer.now() if self.clock == "wall" else self.start
        if self.events is None:
            self.events = []
        self.events.append((name, ts, attrs))
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._finish(self, error=exc_type is not None)
        return False

    def __repr__(self):
        dur = "%.6fs" % self.duration if self.duration is not None else "?"
        return "Span(%r, id=%d, parent=%r, trace=%s, %s, %s)" % (
            self.name, self.span_id, self.parent_id, self.trace_id, dur,
            self.clock)


class Tracer:
    """Span recorder with a bounded buffer and Chrome-trace export."""

    def __init__(self, max_spans=20_000, clock=time.perf_counter):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1, got %r" % (max_spans,))
        self.max_spans = int(max_spans)
        self._clock = clock
        self._epoch = clock()
        #: wall-clock seconds (``time.time``) at the tracer's epoch;
        #: lets exports from different processes share one time axis.
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._buffer = []
        self._head = 0  # ring-buffer write position once full
        self._seq = 0  # monotonically increasing record counter
        #: spans evicted from the buffer (oldest-first) since creation
        self.dropped = 0
        #: optional hook called with the eviction count after each drop
        #: (the installed registry wires a counter here)
        self.on_drop = None
        self._local = threading.local()
        # Random ids must stay unique across forked workers: remember
        # the seeding pid and reseed in any child before first use.
        self._pid = os.getpid()
        self._rand = random.Random(int.from_bytes(os.urandom(16), "big"))

    # ------------------------------------------------------------------
    # ids and context
    # ------------------------------------------------------------------
    def _randbits(self, n_bits):
        if os.getpid() != self._pid:  # forked child: parent's stream
            self._pid = os.getpid()
            self._rand = random.Random(int.from_bytes(os.urandom(16), "big"))
        return self._rand.getrandbits(n_bits)

    def _new_span_id(self):
        value = 0
        while not value:
            value = self._randbits(64)
        return value

    def _new_trace_id(self):
        value = 0
        while not value:
            value = self._randbits(128)
        return "%032x" % value

    def current_context(self):
        """The thread's trace position: innermost open span, else the
        remote parent installed by :meth:`activate`, else ``None``."""
        stack = self._stack()
        if stack:
            return stack[-1].context()
        return getattr(self._local, "remote", None)

    def inject(self):
        """The current context as a ``traceparent`` header, or ``None``."""
        context = self.current_context()
        if context is None:
            return None
        return format_traceparent(context.trace_id, context.span_id)

    def extract(self, header):
        """Parse a ``traceparent`` header (``None`` when malformed)."""
        return parse_traceparent(header)

    @contextmanager
    def activate(self, context):
        """Install ``context`` as this thread's remote parent.

        ``context`` may be a :class:`SpanContext`, a raw ``traceparent``
        header string, or ``None`` (no-op).  While active, a root span
        opened on this thread adopts the context's trace id and parents
        under its span id — the receiving half of cross-process
        propagation.
        """
        if isinstance(context, str):
            context = parse_traceparent(context)
        self._stack()  # ensure the thread-local exists
        previous = getattr(self._local, "remote", None)
        self._local.remote = context
        try:
            yield context
        finally:
            self._local.remote = previous

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def now(self):
        """Seconds since the tracer's epoch (the wall-span timebase)."""
        return self._clock() - self._epoch

    def _stack(self):
        # One (stack, thread-name) pair per thread, created on first use;
        # the try/except is cheaper than getattr-with-default on the hit
        # path, and this runs per span.
        local = self._local
        try:
            return local.stack
        except AttributeError:
            local.stack = []
            local.tid = threading.current_thread().name
            local.remote = None
            return local.stack

    def current_span(self):
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name, **attrs):
        """Open a nested wall-clock span on the calling thread.

        Parentage: under the innermost open span when one exists; else
        under the remote parent installed by :meth:`activate` (joining
        the caller's trace); else a fresh root with a new trace id.
        """
        stack = self._stack()
        if stack:
            parent = stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            remote = self._local.remote
            if remote is not None:
                trace_id, parent_id = remote.trace_id, remote.span_id
            else:
                trace_id, parent_id = self._new_trace_id(), None
        span = Span(
            self, name, self._new_span_id(), parent_id,
            self._local.tid, self._clock() - self._epoch, attrs,
            trace_id=trace_id,
        )
        stack.append(span)
        return span

    def event(self, name, **attrs):
        """An instant event: on the current span, else standalone."""
        current = self.current_span()
        if current is not None:
            current.event(name, **attrs)
            return
        remote = getattr(self._local, "remote", None)
        span = Span(self, name, self._new_span_id(),
                    remote.span_id if remote is not None else None,
                    self._local.tid, self.now(), attrs,
                    trace_id=remote.trace_id if remote is not None else None)
        self._record(span)  # duration None -> rendered as an instant

    def add_span(self, name, start, duration, tid="sim", parent_id=None,
                 attrs=None, clock="sim", trace_id=None):
        """Record an already-timed interval (e.g. simulated time).

        ``start``/``duration`` are seconds on the caller's clock;
        ``clock="sim"`` renders under the simulated-cluster process in
        the Chrome export, keeping virtual and wall timelines apart.
        ``trace_id``/``parent_id`` link the interval into a distributed
        trace when the caller has one.
        """
        span = Span(self, name, self._new_span_id(), parent_id, tid,
                    float(start), attrs, clock=clock,
                    duration=float(duration), trace_id=trace_id)
        self._record(span)
        return span

    def _finish(self, span, error=False):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - exotic exit order
            stack.remove(span)
        span.duration = max(0.0, self.now() - span.start)
        if error:
            span.attrs.setdefault("error", True)
        self._record(span)

    def _record(self, span):
        dropped = False
        with self._lock:
            self._seq += 1
            span.seq = self._seq
            if len(self._buffer) < self.max_spans:
                self._buffer.append(span)
            else:
                self._buffer[self._head] = span
                self._head = (self._head + 1) % self.max_spans
                self.dropped += 1
                dropped = True
        if dropped and self.on_drop is not None:
            self.on_drop(1)

    # ------------------------------------------------------------------
    # reading and export
    # ------------------------------------------------------------------
    def spans(self, name=None):
        """Snapshot of recorded spans, oldest first."""
        with self._lock:
            ordered = self._buffer[self._head:] + self._buffer[:self._head]
        if name is not None:
            ordered = [s for s in ordered if s.name == name]
        return ordered

    def __len__(self):
        with self._lock:
            return len(self._buffer)

    def spans_json(self, since=0):
        """Recorded spans with buffer sequence number > ``since`` as
        JSON-ready dicts, oldest first (the ``GET /trace?since=`` body).

        The returned ``seq`` values are this process's buffer positions;
        a collector passes the largest one back as ``since`` to page
        incrementally.
        """
        since = int(since)
        out = []
        for span in self.spans():
            if span.seq <= since:
                continue
            entry = {
                "seq": span.seq,
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "tid": str(span.tid),
                "start": span.start,
                "duration": span.duration,
                "clock": span.clock,
                "attrs": {str(k): _jsonable(v)
                          for k, v in span.attrs.items()},
            }
            if span.events:
                entry["events"] = [
                    [name, ts, {str(k): _jsonable(v)
                                for k, v in attrs.items()}]
                    for name, ts, attrs in span.events
                ]
            out.append(entry)
        return out

    def payload(self, since=0, node=None):
        """One process's trace export: identity, drop count and spans.

        The unit :func:`merge_chrome_traces` consumes — served by the
        replica and router ``GET /trace`` endpoints.
        """
        return {
            "enabled": True,
            "node": node,
            "pid": os.getpid(),
            "epoch_unix": self.epoch_unix,
            "dropped": self.dropped,
            "spans": self.spans_json(since=since),
        }

    def chrome_trace(self):
        """The buffer as a Chrome ``trace_event`` JSON object.

        Wall spans land under process "wall clock", simulated spans
        under "simulated cluster"; per-domain threads keep their
        recorded names.  ``ts``/``dur`` are microseconds, as the format
        requires.
        """
        events = []
        tids = {}  # (pid, tid_label) -> numeric tid

        def tid_for(pid, label):
            key = (pid, str(label))
            if key not in tids:
                tids[key] = len(tids) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tids[key], "args": {"name": str(label)},
                })
            return tids[key]

        for pid, label in ((WALL_PID, "wall clock"),
                           (SIM_PID, "simulated cluster")):
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "args": {"name": label}})
        for span in self.spans():
            pid = SIM_PID if span.clock == "sim" else WALL_PID
            tid = tid_for(pid, span.tid)
            _render_span_events(events, {
                "name": span.name, "trace_id": span.trace_id,
                "span_id": span.span_id, "parent_id": span.parent_id,
                "start": span.start, "duration": span.duration,
                "attrs": span.attrs, "events": span.events,
            }, pid, tid)
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"dropped_spans": self.dropped}}

    def export_chrome(self, path):
        """Write :meth:`chrome_trace` to ``path``; returns the dict."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
        return trace


def _render_span_events(events, span, pid, tid, ts_offset=0.0):
    """Append one span's Chrome events (duration/instant + its events).

    ``span`` is a dict (a :meth:`Tracer.spans_json` entry or the
    equivalent built from a live :class:`Span`); ``ts_offset`` shifts
    its process-relative timestamps onto the merged axis.
    """
    ts = (span["start"] + ts_offset) * 1e6
    args = {key: _jsonable(value)
            for key, value in (span.get("attrs") or {}).items()}
    if span.get("parent_id") is not None:
        args["parent_span_id"] = span["parent_id"]
    args["span_id"] = span["span_id"]
    if span.get("trace_id") is not None:
        args["trace_id"] = span["trace_id"]
    if span.get("duration") is None:
        events.append({"name": span["name"], "ph": "i", "s": "t",
                       "pid": pid, "tid": tid, "ts": ts, "args": args})
    else:
        events.append({"name": span["name"], "ph": "X", "pid": pid,
                       "tid": tid, "ts": ts,
                       "dur": span["duration"] * 1e6, "args": args})
    for name, ts_event, attrs in span.get("events") or ():
        events.append({
            "name": name, "ph": "i", "s": "t", "pid": pid, "tid": tid,
            "ts": (ts_event + ts_offset) * 1e6,
            "args": {key: _jsonable(value)
                     for key, value in (attrs or {}).items()},
        })


def merge_chrome_traces(processes):
    """Merge per-process trace payloads into one Chrome trace.

    ``processes`` is a list of ``(label, payload)`` pairs, each payload
    a :meth:`Tracer.payload` dict (typically scraped from a node's
    ``GET /trace``).  Every process gets its own Chrome process track
    named ``label``; wall spans are aligned on a shared axis via each
    payload's ``epoch_unix`` anchor, so one request's spans line up
    across router and replicas (correlate them by ``trace_id`` in the
    span args).  Simulated-clock spans keep their own timebase under a
    ``sim:``-prefixed thread.  Disabled payloads (a node running
    without obs installed) contribute no spans but are named in the
    metadata so their absence is visible, not silent.
    """
    events = []
    tids = {}
    dropped = {}
    disabled = []
    anchors = [p.get("epoch_unix") for _label, p in processes
               if p.get("enabled") and p.get("epoch_unix") is not None]
    base = min(anchors) if anchors else 0.0

    def tid_for(pid, label):
        key = (pid, str(label))
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[key], "args": {"name": str(label)},
            })
        return tids[key]

    for pid, (label, payload) in enumerate(processes, start=1):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": str(label)}})
        if not payload.get("enabled"):
            disabled.append(str(label))
            continue
        dropped[str(label)] = int(payload.get("dropped") or 0)
        offset = (payload.get("epoch_unix") or base) - base
        for span in payload.get("spans") or ():
            if span.get("clock") == "sim":
                tid = tid_for(pid, "sim:%s" % span.get("tid", "sim"))
                _render_span_events(events, span, pid, tid)
            else:
                tid = tid_for(pid, span.get("tid", "main"))
                _render_span_events(events, span, pid, tid, ts_offset=offset)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_spans": sum(dropped.values()),
            "dropped_by_process": dropped,
            "disabled_processes": disabled,
        },
    }


def _jsonable(value):
    """Coerce an attribute to something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)

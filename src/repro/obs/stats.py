"""Small numeric helpers shared by every stats surface.

:func:`percentile` is the single nearest-rank implementation used by
:class:`~repro.serve.telemetry.ServerTelemetry` summaries and the
:class:`~repro.obs.metrics.Histogram` sample summaries — one definition,
so ``/stats`` and ``/metrics`` quote the same numbers for the same data.
"""

import math

__all__ = ["percentile"]


def percentile(sorted_values, p, default=0.0):
    """Nearest-rank percentile of an ascending sequence.

    ``p`` is a percentage in ``0..100`` (ints or floats both work); the
    nearest-rank definition picks the smallest value with at least
    ``p``% of the data at or below it, so the result is always an actual
    observed value.  Edge cases are pinned down:

    * empty input returns ``default`` (0.0 — a silent stats endpoint,
      not a crash);
    * ``p == 0`` returns the minimum, ``p == 100`` the maximum;
    * a single element is every percentile of itself;
    * ``p`` outside ``0..100`` raises ``ValueError`` (the seed helper
      silently clamped, hiding caller bugs).
    """
    if not 0 <= p <= 100:
        raise ValueError("percentile p must be in 0..100, got %r" % (p,))
    n = len(sorted_values)
    if n == 0:
        return default
    rank = math.ceil(n * p / 100.0)  # nearest-rank; 0 only when p == 0
    return sorted_values[max(1, min(n, rank)) - 1]

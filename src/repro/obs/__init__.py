"""Unified observability: metrics registry + tracing, one install switch.

The thesis evaluates everything by *measurement* — per-processor load,
phase timings, scalability curves — and so does this reproduction's
operational story.  This package is the single substrate all of it
reports through:

* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe counters,
  gauges and log-bucket histograms, exported as JSON or Prometheus text
  exposition (``CubeServer`` serves it at ``GET /metrics``);
* :class:`~repro.obs.trace.Tracer` — nestable spans and events in a
  bounded buffer, exported as Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto;
* instrumentation hooks through the hot paths: the cluster simulator
  (one span per task per node, on the *simulated* clock, with
  ``OpStats`` attributes), the real local backend (per-batch spans,
  supervisor respawn/retry events), ``BucEngine`` (per-cuboid spans),
  and the serve stack (request spans, store append/salvage spans,
  admission/breaker transitions).

**Off by default, near-zero overhead.**  Nothing records until
:func:`install` is called; uninstrumented hot paths pay one module
-global ``None`` check.  Simulated figures are bit-identical either
way — instrumentation only *reads* the ledgers it annotates.

Deterministic capture for tests and benches::

    with repro.obs.installed() as obs:
        run_workload()
        obs.tracer.export_chrome("trace.json")
        text = obs.registry.to_prometheus()

The CLI wires the same switch as ``--trace-out FILE`` / ``--metrics``
on ``cube``, ``store build`` and ``serve``.
"""

from contextlib import contextmanager, nullcontext

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      federate_prometheus, merge_histogram_buckets,
                      parse_prometheus, quantile_from_buckets)
from .stats import percentile
from .trace import (Span, SpanContext, Tracer, format_traceparent,
                    merge_chrome_traces, parse_traceparent)

__all__ = [
    "Observability",
    "install",
    "uninstall",
    "installed",
    "current",
    "span",
    "event",
    "context",
    "inject",
    "extract",
    "activate",
    "trace_id",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "SpanContext",
    "percentile",
    "format_traceparent",
    "parse_traceparent",
    "merge_chrome_traces",
    "parse_prometheus",
    "federate_prometheus",
    "merge_histogram_buckets",
    "quantile_from_buckets",
]


class Observability:
    """One registry + one tracer, installed together."""

    __slots__ = ("registry", "tracer")

    def __init__(self, registry=None, tracer=None, max_spans=20_000):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(max_spans)
        # Ring-buffer evictions were silent; surface them as a counter
        # so a scrape shows when a trace export is incomplete.
        self.tracer.on_drop = self.registry.counter(
            "repro_obs_spans_dropped_total",
            "Spans evicted from the tracer ring buffer").inc

    def __repr__(self):
        return "Observability(%d spans, %d metric families)" % (
            len(self.tracer), len(self.registry.families()))


class _NullSpan:
    """The uninstrumented stand-in: absorbs the whole Span surface."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self

    def __bool__(self):
        return False


NULL_SPAN = _NullSpan()

_active = None


def install(registry=None, tracer=None, max_spans=20_000):
    """Switch instrumentation on process-wide; returns the active
    :class:`Observability`.  Idempotent only in the sense that a second
    call replaces the first — callers that need scoping should prefer
    :func:`installed`."""
    global _active
    _active = Observability(registry, tracer, max_spans)
    return _active


def uninstall():
    """Switch instrumentation off (hot paths return to the no-op path)."""
    global _active
    _active = None


def current():
    """The active :class:`Observability`, or ``None`` when off."""
    return _active


@contextmanager
def installed(registry=None, tracer=None, max_spans=20_000):
    """Scoped :func:`install` for tests and benches (always uninstalls,
    restoring whatever was active before)."""
    global _active
    previous = _active
    obs = install(registry, tracer, max_spans)
    try:
        yield obs
    finally:
        _active = previous


def span(name, **attrs):
    """A live span when installed, else the shared no-op span.

    The hot-path idiom — one global read when instrumentation is off::

        with obs.span("buc.cuboid", cuboid=name) as sp:
            ...
            if sp:
                sp.set(cells=n)   # skip attr building entirely when off
    """
    active = _active
    if active is None:
        return NULL_SPAN
    return active.tracer.span(name, **attrs)


def event(name, **attrs):
    """Record an instant event when installed; no-op otherwise."""
    active = _active
    if active is not None:
        active.tracer.event(name, **attrs)


def context():
    """The calling thread's :class:`SpanContext`, or ``None``."""
    active = _active
    if active is None:
        return None
    return active.tracer.current_context()


def inject():
    """The current trace position as a ``traceparent`` header value,
    or ``None`` when uninstalled / no context — callers add the header
    only when one comes back."""
    active = _active
    if active is None:
        return None
    return active.tracer.inject()


def extract(header):
    """Parse a ``traceparent`` header into a :class:`SpanContext`.

    Works even when instrumentation is off (parsing is stateless), so
    handlers can unconditionally extract-then-activate.
    """
    return parse_traceparent(header)


def activate(ctx):
    """Context manager installing ``ctx`` (a :class:`SpanContext`, a
    raw ``traceparent`` string, or ``None``) as the thread's remote
    parent; a no-op when uninstalled or ``ctx`` is ``None``."""
    active = _active
    if active is None or ctx is None:
        return nullcontext()
    return active.tracer.activate(ctx)


def trace_id():
    """The current trace id (32 hex chars), or ``None``."""
    ctx = context()
    return ctx.trace_id if ctx is not None else None

"""A dependency-free, thread-safe metrics registry.

Three instrument kinds cover what the reproduction measures:

* :class:`Counter` — monotonically increasing totals (requests served,
  batches retried, cells written);
* :class:`Gauge` — a value that goes both ways (pending queries, store
  generation);
* :class:`Histogram` — distributions over fixed log-scale buckets
  (latencies, batch durations), plus a bounded raw-sample window so
  summaries can quote real nearest-rank percentiles via
  :func:`repro.obs.stats.percentile`.

Every instrument is a *family*: a name plus a fixed tuple of label
names, with one time series per distinct label-value combination — the
Prometheus data model, minus the dependency.  :class:`MetricsRegistry`
holds the families and renders them as JSON (for ``/stats``-style
endpoints) or Prometheus text exposition format 0.0.4 (for a scrapable
``/metrics``).

Everything takes its own lock; recording from server worker threads
while an exporter renders is safe.
"""

import re
import threading

from .stats import percentile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_buckets",
    "parse_prometheus",
    "federate_prometheus",
    "merge_histogram_buckets",
    "quantile_from_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Samples retained per histogram series for percentile summaries.
HISTOGRAM_SAMPLE_WINDOW = 1024


def default_buckets(start=1e-6, factor=4.0, count=16):
    """Fixed log-scale bucket upper bounds (seconds by convention).

    The default spans 1 µs to ~18 minutes in x4 steps — wide enough for
    a cache hit and a cold 14-dimension recompute on the same axis.
    """
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


def _check_name(name):
    if not _NAME_RE.match(name):
        raise ValueError("invalid metric name %r" % (name,))
    return name


def _check_labelnames(labelnames):
    labelnames = tuple(labelnames)
    for label in labelnames:
        if not _LABEL_RE.match(label):
            raise ValueError("invalid label name %r" % (label,))
    return labelnames


def escape_label_value(value):
    """Escape a label value for the text exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _escape_help(text):
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def format_value(value):
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """Shared plumbing: one named instrument with labelled children."""

    kind = "untyped"

    def __init__(self, name, help="", labelnames=()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children = {}

    def _key(self, labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels)))
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _child(self, key):
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def series(self):
        """Snapshot of ``{label_values_tuple: child_snapshot}``."""
        with self._lock:
            return {key: self._snap_child(child)
                    for key, child in self._children.items()}

    def _labels_text(self, key, extra=()):
        pairs = ['%s="%s"' % (name, escape_label_value(value))
                 for name, value in zip(self.labelnames, key)]
        pairs.extend('%s="%s"' % (name, escape_label_value(value))
                     for name, value in extra)
        return "{%s}" % ",".join(pairs) if pairs else ""


class Counter(_Family):
    """A monotonically increasing total, optionally labelled."""

    kind = "counter"

    def _new_child(self):
        return [0.0]

    def _snap_child(self, child):
        return child[0]

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counter %s cannot decrease (inc %r)"
                             % (self.name, amount))
        with self._lock:
            self._child(self._key(labels))[0] += amount

    def value(self, **labels):
        with self._lock:
            child = self._children.get(self._key(labels))
            return child[0] if child is not None else 0.0

    def _render(self, lines):
        with self._lock:
            for key in sorted(self._children):
                lines.append("%s%s %s" % (
                    self.name, self._labels_text(key),
                    format_value(self._children[key][0])))


class Gauge(_Family):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_child(self):
        return [0.0]

    def _snap_child(self, child):
        return child[0]

    def set(self, value, **labels):
        with self._lock:
            self._child(self._key(labels))[0] = float(value)

    def inc(self, amount=1, **labels):
        with self._lock:
            self._child(self._key(labels))[0] += amount

    def dec(self, amount=1, **labels):
        self.inc(-amount, **labels)

    def value(self, **labels):
        with self._lock:
            child = self._children.get(self._key(labels))
            return child[0] if child is not None else 0.0

    _render = Counter._render


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum", "samples")

    def __init__(self, n_buckets):
        self.bucket_counts = [0] * n_buckets
        self.count = 0
        self.sum = 0.0
        self.samples = []


class Histogram(_Family):
    """A distribution over fixed log-scale buckets.

    Buckets are cumulative in the exposition (Prometheus ``le``
    semantics).  The first :data:`HISTOGRAM_SAMPLE_WINDOW` observations
    per series are retained raw so :meth:`summary` can quote true
    nearest-rank percentiles instead of bucket-boundary estimates.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=None):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets)) if buckets else default_buckets()
        if not self.buckets:
            raise ValueError("histogram %s needs at least one bucket" % name)

    def _new_child(self):
        return _HistogramSeries(len(self.buckets))

    def _snap_child(self, child):
        return {
            "count": child.count,
            "sum": child.sum,
            "buckets": list(child.bucket_counts),
        }

    def observe(self, value, **labels):
        value = float(value)
        with self._lock:
            series = self._child(self._key(labels))
            series.count += 1
            series.sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            if len(series.samples) < HISTOGRAM_SAMPLE_WINDOW:
                series.samples.append(value)

    def summary(self, **labels):
        """count / sum / mean / p50 / p95 / p99 over the sample window."""
        with self._lock:
            series = self._children.get(self._key(labels))
            if series is None:
                return {"count": 0, "sum": 0.0, "mean": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            count, total = series.count, series.sum
            ordered = sorted(series.samples)
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": percentile(ordered, 50),
            "p95": percentile(ordered, 95),
            "p99": percentile(ordered, 99),
        }

    def _render(self, lines):
        with self._lock:
            for key in sorted(self._children):
                series = self._children[key]
                cumulative = 0
                for bound, in_bucket in zip(self.buckets,
                                            series.bucket_counts):
                    cumulative += in_bucket
                    lines.append("%s_bucket%s %d" % (
                        self.name,
                        self._labels_text(key, extra=(("le",
                                                       repr(bound)),)),
                        cumulative))
                lines.append("%s_bucket%s %d" % (
                    self.name, self._labels_text(key, extra=(("le", "+Inf"),)),
                    series.count))
                lines.append("%s_sum%s %s" % (
                    self.name, self._labels_text(key),
                    format_value(series.sum)))
                lines.append("%s_count%s %d" % (
                    self.name, self._labels_text(key), series.count))


class MetricsRegistry:
    """Thread-safe collection of metric families with two exporters."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    def _register(self, kind, name, help, labelnames, **kwargs):
        labelnames = _check_labelnames(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        "metric %r already registered as %s%r"
                        % (name, family.kind, family.labelnames))
                return family
            family = self._KINDS[kind](name, help, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name, help="", labelnames=()):
        """Get or create a :class:`Counter` family."""
        return self._register("counter", name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        """Get or create a :class:`Gauge` family."""
        return self._register("gauge", name, help, labelnames)

    def histogram(self, name, help="", labelnames=(), buckets=None):
        """Get or create a :class:`Histogram` family."""
        return self._register("histogram", name, help, labelnames,
                              buckets=buckets)

    def get(self, name):
        """The registered family, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def families(self):
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def to_json(self):
        """``{name: {"kind", "help", "labels", "series"}}`` snapshot.

        Series keys are rendered ``label=value`` comma-joined (JSON
        object keys must be strings).
        """
        out = {}
        for family in self.families():
            series = {}
            for key, value in family.series().items():
                text = ",".join("%s=%s" % (name, v) for name, v
                                in zip(family.labelnames, key))
                series[text] = value
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "series": series,
            }
        return out

    def to_prometheus(self):
        """The registry in text exposition format 0.0.4."""
        lines = []
        for family in self.families():
            if family.help:
                lines.append("# HELP %s %s"
                             % (family.name, _escape_help(family.help)))
            lines.append("# TYPE %s %s" % (family.name, family.kind))
            family._render(lines)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Federation: parse + merge text exposition from many processes.
#
# The router scrapes every replica's /metrics and re-exposes one
# cluster-wide page.  Everything below works on the *text* format so
# federation needs no shared registry objects — the same path would
# scrape a non-Python exporter.
# ----------------------------------------------------------------------

def _unescape_label_value(value):
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:  # unknown escape: keep verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text):
    """Parse the inside of a ``{...}`` label block into a dict.

    A character scanner, not a regex split: ``,`` and ``}`` may appear
    inside quoted values, and values use ``\\``/``\\"``/``\\n`` escapes.
    """
    labels = {}
    i, n = 0, len(text)
    while i < n:
        while i < n and text[i] in ", \t":
            i += 1
        if i >= n:
            break
        eq = text.index("=", i)
        name = text[i:eq].strip()
        i = eq + 1
        if i >= n or text[i] != '"':
            raise ValueError("unquoted label value in %r" % (text,))
        i += 1
        start = i
        raw = []
        while i < n:
            ch = text[i]
            if ch == "\\":
                raw.append(text[start:i])
                raw.append(text[i:i + 2])
                i += 2
                start = i
                continue
            if ch == '"':
                break
            i += 1
        if i >= n:
            raise ValueError("unterminated label value in %r" % (text,))
        raw.append(text[start:i])
        labels[name] = _unescape_label_value("".join(raw))
        i += 1  # closing quote
    return labels


def parse_prometheus(text):
    """Parse text exposition 0.0.4 into families.

    Returns ``{family_name: {"kind", "help", "samples"}}`` where each
    sample is ``(sample_name, labels_dict, value)``.  Histogram
    ``_bucket``/``_sum``/``_count`` samples are grouped under their
    family name (the one the ``# TYPE`` line declared).  Unknown or
    type-less samples get an ``untyped`` family of their own name.
    Malformed lines raise — a scrape that half-parses would federate
    wrong totals silently.
    """
    families = {}
    suffix_of = {}  # sample_name -> family_name for histogram suffixes

    def family(name, kind="untyped", help_text=""):
        entry = families.get(name)
        if entry is None:
            entry = families[name] = {"kind": kind, "help": help_text,
                                      "samples": []}
        return entry

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else "untyped"
                entry = family(name)
                entry["kind"] = kind
                if kind == "histogram":
                    for suffix in ("_bucket", "_sum", "_count"):
                        suffix_of[name + suffix] = name
            elif len(parts) >= 3 and parts[1] == "HELP":
                family(parts[2])["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if "{" in line:
            brace = line.index("{")
            sample_name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        value = float(value_text)
        fam_name = suffix_of.get(sample_name, sample_name)
        family(fam_name)["samples"].append((sample_name, labels, value))
    return families


def federate_prometheus(sources):
    """Merge scraped exposition pages into one, relabelled per source.

    ``sources`` is ``[(extra_labels_dict, text), ...]``.  Each source's
    samples get its extra labels appended (the router uses
    ``shard``/``replica``); samples that then still collide on
    ``(name, labels)`` are **summed** — correct for counters and
    histogram buckets, and unreachable for gauges as long as the extra
    labels make sources distinct.  Families keep their declared kind
    and the first non-empty help; output is sorted by family name so
    the page is diffable.
    """
    merged = {}   # family -> {"kind", "help", "values": {(sample, lkey): v}}
    label_sets = {}  # (sample, lkey) -> labels dict (for re-rendering)

    for extra, text in sources:
        for fam_name, fam in parse_prometheus(text).items():
            entry = merged.get(fam_name)
            if entry is None:
                entry = merged[fam_name] = {
                    "kind": fam["kind"], "help": fam["help"], "values": {}}
            else:
                if entry["kind"] == "untyped" and fam["kind"] != "untyped":
                    entry["kind"] = fam["kind"]
                if not entry["help"]:
                    entry["help"] = fam["help"]
            for sample_name, labels, value in fam["samples"]:
                labels = dict(labels)
                labels.update({str(k): str(v) for k, v in extra.items()})
                lkey = tuple(sorted(labels.items()))
                skey = (sample_name, lkey)
                entry["values"][skey] = entry["values"].get(skey, 0.0) + value
                label_sets[skey] = labels

    lines = []
    for fam_name in sorted(merged):
        entry = merged[fam_name]
        if entry["help"]:
            lines.append("# HELP %s %s"
                         % (fam_name, _escape_help(entry["help"])))
        lines.append("# TYPE %s %s" % (fam_name, entry["kind"]))
        for skey in sorted(entry["values"],
                           key=lambda k: (k[0], _le_order(k[1]), k[1])):
            sample_name, lkey = skey
            labels = label_sets[skey]
            pairs = ",".join('%s="%s"' % (name, escape_label_value(value))
                             for name, value in sorted(labels.items()))
            lines.append("%s%s %s" % (
                sample_name, "{%s}" % pairs if pairs else "",
                format_value(entry["values"][skey])))
    return "\n".join(lines) + "\n"


def _le_order(lkey):
    """Sort key placing histogram buckets in ascending ``le`` order."""
    for name, value in lkey:
        if name == "le":
            return float("inf") if value == "+Inf" else float(value)
    return -1.0


def merge_histogram_buckets(series_list):
    """Sum cumulative bucket series into one.

    Each input is ``[(le_bound, cumulative_count), ...]`` where
    ``le_bound`` is a float or the string ``"+Inf"``.  All repo
    histograms share :func:`default_buckets`, so merging is a per-bound
    sum; bounds present in only some inputs are carried through (their
    cumulative counts still add correctly because counts are
    cumulative in ``le``).  Returns the merged series sorted ascending
    with ``+Inf`` last.
    """
    totals = {}
    for series in series_list:
        for bound, cumulative in series:
            key = float("inf") if bound == "+Inf" else float(bound)
            totals[key] = totals.get(key, 0.0) + float(cumulative)
    return [("+Inf" if bound == float("inf") else bound, totals[bound])
            for bound in sorted(totals)]


def quantile_from_buckets(buckets, q):
    """Nearest-rank quantile estimate from a cumulative bucket series.

    ``buckets`` as produced by :func:`merge_histogram_buckets`;
    ``q`` in ``[0, 1]``.  Returns the upper bound of the bucket holding
    the target rank — a conservative (upper) estimate, which is what a
    RED summary wants.  The ``+Inf`` bucket reports the largest finite
    bound (there is no better point estimate).  Empty series → 0.0.
    """
    if not buckets:
        return 0.0
    ordered = sorted(
        buckets,
        key=lambda item: float("inf") if item[0] == "+Inf"
        else float(item[0]))
    total = ordered[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    last_finite = 0.0
    for bound, cumulative in ordered:
        if bound != "+Inf":
            last_finite = float(bound)
        if cumulative >= rank:
            return last_finite if bound == "+Inf" else float(bound)
    return last_finite

"""Dictionary encoding of attribute values to dense integer codes.

All cube algorithms in this library operate on integer-coded dimensions:
each distinct attribute value maps to a code in ``0 .. cardinality-1``.
This mirrors what the original C/MPI implementation did by preprocessing
the weather data, and it keeps partitioning, sorting and hashing cheap.

:class:`Dictionary` is an order-of-first-appearance encoder;
:class:`ColumnEncoder` encodes whole columns and remembers one dictionary
per attribute so results can be decoded back to user values.
"""

from ..errors import EncodingError


class Dictionary:
    """A bidirectional value <-> code mapping for one attribute.

    Codes are assigned densely in order of first appearance, so encoding a
    column and then decoding it is the identity, and ``cardinality`` equals
    the number of distinct values seen.
    """

    def __init__(self):
        self._code_for = {}
        self._value_for = []

    def __len__(self):
        return len(self._value_for)

    @property
    def cardinality(self):
        """Number of distinct values registered with this dictionary."""
        return len(self._value_for)

    def encode(self, value):
        """Return the code for ``value``, assigning a new one if unseen."""
        code = self._code_for.get(value)
        if code is None:
            code = len(self._value_for)
            self._code_for[value] = code
            self._value_for.append(value)
        return code

    def encode_existing(self, value):
        """Return the code for ``value``; raise if it was never registered."""
        try:
            return self._code_for[value]
        except KeyError:
            raise EncodingError("value %r is not in the dictionary" % (value,)) from None

    def decode(self, code):
        """Return the original value for ``code``."""
        try:
            return self._value_for[code]
        except IndexError:
            raise EncodingError(
                "code %d out of range for dictionary of %d values" % (code, len(self._value_for))
            ) from None

    def values(self):
        """All registered values, in code order."""
        return list(self._value_for)


class ColumnEncoder:
    """Encodes rows of raw attribute values into integer-coded rows.

    One :class:`Dictionary` is kept per attribute name, so a decoded cube
    result can present the user's original values.
    """

    def __init__(self, attributes):
        self.attributes = tuple(attributes)
        self.dictionaries = {name: Dictionary() for name in self.attributes}

    def encode_row(self, row):
        """Encode one row (a sequence aligned with ``attributes``)."""
        if len(row) != len(self.attributes):
            raise EncodingError(
                "row has %d fields, expected %d" % (len(row), len(self.attributes))
            )
        return tuple(
            self.dictionaries[name].encode(value) for name, value in zip(self.attributes, row)
        )

    def encode_rows(self, rows):
        """Encode an iterable of raw rows into a list of coded tuples."""
        return [self.encode_row(row) for row in rows]

    def decode_cell(self, dims, cell):
        """Decode a cube cell (codes for a subset of attributes) to values.

        ``dims`` names the attributes the cell's coordinates refer to, in
        the same order as ``cell``.
        """
        if len(dims) != len(cell):
            raise EncodingError("cell has %d coordinates for %d dimensions" % (len(cell), len(dims)))
        return tuple(self.dictionaries[name].decode(code) for name, code in zip(dims, cell))

    def cardinalities(self):
        """Mapping of attribute name -> distinct value count."""
        return {name: d.cardinality for name, d in self.dictionaries.items()}

"""Synthetic workload generators for the evaluation harness.

The thesis evaluates on a real weather dataset whose defining traits are
its tuple count, per-dimension cardinalities and heavy skew (Section 4.2).
These generators reproduce those traits deterministically:

* :func:`uniform_relation` — independent uniform dimensions.
* :func:`zipf_relation` — per-dimension Zipf-like skew, the knob behind
  the thesis' "partitioning the data on the 11th dimension produces one
  partition 40 times larger than the smallest one".
* :func:`dense_relation` — low-cardinality dimensions giving a dense cube
  (used for the Figure 4.6 sparseness sweep's dense end).
"""

import random

from .relation import Relation


def _rng(seed):
    return random.Random(seed)


def uniform_relation(n_rows, cardinalities, seed=0, dims=None, measure_range=(1, 100)):
    """A relation with independently uniform dimension values.

    ``cardinalities`` is a sequence of per-dimension distinct-value counts.
    """
    rng = _rng(seed)
    cardinalities = list(cardinalities)
    dims = _dim_names(dims, len(cardinalities))
    low, high = measure_range
    rows = []
    measures = []
    for _ in range(n_rows):
        rows.append(tuple(rng.randrange(card) for card in cardinalities))
        measures.append(float(rng.randint(low, high)))
    return Relation(dims, rows, measures, cardinalities=dict(zip(dims, cardinalities)))


def zipf_relation(n_rows, cardinalities, skew=1.0, seed=0, dims=None, measure_range=(1, 100)):
    """A relation with Zipf-distributed values per dimension.

    ``skew`` may be a single exponent applied to every dimension or a
    sequence of per-dimension exponents.  ``skew=0`` degenerates to
    uniform; larger values concentrate mass on low codes, which is what
    starves range partitioning (BPP) and static assignment (RP) of
    balance in the thesis' experiments.
    """
    rng = _rng(seed)
    cardinalities = list(cardinalities)
    dims = _dim_names(dims, len(cardinalities))
    if isinstance(skew, (int, float)):
        skews = [float(skew)] * len(cardinalities)
    else:
        skews = [float(s) for s in skew]
        if len(skews) != len(cardinalities):
            raise ValueError(
                "got %d skew exponents for %d dimensions" % (len(skews), len(cardinalities))
            )
    samplers = [
        _zipf_sampler(card, exponent, rng) for card, exponent in zip(cardinalities, skews)
    ]
    low, high = measure_range
    rows = []
    measures = []
    for _ in range(n_rows):
        rows.append(tuple(sampler() for sampler in samplers))
        measures.append(float(rng.randint(low, high)))
    return Relation(dims, rows, measures, cardinalities=dict(zip(dims, cardinalities)))


def correlated_relation(n_rows, cardinalities, correlation=0.8, skew=0.8, seed=0,
                        dims=None, measure_range=(1, 100)):
    """A relation with correlated dimensions.

    The thesis' conclusion names "OLAP computation, taking into account
    correlations between attributes" as future work; this generator
    supplies the workloads.  The first dimension is Zipf-distributed;
    each later dimension copies a deterministic function of the previous
    dimension's value with probability ``correlation`` and draws an
    independent Zipf value otherwise.  At ``correlation=1`` the
    dimensions are functionally dependent (the cube collapses onto one
    diagonal); at ``0`` this degenerates to :func:`zipf_relation`.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1], got %r" % (correlation,))
    rng = _rng(seed)
    cardinalities = list(cardinalities)
    dims = _dim_names(dims, len(cardinalities))
    samplers = [_zipf_sampler(card, skew, rng) for card in cardinalities]
    low, high = measure_range
    rows = []
    measures = []
    for _ in range(n_rows):
        values = [samplers[0]()]
        for position in range(1, len(cardinalities)):
            if rng.random() < correlation:
                # A fixed affine map of the previous coordinate: repeat
                # tuples share whole diagonals of the cube.
                card = cardinalities[position]
                values.append((values[-1] * 7 + position) % card)
            else:
                values.append(samplers[position]())
        rows.append(tuple(values))
        measures.append(float(rng.randint(low, high)))
    return Relation(dims, rows, measures, cardinalities=dict(zip(dims, cardinalities)))


def dense_relation(n_rows, n_dims, cardinality=4, seed=0):
    """A dense cube workload: few distinct values per dimension.

    With ``cardinality**n_dims`` well below ``n_rows`` most cube cells are
    populated many times over — the regime where the thesis finds ASL and
    AHT dominating (Figure 4.6, left end).
    """
    return uniform_relation(n_rows, [cardinality] * n_dims, seed=seed)


def _zipf_sampler(cardinality, exponent, rng):
    """A sampler over ``0..cardinality-1`` with Zipf(exponent) weights."""
    if cardinality <= 0:
        raise ValueError("cardinality must be positive, got %d" % cardinality)
    if exponent <= 0:
        return lambda: rng.randrange(cardinality)
    weights = [1.0 / (rank ** exponent) for rank in range(1, cardinality + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    cumulative[-1] = 1.0

    def sample():
        u = rng.random()
        # Binary search over the cumulative distribution.
        lo, hi = 0, cardinality - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return sample


def _dim_names(dims, count):
    if dims is not None:
        dims = tuple(dims)
        if len(dims) != count:
            raise ValueError("got %d dimension names for %d dimensions" % (len(dims), count))
        return dims
    # A, B, ... Z, D26, D27, ...
    names = []
    for i in range(count):
        names.append(chr(ord("A") + i) if i < 26 else "D%d" % i)
    return tuple(names)

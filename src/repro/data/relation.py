"""Integer-coded relations: the input format for every cube algorithm.

A :class:`Relation` holds ``rows`` — a list of equal-length tuples of
integer dimension codes — and a parallel ``measures`` list with one numeric
measure per row (the thesis' prototypical query aggregates ``SUM`` over a
single measure attribute, with ``HAVING COUNT(*) >= minsup``).

The class deliberately stays small: sorting, projection and partitioning
helpers that every algorithm needs, and nothing else.  Construction from
raw (unencoded) rows goes through :func:`from_raw_rows`.
"""

from operator import itemgetter

from ..errors import SchemaError
from .encoding import ColumnEncoder


class Relation:
    """A dimension-coded relation with one numeric measure per row."""

    def __init__(self, dims, rows, measures=None, encoder=None, cardinalities=None):
        self.dims = tuple(dims)
        if len(set(self.dims)) != len(self.dims):
            raise SchemaError("duplicate dimension names: %r" % (self.dims,))
        self.rows = list(rows)
        if measures is None:
            measures = [1.0] * len(self.rows)
        self.measures = list(measures)
        if len(self.measures) != len(self.rows):
            raise SchemaError(
                "got %d measures for %d rows" % (len(self.measures), len(self.rows))
            )
        for row in self.rows:
            if len(row) != len(self.dims):
                raise SchemaError(
                    "row %r has %d fields, schema has %d dimensions"
                    % (row, len(row), len(self.dims))
                )
        self.encoder = encoder
        self._cardinalities = dict(cardinalities) if cardinalities else None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "Relation(dims=%r, rows=%d)" % (self.dims, len(self.rows))

    def dim_index(self, name):
        """Position of dimension ``name`` in the schema."""
        try:
            return self.dims.index(name)
        except ValueError:
            raise SchemaError("unknown dimension %r (have %r)" % (name, self.dims)) from None

    def dim_indices(self, names):
        """Positions of several dimensions, preserving the given order."""
        return tuple(self.dim_index(name) for name in names)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def cardinality(self, name):
        """Distinct-value count of one dimension (codes actually present)."""
        if self._cardinalities is not None and name in self._cardinalities:
            return self._cardinalities[name]
        index = self.dim_index(name)
        return len({row[index] for row in self.rows})

    def cardinalities(self):
        """Mapping of dimension name -> distinct-value count."""
        return {name: self.cardinality(name) for name in self.dims}

    def cardinality_product(self, names=None):
        """Product of cardinalities over ``names`` (default: all dims).

        The thesis uses this product as the sparseness knob: a cube is
        sparse when ``len(relation)`` is small relative to it.
        """
        product = 1
        for name in names if names is not None else self.dims:
            product *= max(1, self.cardinality(name))
        return product

    # ------------------------------------------------------------------
    # relational helpers
    # ------------------------------------------------------------------
    def project(self, names):
        """A new relation keeping only ``names`` (measures preserved)."""
        indices = self.dim_indices(names)
        getter = itemgetter(*indices) if len(indices) > 1 else None
        if getter is not None:
            rows = [getter(row) for row in self.rows]
        else:
            index = indices[0]
            rows = [(row[index],) for row in self.rows]
        return Relation(names, rows, list(self.measures), encoder=self.encoder)

    def sorted_by(self, names):
        """A new relation with rows sorted lexicographically on ``names``."""
        indices = self.dim_indices(names)
        order = sorted(
            range(len(self.rows)), key=lambda i: tuple(self.rows[i][j] for j in indices)
        )
        return self.take(order)

    def take(self, row_indices):
        """A new relation containing the given rows, in the given order."""
        rows = [self.rows[i] for i in row_indices]
        measures = [self.measures[i] for i in row_indices]
        return Relation(
            self.dims, rows, measures, encoder=self.encoder, cardinalities=self._cardinalities
        )

    def slice(self, start, stop):
        """A new relation over ``rows[start:stop]`` (measures aligned)."""
        return Relation(
            self.dims,
            self.rows[start:stop],
            self.measures[start:stop],
            encoder=self.encoder,
            cardinalities=self._cardinalities,
        )

    def concat(self, other):
        """A new relation with ``other``'s rows appended to this one's."""
        if other.dims != self.dims:
            raise SchemaError(
                "cannot concat relations with schemas %r and %r" % (self.dims, other.dims)
            )
        return Relation(
            self.dims,
            self.rows + other.rows,
            self.measures + other.measures,
            encoder=self.encoder,
        )

    def range_partition(self, name, n_parts):
        """Range-partition on one dimension into ``n_parts`` relations.

        This is BPP's pre-processing step (Section 3.2.1): codes of
        dimension ``name`` are split into ``n_parts`` contiguous code
        ranges of near-equal *code* width, and each row lands in the part
        owning its code.  With skewed data the parts carry very different
        numbers of rows — exactly the imbalance the thesis observes.
        """
        if n_parts <= 0:
            raise SchemaError("n_parts must be positive, got %d" % n_parts)
        index = self.dim_index(name)
        cardinality = max((row[index] for row in self.rows), default=-1) + 1
        buckets = [[] for _ in range(n_parts)]
        if cardinality > 0:
            # Contiguous code ranges; the last range absorbs the remainder.
            width = max(1, -(-cardinality // n_parts))
            for i, row in enumerate(self.rows):
                part = min(row[index] // width, n_parts - 1)
                buckets[part].append(i)
        return [self.take(bucket) for bucket in buckets]

    def block_partition(self, n_parts):
        """Split rows into ``n_parts`` contiguous blocks (POL's layout)."""
        if n_parts <= 0:
            raise SchemaError("n_parts must be positive, got %d" % n_parts)
        size = -(-len(self.rows) // n_parts) if self.rows else 0
        parts = []
        for p in range(n_parts):
            parts.append(self.slice(p * size, (p + 1) * size) if size else self.slice(0, 0))
        return parts

    def sample_rows(self, n_samples, seed=0):
        """A deterministic pseudo-random sample of row indices.

        Uses a fixed-stride congruential walk so samples are reproducible
        without pulling in :mod:`random` state.
        """
        total = len(self.rows)
        if total == 0 or n_samples <= 0:
            return []
        n_samples = min(n_samples, total)
        stride = max(1, total // n_samples)
        start = seed % stride if stride > 1 else 0
        indices = list(range(start, total, stride))[:n_samples]
        return indices


def from_raw_rows(dims, raw_rows, measures=None, measure_index=None):
    """Build an encoded :class:`Relation` from raw (unencoded) rows.

    ``raw_rows`` contain arbitrary hashable values per dimension.  If
    ``measure_index`` is given, that column of each raw row is popped out
    as the measure instead of being encoded as a dimension.
    """
    dims = tuple(dims)
    if measure_index is not None:
        stripped = []
        measures = []
        for row in raw_rows:
            row = list(row)
            measures.append(float(row.pop(measure_index)))
            stripped.append(row)
        raw_rows = stripped
    encoder = ColumnEncoder(dims)
    rows = encoder.encode_rows(raw_rows)
    return Relation(dims, rows, measures, encoder=encoder)

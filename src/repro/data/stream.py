"""Streaming relations: chunked row splits for inputs larger than RAM.

Every generator in :mod:`repro.data.synthetic` materializes its whole
row list before returning — fine for the paper-scale workloads, fatal
for the multi-million-row inputs the MapReduce backend exists for.  A
:class:`RelationStream` is the out-of-core counterpart of a
:class:`~repro.data.relation.Relation`: the same schema (dimension
names, declared per-dimension code bounds, one float measure per row)
but the rows live behind an iterator of bounded-size chunks, produced
by a list of *splits*.

Splits are small picklable descriptions of where rows come from, not
the rows themselves:

* :class:`SyntheticSplit` regenerates its rows on demand from the
  generator parameters and a per-split derived seed — shipping one to a
  mapper process costs a few hundred bytes regardless of ``n_rows``;
* :class:`MaterializedSplit` wraps rows that already exist in memory
  (the adapter :func:`stream_from_relation` uses, e.g. for CSV inputs).

Because each split owns an independent RNG, ``zipf_stream(...)`` draws
*different* rows than the monolithic ``zipf_relation(...)`` for the
same seed — same distribution, different sample.  Code that needs an
oracle over the exact streamed rows should compare against
:meth:`RelationStream.materialize` (practical only at test scale).

``cardinalities`` here are **code bounds**: for every dimension, all
codes are guaranteed ``< bound``.  The MapReduce mapper plans its
63-bit key packing from these bounds before reading a single row, so
they must be upper bounds, not observed distinct counts.
"""

import random

from ..errors import PlanError, SchemaError
from .relation import Relation
from .synthetic import _dim_names, _zipf_sampler
from .weather import BASELINE_DIMS, PAPER_ONLINE_TUPLES, _BY_NAME

#: Rows per split: one split is one map task, so this is the unit of
#: parallelism and of re-execution after a worker crash.
DEFAULT_SPLIT_ROWS = 65_536

#: Rows yielded per chunk inside a split — the peak row-count a
#: consumer holds in memory per split being read.
DEFAULT_CHUNK_ROWS = 4_096


def _split_seed(seed, split_id):
    """A derived seed decorrelating split ``split_id`` from its siblings.

    A fixed odd multiplier keeps the derivation reproducible across
    interpreters (no ``hash()`` randomization) while separating the
    streams of adjacent splits.
    """
    return (int(seed) * 1_000_003 + 0x9E3779B9 * (split_id + 1)) & 0x7FFFFFFF


class SyntheticSplit:
    """One regenerable slice of a synthetic workload.

    Carries only the generator parameters; ``iter_chunks`` rebuilds the
    samplers and draws ``n_rows`` rows chunk by chunk, never holding
    more than ``chunk_rows`` of them at once.
    """

    __slots__ = ("split_id", "n_rows", "cardinalities", "skews", "seed",
                 "measure_range")

    def __init__(self, split_id, n_rows, cardinalities, skews, seed,
                 measure_range=(1, 100)):
        self.split_id = int(split_id)
        self.n_rows = int(n_rows)
        self.cardinalities = list(cardinalities)
        self.skews = list(skews)
        self.seed = int(seed)
        self.measure_range = tuple(measure_range)

    def iter_chunks(self, chunk_rows=DEFAULT_CHUNK_ROWS):
        """Yield ``(rows, measures)`` lists of at most ``chunk_rows``."""
        rng = random.Random(_split_seed(self.seed, self.split_id))
        samplers = [
            _zipf_sampler(card, exponent, rng)
            for card, exponent in zip(self.cardinalities, self.skews)
        ]
        low, high = self.measure_range
        remaining = self.n_rows
        while remaining > 0:
            take = min(chunk_rows, remaining)
            rows = []
            measures = []
            for _ in range(take):
                rows.append(tuple(sampler() for sampler in samplers))
                measures.append(float(rng.randint(low, high)))
            remaining -= take
            yield rows, measures

    def __repr__(self):
        return "SyntheticSplit(id=%d, rows=%d)" % (self.split_id, self.n_rows)


class MaterializedSplit:
    """A split over rows that already exist in memory."""

    __slots__ = ("split_id", "rows", "measures")

    def __init__(self, split_id, rows, measures):
        self.split_id = int(split_id)
        self.rows = list(rows)
        self.measures = list(measures)
        if len(self.rows) != len(self.measures):
            raise SchemaError(
                "split %d: %d rows but %d measures"
                % (split_id, len(self.rows), len(self.measures))
            )

    @property
    def n_rows(self):
        return len(self.rows)

    def iter_chunks(self, chunk_rows=DEFAULT_CHUNK_ROWS):
        for start in range(0, len(self.rows), chunk_rows):
            yield (self.rows[start:start + chunk_rows],
                   self.measures[start:start + chunk_rows])

    def __repr__(self):
        return "MaterializedSplit(id=%d, rows=%d)" % (
            self.split_id, len(self.rows))


class RelationStream:
    """A relation whose rows arrive in chunks from picklable splits."""

    def __init__(self, dims, splits, cardinalities, encoder=None):
        """``cardinalities`` maps every dimension name to its code
        bound (all codes strictly below it)."""
        self.dims = tuple(dims)
        if len(set(self.dims)) != len(self.dims):
            raise SchemaError("duplicate dimension names: %r" % (self.dims,))
        self.splits = list(splits)
        self.cardinalities = dict(cardinalities)
        missing = [d for d in self.dims if d not in self.cardinalities]
        if missing:
            raise SchemaError(
                "stream is missing code bounds for dimensions %r" % (missing,))
        self.encoder = encoder

    @property
    def n_rows(self):
        return sum(split.n_rows for split in self.splits)

    def __len__(self):
        return self.n_rows

    def cardinality_list(self, dims=None):
        """Code bounds in ``dims`` order (default: the stream's order)."""
        return [self.cardinalities[d] for d in (dims or self.dims)]

    def iter_chunks(self, chunk_rows=DEFAULT_CHUNK_ROWS):
        """Yield ``(rows, measures)`` chunks across every split in order."""
        for split in self.splits:
            yield from split.iter_chunks(chunk_rows)

    def materialize(self):
        """Collect every chunk into an in-memory :class:`Relation`.

        For tests and oracle checks only — this is exactly the full
        materialization the stream exists to avoid.
        """
        rows = []
        measures = []
        for chunk_rows, chunk_measures in self.iter_chunks():
            rows.extend(chunk_rows)
            measures.extend(chunk_measures)
        return Relation(self.dims, rows, measures, encoder=self.encoder,
                        cardinalities=self.cardinalities)

    def __repr__(self):
        return "RelationStream(dims=%r, rows=%d, splits=%d)" % (
            self.dims, self.n_rows, len(self.splits))


def _split_counts(n_rows, split_rows):
    if n_rows < 0:
        raise PlanError("n_rows must be >= 0, got %r" % (n_rows,))
    if split_rows < 1:
        raise PlanError("split_rows must be >= 1, got %r" % (split_rows,))
    counts = []
    remaining = n_rows
    while remaining > 0:
        take = min(split_rows, remaining)
        counts.append(take)
        remaining -= take
    return counts or [0]


def zipf_stream(n_rows, cardinalities, skew=1.0, seed=0, dims=None,
                measure_range=(1, 100), split_rows=DEFAULT_SPLIT_ROWS):
    """The streaming counterpart of :func:`~repro.data.synthetic.zipf_relation`.

    Returns a :class:`RelationStream` whose splits regenerate their rows
    on demand; nothing row-sized is allocated here.
    """
    cardinalities = list(cardinalities)
    dims = _dim_names(dims, len(cardinalities))
    if isinstance(skew, (int, float)):
        skews = [float(skew)] * len(cardinalities)
    else:
        skews = [float(s) for s in skew]
        if len(skews) != len(cardinalities):
            raise ValueError(
                "got %d skew exponents for %d dimensions"
                % (len(skews), len(cardinalities)))
    splits = [
        SyntheticSplit(i, count, cardinalities, skews, seed,
                       measure_range=measure_range)
        for i, count in enumerate(_split_counts(n_rows, split_rows))
    ]
    return RelationStream(dims, splits, dict(zip(dims, cardinalities)))


def uniform_stream(n_rows, cardinalities, seed=0, dims=None,
                   measure_range=(1, 100), split_rows=DEFAULT_SPLIT_ROWS):
    """Streaming uniform generator (Zipf with exponent 0)."""
    return zipf_stream(n_rows, cardinalities, skew=0.0, seed=seed, dims=dims,
                       measure_range=measure_range, split_rows=split_rows)


def weather_stream(n_rows=PAPER_ONLINE_TUPLES, dims=None, seed=2001,
                   split_rows=DEFAULT_SPLIT_ROWS):
    """The chunked ``weather_relation`` path: same shape, streaming rows.

    The declared weather cardinalities travel with the stream, so the
    MapReduce planner can lay out its packed keys before any row is
    generated.  Like the in-memory generator, ``dims`` defaults to the
    thesis' baseline nine.
    """
    if dims is None:
        dims = BASELINE_DIMS
    dims = tuple(dims)
    cards = []
    skews = []
    for name in dims:
        if name not in _BY_NAME:
            raise ValueError("unknown weather dimension %r" % (name,))
        card, skew = _BY_NAME[name]
        cards.append(card)
        skews.append(skew)
    return zipf_stream(n_rows, cards, skew=skews, seed=seed, dims=dims,
                       split_rows=split_rows)


def stream_from_relation(relation, dims=None, split_rows=DEFAULT_SPLIT_ROWS):
    """Wrap an in-memory relation as a stream of row splits.

    ``dims`` restricts (and reorders) the schema.  Code bounds are
    computed as ``max code + 1`` per dimension — the declared
    cardinality alone is not safe, because a relation's codes may
    exceed its distinct-value count.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    positions = relation.dim_indices(dims)
    if positions == tuple(range(len(relation.dims))) and dims == relation.dims:
        rows = relation.rows
    else:
        rows = [tuple(row[p] for p in positions) for row in relation.rows]
    bounds = {}
    for name, p in zip(dims, range(len(dims))):
        bounds[name] = (max(row[p] for row in rows) + 1) if rows else 1
    splits = [
        MaterializedSplit(i, rows[start:start + split_rows],
                          relation.measures[start:start + split_rows])
        for i, start in enumerate(range(0, max(1, len(rows)), split_rows))
    ] if rows else [MaterializedSplit(0, [], [])]
    return RelationStream(dims, splits, bounds, encoder=relation.encoder)

"""Data substrate: encoded relations, generators and persistence."""

from .encoding import ColumnEncoder, Dictionary
from .io import load_csv, relation_bytes, save_csv
from .relation import Relation, from_raw_rows
from .stream import (
    MaterializedSplit,
    RelationStream,
    SyntheticSplit,
    stream_from_relation,
    uniform_stream,
    weather_stream,
    zipf_stream,
)
from .synthetic import correlated_relation, dense_relation, uniform_relation, zipf_relation
from .weather import (
    BASELINE_DIMS,
    PAPER_CUBE_TUPLES,
    PAPER_ONLINE_TUPLES,
    WEATHER_DIMENSIONS,
    baseline_dims,
    dims_by_cardinality,
    weather_relation,
)

__all__ = [
    "ColumnEncoder",
    "Dictionary",
    "Relation",
    "from_raw_rows",
    "load_csv",
    "save_csv",
    "relation_bytes",
    "uniform_relation",
    "zipf_relation",
    "dense_relation",
    "correlated_relation",
    "weather_relation",
    "RelationStream",
    "SyntheticSplit",
    "MaterializedSplit",
    "zipf_stream",
    "uniform_stream",
    "weather_stream",
    "stream_from_relation",
    "baseline_dims",
    "dims_by_cardinality",
    "WEATHER_DIMENSIONS",
    "BASELINE_DIMS",
    "PAPER_CUBE_TUPLES",
    "PAPER_ONLINE_TUPLES",
]

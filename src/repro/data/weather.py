"""A synthetic stand-in for the thesis' weather dataset.

The experiments in the thesis (Section 4.2) run on a real dataset of
land-station weather reports — the same data used by Ross & Srivastava
and by Beyer & Ramakrishnan — with 20 dimensions, heavy per-dimension
skew ("partitioning the data on the 11th dimension produces one partition
which is 40 times larger than the smallest one"), 176,631 tuples for the
CUBE experiments and ~1,000,000 tuples for the online (POL) experiments.

The raw file is not redistributable, so this module generates a relation
with the same *shape*: 20 named dimensions whose cardinalities span 2 to
7037, per-dimension Zipf skew with a few heavily skewed dimensions, and a
baseline 9-dimension subset whose cardinality product is roughly 1e13 as
in the thesis' baseline configuration.
"""

from .synthetic import zipf_relation

#: (name, cardinality, zipf skew) for the 20 weather dimensions, ordered by
#: cardinality.  Skews are chosen so that range partitioning is mildly
#: uneven on most dimensions and badly uneven (tens:1) on a few, matching
#: the thesis' description of the data.
WEATHER_DIMENSIONS = (
    ("brightness", 2, 0.4),
    ("sky_flag", 2, 0.8),
    ("season", 3, 0.3),
    ("precip_code", 4, 0.9),
    ("cloud_cover", 5, 0.5),
    ("hour", 8, 0.3),
    ("weather_change", 10, 1.1),
    ("wind_speed_class", 25, 0.7),
    ("day", 30, 0.1),
    ("visibility_class", 50, 0.9),
    ("humidity_class", 75, 1.0),  # the "11th dimension": ~40:1 partition skew
    ("present_weather", 101, 1.0),
    ("latitude", 152, 0.5),
    ("solar_altitude", 179, 0.4),
    ("pressure_class", 200, 0.6),
    ("longitude", 352, 0.5),
    ("wind_direction", 500, 0.7),
    ("cloud_base", 700, 0.8),
    ("temperature", 1000, 0.5),
    ("station_id", 7037, 0.6),
)

#: The thesis' baseline configuration: 9 dimensions "chosen arbitrarily
#: (but with the product of the cardinalities roughly equal to 1e13)".
#: Product here: 4*8*10*25*30*50*101*152*179 ~= 3.3e13.
BASELINE_DIMS = (
    "precip_code",
    "hour",
    "weather_change",
    "wind_speed_class",
    "day",
    "visibility_class",
    "present_weather",
    "latitude",
    "solar_altitude",
)

#: Tuple counts used in the thesis.
PAPER_CUBE_TUPLES = 176_631
PAPER_ONLINE_TUPLES = 1_000_000

_BY_NAME = {name: (card, skew) for name, card, skew in WEATHER_DIMENSIONS}


def dimension_names():
    """All 20 weather dimension names, in cardinality order."""
    return tuple(name for name, _, _ in WEATHER_DIMENSIONS)


def cardinality_of(name):
    """Declared cardinality of one weather dimension."""
    return _BY_NAME[name][0]


def dims_by_cardinality(which, k=9):
    """Pick ``k`` dimensions by cardinality for the sparseness sweep.

    ``which`` is ``"smallest"``, ``"largest"`` or ``"middle"`` — the three
    data points of Figure 4.6 (nine smallest-cardinality dimensions, nine
    largest, and one in between).
    """
    ordered = [name for name, _, _ in WEATHER_DIMENSIONS]
    if which == "smallest":
        return tuple(ordered[:k])
    if which == "largest":
        return tuple(ordered[-k:])
    if which == "middle":
        start = (len(ordered) - k) // 2
        return tuple(ordered[start : start + k])
    raise ValueError("which must be 'smallest', 'largest' or 'middle', got %r" % (which,))


def baseline_dims(n_dims=9):
    """The baseline dimension list, extended/truncated to ``n_dims``.

    For the Figure 4.4 dimensionality sweep the baseline 9 are extended
    with further dimensions in cardinality order (excluding ones already
    present), up to the 20 available.
    """
    if n_dims <= len(BASELINE_DIMS):
        return BASELINE_DIMS[:n_dims]
    extra = [name for name, _, _ in WEATHER_DIMENSIONS if name not in BASELINE_DIMS]
    needed = n_dims - len(BASELINE_DIMS)
    if needed > len(extra):
        raise ValueError("at most %d weather dimensions exist" % len(WEATHER_DIMENSIONS))
    return BASELINE_DIMS + tuple(extra[:needed])


def weather_relation(n_rows=PAPER_CUBE_TUPLES, dims=None, seed=2001):
    """Generate the synthetic weather relation.

    ``dims`` selects which of the 20 dimensions to materialize (default:
    the baseline nine).  Rows are deterministic for a given seed.
    """
    if dims is None:
        dims = BASELINE_DIMS
    dims = tuple(dims)
    cards = []
    skews = []
    for name in dims:
        if name not in _BY_NAME:
            raise ValueError("unknown weather dimension %r" % (name,))
        card, skew = _BY_NAME[name]
        cards.append(card)
        skews.append(skew)
    return zipf_relation(n_rows, cards, skew=skews, seed=seed, dims=dims)

"""CSV persistence for relations.

The on-disk format is a plain CSV with one header row: dimension names
followed by the measure column name (default ``measure``).  Dimension
values are written decoded when the relation has an encoder, otherwise as
their integer codes; loading re-encodes, so a save/load round trip yields
an equivalent relation.
"""

import csv

from ..errors import SchemaError
from .relation import from_raw_rows

MEASURE_COLUMN = "measure"


def save_csv(relation, path, measure_name=MEASURE_COLUMN):
    """Write ``relation`` to ``path`` as CSV."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(relation.dims) + [measure_name])
        decode = relation.encoder.decode_cell if relation.encoder else None
        for row, measure in zip(relation.rows, relation.measures):
            values = decode(relation.dims, row) if decode else row
            writer.writerow(list(values) + [measure])


def load_csv(path, measure_name=MEASURE_COLUMN):
    """Read a relation previously written by :func:`save_csv`.

    The last column named ``measure_name`` becomes the measure; all other
    columns are dictionary-encoded dimensions.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError("CSV file %r is empty" % (path,)) from None
        if not header or header[-1] != measure_name:
            raise SchemaError(
                "expected last column %r in header %r" % (measure_name, header)
            )
        dims = tuple(header[:-1])
        raw_rows = []
        measures = []
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise SchemaError(
                    "line %d has %d fields, expected %d" % (line_number, len(row), len(header))
                )
            raw_rows.append(row[:-1])
            measures.append(float(row[-1]))
    return from_raw_rows(dims, raw_rows, measures=measures)


def relation_bytes(relation, bytes_per_field=4, bytes_per_measure=8):
    """Approximate in-memory/on-disk size of a relation in bytes.

    Used by the cluster cost model to translate tuple counts into I/O
    volume (the thesis reports its baseline input as ~10 MB for 176,631
    nine-dimension tuples, i.e. a handful of bytes per field).
    """
    return len(relation) * (len(relation.dims) * bytes_per_field + bytes_per_measure)


__all__ = ["save_csv", "load_csv", "relation_bytes", "MEASURE_COLUMN"]

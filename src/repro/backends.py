"""One registry for every compute backend the CLI and server expose.

Backends used to be validated ad hoc: ``cube`` had one argparse
``choices`` list, ``store build`` another, and the server's recompute
fallback hardcoded the local pool.  This module is the single source of
truth — the first step of the ROADMAP's ``ComputeBackend`` protocol
item: every entry point resolves names through :func:`resolve_backend`,
an unknown backend fails with the full list of valid choices, and a
backend missing a required capability fails naming the capability.

Capability flags (a backend advertises what it can actually do):

``cube``
    Computes a full iceberg cube (``repro-cube cube --backend X``).
``store-build``
    Materializes leaf cuboids into a :class:`~repro.serve.store.CubeStore`.
``serve-fallback``
    Usable as the server's recompute fallback for uncovered cuboids.
``workers``
    Runs real worker processes (``--workers`` means something).
``faults``
    Honours a :class:`~repro.cluster.faults.FaultPlan` (``--faults``).
``kernels``
    Accepts a refinement-kernel choice (``--kernel``).
``shards``
    Can build a sharded store (``--shards N``).
``streaming``
    Consumes :class:`~repro.data.stream.RelationStream` inputs larger
    than RAM.
``ingest``
    Can serve behind a WAL-enabled store taking idempotent streaming
    appends (``serve --wal``): the backend's recompute fallback must
    tolerate the relation growing between calls.  The simulated backend
    cannot — its modelled timing assumes a fixed input.
``simulated-timing``
    Reports modelled cluster seconds rather than wall clock.
"""

from .errors import PlanError


class BackendInfo:
    """Name, one-line summary and capability set of one backend."""

    __slots__ = ("name", "summary", "capabilities")

    def __init__(self, name, summary, capabilities):
        self.name = name
        self.summary = summary
        self.capabilities = frozenset(capabilities)

    def supports(self, capability):
        return capability in self.capabilities

    def __repr__(self):
        return "BackendInfo(%r, capabilities=%s)" % (
            self.name, sorted(self.capabilities))


BACKENDS = {
    "simulated": BackendInfo(
        "simulated",
        "the paper's simulated PC cluster (modelled seconds, bit-exact "
        "figures)",
        {"cube", "store-build", "shards", "faults", "simulated-timing"},
    ),
    "local": BackendInfo(
        "local",
        "supervised process pool over the columnar kernels (real wall "
        "clock)",
        {"cube", "store-build", "serve-fallback", "shards", "workers",
         "faults", "kernels", "ingest"},
    ),
    "mapreduce": BackendInfo(
        "mapreduce",
        "one-round MapReduce with a spill-to-disk shuffle (inputs larger "
        "than RAM)",
        {"cube", "store-build", "serve-fallback", "shards", "workers",
         "faults", "streaming", "ingest"},
    ),
}


def backend_names(capability=None):
    """Sorted backend names, optionally only those with ``capability``."""
    return sorted(
        name for name, info in BACKENDS.items()
        if capability is None or info.supports(capability)
    )


def resolve_backend(name, require=()):
    """Look up a backend by name, checking required capabilities.

    Raises :class:`~repro.errors.PlanError` listing the valid choices
    when ``name`` is unknown, or naming the missing capability when the
    backend exists but cannot do what the caller needs.
    """
    info = BACKENDS.get(name)
    if info is None:
        raise PlanError(
            "unknown backend %r (valid backends: %s)"
            % (name, ", ".join(backend_names()))
        )
    for capability in require:
        if not info.supports(capability):
            raise PlanError(
                "backend %r does not support %r (backends that do: %s)"
                % (name, capability, ", ".join(backend_names(capability)))
            )
    return info

"""Sharded, replicated serving: one logical cube that survives node loss.

The paper computes iceberg cubes on a *cluster* of commodity PCs; this
module serves them the same way.  The leaf cuboids a
:class:`~repro.serve.store.CubeStore` materializes are partitioned
across N store shards by a **stable hash of the covering-leaf prefix**
(:class:`ShardMap`), each shard runs R replica
:class:`~repro.serve.server.CubeServer` processes over identical shard
stores, and a stateless :class:`CubeRouter` in front fans queries out,
merges results, and fails over — the cluster, not any one box, is the
unit of availability.

**Placement** (:class:`ShardMap`).  Every cuboid's answer comes from
its covering leaf (``covering_leaf``: append the last dimension), so
hashing the covering leaf places every cuboid on exactly one shard and
keeps roll-ups of the same leaf together.  The hash is
:func:`stable_shard_hash` — BLAKE2b over the dimension names — so
placement survives Python hash randomization and process restarts; the
shard's ``(index, of)`` is recorded in the store manifest and any
mismatch (a re-shard without a rebuild) is refused, never silently
misrouted.

**Failover.**  Each replica sits behind its own
:class:`~repro.serve.resilience.CircuitBreaker`: a timeout, connection
error or 5xx records a failure and the query retries on a sibling
replica immediately; a tripped breaker takes the dead replica out of
rotation so it stops eating latency budget, and half-open probes (plus
the optional background health checker polling ``/healthz``) bring it
back when it recovers.  When *every* replica of a shard is down the
router answers a structured :class:`~repro.errors.ShardUnavailableError`
(HTTP 503 naming the shard) — an honest partial outage, never a wrong
or silently truncated answer.

**Durable fan-out** (:meth:`CubeRouter.append`).  Row deltas are
delivered to every replica in parallel, each delivery retried under a
capped full-jitter :class:`~repro.serve.resilience.RetryPolicy` and
gated on the replica's circuit breaker, and the whole batch travels
under one idempotence key — WAL-enabled replicas acknowledge a replayed
batch instead of re-applying it, so the router (or a client whose
router died mid-call) can always retry safely.  The background health
sweep doubles as **anti-entropy repair**: a replica whose generation
lags its shard's freshest sibling gets the missing WAL batches fetched
from that sibling (``GET /wal``) and re-delivered with their original
batch ids, converging the shard without operator action.

**Generation consistency.**  Replicas label every answer with the store
generation it was *verified* against (see ``CubeServer``'s double-read
protocol).  Single-shard answers are therefore internally consistent by
construction; cross-shard fan-outs (:meth:`CubeRouter.cube`) pin one
generation — responses are only merged when every shard answered from
the same generation, stale shards are re-queried, and if an append
storm keeps the shards skewed past the retry budget the router raises
:class:`~repro.errors.GenerationSkewError` (HTTP 503: retry) instead of
mixing generations.

Topology bootstrap is one line per shard::

    router = CubeRouter([
        ["http://10.0.0.1:8642", "http://10.0.0.2:8642"],   # shard 0
        ["http://10.0.0.3:8642", "http://10.0.0.4:8642"],   # shard 1
        ["http://10.0.0.5:8642", "http://10.0.0.6:8642"],   # shard 2
    ])
    answer = router.query(("A", "B"), minsup=2)   # routed, failed over
    full = router.cube(minsup=5)                  # fanned out, one gen

The CLI front-ends this as ``repro-cube store build --shards N``,
``repro-cube serve --shard i/N`` and ``repro-cube router``.
"""

import json
import threading
import time
from collections import deque, namedtuple
from concurrent.futures import ThreadPoolExecutor
from hashlib import blake2b
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.error import HTTPError, URLError
from urllib.parse import parse_qs, quote, urlsplit
from urllib.request import Request, urlopen

from .. import obs
from ..core.thresholds import AndThreshold, CountThreshold, SumThreshold, as_threshold
from ..errors import (
    GenerationSkewError,
    PlanError,
    ReplicaError,
    ReproError,
    SchemaError,
    ShardUnavailableError,
)
from ..lattice.lattice import CubeLattice
from ..obs.metrics import (
    MetricsRegistry,
    federate_prometheus,
    merge_histogram_buckets,
    parse_prometheus,
    quantile_from_buckets,
)
from ..obs.trace import merge_chrome_traces
from ..online.materialize import leaf_cuboids
from .ingest import stamped_batch_id
from .resilience import CircuitBreaker, Deadline, RetryPolicy
from .server import MAX_REQUEST_BYTES, HttpEndpoint

__all__ = [
    "ShardMap",
    "ReplicaClient",
    "CubeRouter",
    "RouterAnswer",
    "RouterCubeAnswer",
    "stable_shard_hash",
]

#: One routed answer: where it came from (shard / replica index), how
#: many failovers it took, and the single store generation it carries.
RouterAnswer = namedtuple(
    "RouterAnswer",
    ("cuboid", "threshold", "cells", "generation", "shard", "replica",
     "failovers", "latency_s"),
)

#: One merged cross-shard cube: every cuboid in the lattice, all read at
#: the same pinned ``generation`` (``attempts`` counts fan-out rounds).
RouterCubeAnswer = namedtuple(
    "RouterCubeAnswer",
    ("cuboids", "threshold", "generation", "attempts", "latency_s"),
)


def stable_shard_hash(leaf):
    """A placement hash that never moves: BLAKE2b over the leaf's
    ``/``-joined dimension names.

    Deliberately *not* Python's ``hash()`` — that is randomized per
    process (``PYTHONHASHSEED``), which would scatter a cuboid across
    different shards on every restart.
    """
    digest = blake2b("/".join(leaf).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """Stable assignment of leaf cuboids (and their covered prefixes)
    to ``n_shards`` shards.

    Every cuboid maps to exactly one shard — the one owning its
    covering leaf — and the assignment is a pure function of the
    dimension names and the shard count, so router, builder and every
    replica agree without coordination.
    """

    def __init__(self, dims, n_shards):
        if n_shards < 1:
            raise PlanError("n_shards must be >= 1, got %r" % (n_shards,))
        self.dims = tuple(dims)
        if not self.dims:
            raise PlanError("need at least one dimension")
        self.n_shards = int(n_shards)
        self._lattice = CubeLattice(self.dims)
        self.leaves = leaf_cuboids(self.dims)
        self._leaf_set = frozenset(self.leaves)
        self._assignment = {
            leaf: stable_shard_hash(leaf) % self.n_shards for leaf in self.leaves
        }

    def canonical(self, cuboid):
        """Normalize a cuboid to schema order."""
        return self._lattice.canonical(cuboid)

    def covering_leaf(self, cuboid):
        """The leaf whose shard answers ``cuboid`` (same rule as the
        store: append the last dimension unless already present)."""
        cuboid = self._lattice.canonical(cuboid)
        if cuboid and cuboid[-1] == self.dims[-1]:
            return cuboid
        return cuboid + (self.dims[-1],)

    def shard_of(self, cuboid):
        """The one shard index that owns ``cuboid``'s covering leaf."""
        return self._assignment[self.covering_leaf(cuboid)]

    def leaves_for(self, shard):
        """The leaf cuboids assigned to shard ``shard`` (build subset)."""
        if not 0 <= shard < self.n_shards:
            raise PlanError(
                "shard index %r out of range for %d shard(s)"
                % (shard, self.n_shards))
        return [leaf for leaf in self.leaves
                if self._assignment[leaf] == shard]

    def counts(self):
        """Leaves per shard (placement balance, for stats and tests)."""
        out = [0] * self.n_shards
        for shard in self._assignment.values():
            out[shard] += 1
        return out

    def validate_store(self, store, shard):
        """Refuse a store whose recorded placement disagrees with this map.

        A store built as shard ``i`` of ``N`` must only ever serve as
        shard ``i`` of ``N``: opening it under a different sharding
        (re-shard without rebuild) or a different dimension set would
        silently misroute queries, so it is an error, not a warning.
        """
        if tuple(store.dims) != self.dims:
            raise SchemaError(
                "store dims %r do not match the shard map's %r"
                % (tuple(store.dims), self.dims))
        recorded = getattr(store, "shard", None)
        if recorded is None:
            raise PlanError(
                "store %r is unsharded (no shard metadata in its manifest); "
                "rebuild it with shard=(%d, %d)"
                % (store.directory, shard, self.n_shards))
        if recorded != (shard, self.n_shards):
            raise PlanError(
                "store %r was built as shard %d/%d but is being served as "
                "shard %d/%d — re-sharding requires a rebuild, refusing"
                % (store.directory, recorded[0], recorded[1], shard,
                   self.n_shards))
        expected = frozenset(self.leaves_for(shard))
        if frozenset(store.leaves) != expected:
            raise PlanError(
                "store %r leaf set does not match the stable placement for "
                "shard %d/%d" % (store.directory, shard, self.n_shards))

    def __repr__(self):
        return "ShardMap(dims=%r, n_shards=%d, leaves=%s)" % (
            self.dims, self.n_shards, self.counts())


def _threshold_query(threshold):
    """Serialize a threshold into ``/query``-style URL parameters."""
    parts = []

    def emit(t):
        if isinstance(t, AndThreshold):
            for condition in t.conditions:
                emit(condition)
        elif isinstance(t, CountThreshold):
            parts.append("minsup=%d" % t.min_count)
        elif isinstance(t, SumThreshold):
            parts.append("min_sum=%s" % repr(t.min_sum))
        else:
            raise PlanError(
                "the router can forward count/sum thresholds only, got %r"
                % (t,))

    emit(as_threshold(threshold))
    return "&".join(parts)


def _decode_cells(cells):
    return {tuple(entry["cell"]): (entry["count"], entry["sum"])
            for entry in cells}


class ReplicaClient:
    """A thin JSON/HTTP client for one replica of one shard.

    Failures that justify failover — connection errors, timeouts, 5xx,
    429 (overloaded) and 504 (deadline) — raise
    :class:`~repro.errors.ReplicaError`; other 4xx replies mean the
    *query* is bad and raise :class:`~repro.errors.PlanError` without
    burning a failover (a bad query is bad on every replica).
    """

    #: statuses worth retrying on a sibling replica
    FAILOVER_STATUSES = frozenset({429, 500, 502, 503, 504})

    def __init__(self, url, timeout_s=10.0):
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def get_json(self, path):
        return self._request(Request(self.url + path))

    def get_text(self, path):
        """Fetch a raw text body (the replica's ``/metrics`` page).

        Same failure mapping as the JSON calls, minus the decode step.
        """
        return self._request(Request(self.url + path), decode_json=False)

    def post_json(self, path, payload):
        body = json.dumps(payload).encode()
        if len(body) > MAX_REQUEST_BYTES:
            raise PlanError(
                "append delta of %d bytes exceeds the %d byte request limit; "
                "split it into smaller batches" % (len(body), MAX_REQUEST_BYTES))
        request = Request(self.url + path, data=body,
                          headers={"Content-Type": "application/json"})
        return self._request(request)

    def _request(self, request, decode_json=True):
        # Every outbound call carries the caller's trace position, so
        # replica-side spans parent under the router span that caused
        # them.  No context, no header — the replica starts fresh.
        traceparent = obs.inject()
        if traceparent is not None:
            request.add_header("traceparent", traceparent)
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                body = response.read()
                return json.loads(body) if decode_json \
                    else body.decode("utf-8")
        except HTTPError as exc:
            detail = self._error_detail(exc)
            if exc.code in self.FAILOVER_STATUSES:
                raise ReplicaError(self.url, detail, status=exc.code) from None
            raise PlanError(
                "replica %s rejected the request (HTTP %d): %s"
                % (self.url, exc.code, detail)) from None
        except URLError as exc:
            raise ReplicaError(self.url, str(exc.reason)) from None
        except (TimeoutError, ConnectionError, OSError) as exc:
            raise ReplicaError(self.url, str(exc)) from None
        except json.JSONDecodeError as exc:
            raise ReplicaError(self.url, "malformed JSON reply (%s)" % exc) \
                from None

    @staticmethod
    def _error_detail(exc):
        try:
            return json.loads(exc.read()).get("error", "no detail")
        except Exception:
            return "no detail"

    def __repr__(self):
        return "ReplicaClient(%s)" % self.url


class CubeRouter:
    """A stateless fan-out/merge router over N shards x R replicas.

    ``shard_replicas`` is a list of shards, each a list of replica base
    URLs.  ``dims`` may be given up front; otherwise the router
    discovers them from the first replica that answers ``/healthz`` (and
    validates every replica's recorded shard placement against its
    configured position — a misplaced or re-sharded replica is refused).

    Thread-safe; queries may be issued concurrently.  The router keeps
    no cube state — only breakers, health snapshots and counters — so
    any number of routers can front the same cluster.
    """

    def __init__(self, shard_replicas, dims=None, timeout_s=10.0,
                 breaker_factory=None, health_interval_s=0.0,
                 generation_attempts=4, registry=None,
                 append_retries=3, append_backoff_s=0.05,
                 append_backoff_cap_s=1.0, append_deadline_s=None,
                 anti_entropy=True, retry_policy=None, slow_query_s=None):
        if not shard_replicas:
            raise PlanError("need at least one shard")
        self.shards = []
        for urls in shard_replicas:
            urls = list(urls)
            if not urls:
                raise PlanError("every shard needs at least one replica URL")
            self.shards.append([ReplicaClient(u, timeout_s) for u in urls])
        self.n_shards = len(self.shards)
        if breaker_factory is None:
            breaker_factory = lambda: CircuitBreaker(  # noqa: E731
                failure_threshold=3, reset_after_s=2.0)
        self.breakers = {
            (s, r): breaker_factory()
            for s, replicas in enumerate(self.shards)
            for r in range(len(replicas))
        }
        if generation_attempts < 1:
            raise PlanError("generation_attempts must be >= 1, got %r"
                            % (generation_attempts,))
        self.generation_attempts = int(generation_attempts)
        self._shard_map = ShardMap(dims, self.n_shards) if dims else None
        self._lock = threading.Lock()
        self._rr = [0] * self.n_shards
        self._health = {}  # (shard, replica) -> last /healthz snapshot
        self._endpoints = []
        self._closed = threading.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * self.n_shards,
                            sum(len(r) for r in self.shards)),
            thread_name_prefix="cube-router")
        if retry_policy is None:
            retry_policy = RetryPolicy(
                attempts=append_retries, base_s=append_backoff_s,
                cap_s=append_backoff_cap_s)
        self.append_policy = retry_policy
        if append_deadline_s is not None and float(append_deadline_s) <= 0:
            raise PlanError("append_deadline_s must be > 0, got %r"
                            % (append_deadline_s,))
        self.append_deadline_s = append_deadline_s
        self.anti_entropy = bool(anti_entropy)
        if registry is None:
            active = obs.current()
            registry = active.registry if active is not None \
                else MetricsRegistry()
        self.registry = registry
        self._requests = registry.counter(
            "repro_router_requests_total",
            "Routed requests by kind and outcome.", ("kind", "outcome"))
        self._failovers = registry.counter(
            "repro_router_failovers_total",
            "Replica failures that caused a failover attempt, per shard.",
            ("shard",))
        self._unavailable = registry.counter(
            "repro_router_shard_unavailable_total",
            "Requests answered 503 because a whole shard was down.",
            ("shard",))
        self._generation_retries = registry.counter(
            "repro_router_generation_retries_total",
            "Cross-shard fan-out rounds repeated to pin one generation.")
        self._health_checks = registry.counter(
            "repro_router_health_checks_total",
            "Background /healthz probes by result.", ("status",))
        self._append_retries = registry.counter(
            "repro_router_append_retries_total",
            "Append attempts that failed and were retried, per shard.",
            ("shard",))
        self._anti_entropy = registry.counter(
            "repro_router_anti_entropy_total",
            "Anti-entropy repair actions by outcome.", ("outcome",))
        self._replica_up = registry.gauge(
            "repro_router_replica_up",
            "1 if the replica's last health probe succeeded, else 0.",
            ("shard", "replica"))
        self._replica_lag = registry.gauge(
            "repro_router_replica_lag",
            "Generations the replica lags its shard's freshest sibling "
            "(anti-entropy's repair signal).", ("shard", "replica"))
        self._scrape_failures = registry.counter(
            "repro_router_scrape_failures_total",
            "Replica scrapes (federation/trace collection) that failed.",
            ("kind",))
        self._slow_queries = registry.counter(
            "repro_router_slow_queries_total",
            "Routed requests slower than the slow-query threshold.",
            ("kind",))
        if slow_query_s is not None and float(slow_query_s) <= 0:
            raise PlanError("slow_query_s must be > 0, got %r"
                            % (slow_query_s,))
        self.slow_query_s = float(slow_query_s) \
            if slow_query_s is not None else None
        #: most recent slow queries, each with an exemplar trace id —
        #: the jump-off point from a p99 outlier to its full trace
        self._slow_log = deque(maxlen=64)
        self._health_thread = None
        self.health_interval_s = float(health_interval_s)
        if self.health_interval_s > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="router-health", daemon=True)
            self._health_thread.start()

    # ------------------------------------------------------------------
    # topology discovery
    # ------------------------------------------------------------------
    def _ensure_map(self):
        map_ = self._shard_map
        if map_ is not None:
            return map_
        errors = []
        for shard, replicas in enumerate(self.shards):
            for replica, client in enumerate(replicas):
                try:
                    health = client.get_json("/healthz")
                except (ReplicaError, PlanError) as exc:
                    errors.append(str(exc))
                    continue
                with self._lock:
                    if self._shard_map is None:
                        self._shard_map = ShardMap(
                            tuple(health["dims"]), self.n_shards)
                self._validate_placement(shard, health)
                return self._shard_map
        raise ShardUnavailableError(
            0, sum(len(r) for r in self.shards),
            "no replica answered /healthz to bootstrap the shard map: "
            + "; ".join(errors))

    def _validate_placement(self, shard, health):
        """Refuse replicas whose recorded shard placement is wrong."""
        recorded = health.get("shard")
        if recorded is None:
            if self.n_shards == 1:
                return  # an unsharded store behind a 1-shard router is fine
            raise PlanError(
                "replica of shard %d serves an unsharded store but the "
                "router is configured with %d shards" % (shard, self.n_shards))
        if (int(recorded["index"]), int(recorded["of"])) \
                != (shard, self.n_shards):
            raise PlanError(
                "replica configured as shard %d/%d reports shard %d/%d — "
                "re-sharding requires rebuilding the stores, refusing"
                % (shard, self.n_shards,
                   int(recorded["index"]), int(recorded["of"])))

    def shard_for(self, cuboid):
        """Which shard answers ``cuboid`` (placement introspection)."""
        return self._ensure_map().shard_of(cuboid)

    # ------------------------------------------------------------------
    # one-shard calls with failover
    # ------------------------------------------------------------------
    def _call_shard(self, shard, path, post_payload=None):
        """Call one shard, failing over across its replicas.

        Replicas are tried in round-robin rotation, skipping those whose
        breaker is open; a :class:`~repro.errors.ReplicaError` records a
        breaker failure and moves on to the next sibling.  Returns
        ``(payload, replica_index, failovers)``; raises
        :class:`~repro.errors.ShardUnavailableError` when no replica
        could answer.
        """
        replicas = self.shards[shard]
        with self._lock:
            start = self._rr[shard]
            self._rr[shard] += 1
        failures = []
        failovers = 0
        for k in range(len(replicas)):
            index = (start + k) % len(replicas)
            client = replicas[index]
            breaker = self.breakers[(shard, index)]
            if not breaker.allow():
                failures.append("%s: circuit breaker open" % client.url)
                continue
            try:
                if post_payload is None:
                    payload = client.get_json(path)
                else:
                    payload = client.post_json(path, post_payload)
            except ReplicaError as exc:
                breaker.record_failure()
                failures.append(str(exc))
                failovers += 1
                self._failovers.inc(shard=str(shard))
                obs.event("router.failover", shard=shard, replica=index)
                continue
            breaker.record_success()
            return payload, index, failovers
        self._unavailable.inc(shard=str(shard))
        obs.event("router.shard_unavailable", shard=shard)
        raise ShardUnavailableError(shard, len(replicas),
                                    "; ".join(failures))

    @staticmethod
    def _traced(ctx, fn, *args):
        """Run ``fn`` on a pool thread under the submitter's trace
        context (pool threads otherwise start their own traces)."""
        with obs.activate(ctx):
            return fn(*args)

    def _observe_slow(self, kind, cuboid, latency_s, shard):
        """Log a request that blew the slow-query threshold.

        The log entry carries the live trace id as an exemplar, so an
        operator can jump from the ``/stats`` outlier straight to the
        request's full cross-process trace in the merged export.
        """
        if self.slow_query_s is None or latency_s < self.slow_query_s:
            return
        self._slow_queries.inc(kind=kind)
        entry = {
            "kind": kind,
            "cuboid": list(cuboid),
            "shard": shard,
            "latency_ms": round(latency_s * 1000.0, 3),
            "threshold_ms": round(self.slow_query_s * 1000.0, 3),
            "trace_id": obs.trace_id(),
            "at": time.time(),
        }
        with self._lock:
            self._slow_log.append(entry)
        obs.event("router.slow_query", kind=kind,
                  latency_ms=entry["latency_ms"])

    def slow_queries(self):
        """The slow-query log, oldest first (empty when no threshold)."""
        with self._lock:
            return list(self._slow_log)

    # ------------------------------------------------------------------
    # query surface
    # ------------------------------------------------------------------
    def query(self, cuboid, minsup=1):
        """One group-by, routed to the owning shard with failover."""
        start = perf_counter()
        threshold = as_threshold(minsup)
        shard_map = self._ensure_map()
        canonical = shard_map.canonical(cuboid)
        shard = shard_map.shard_of(canonical)
        path = "/query?cuboid=%s&%s" % (
            quote(",".join(canonical), safe=","), _threshold_query(threshold))
        with obs.span("router.query") as span:
            try:
                payload, replica, failovers = self._call_shard(shard, path)
            except ReproError:
                self._requests.inc(kind="query", outcome="error")
                raise
            self._requests.inc(kind="query", outcome="ok")
            if span:
                span.set(cuboid=list(canonical), shard=shard,
                         replica=replica, failovers=failovers)
            latency = perf_counter() - start
            self._observe_slow("query", canonical, latency, shard)
        return RouterAnswer(
            tuple(payload["cuboid"]), payload["threshold"],
            _decode_cells(payload["cells"]), payload["generation"],
            shard, replica, failovers, latency)

    def point(self, cuboid, cell, minsup=1):
        """One cell lookup, routed to the owning shard with failover."""
        start = perf_counter()
        threshold = as_threshold(minsup)
        shard_map = self._ensure_map()
        canonical = shard_map.canonical(cuboid)
        shard = shard_map.shard_of(canonical)
        path = "/point?cuboid=%s&cell=%s&%s" % (
            quote(",".join(canonical), safe=","),
            ",".join(str(int(v)) for v in cell),
            _threshold_query(threshold))
        with obs.span("router.point") as span:
            try:
                payload, replica, failovers = self._call_shard(shard, path)
            except ReproError:
                self._requests.inc(kind="point", outcome="error")
                raise
            self._requests.inc(kind="point", outcome="ok")
            if span:
                span.set(shard=shard, replica=replica, failovers=failovers)
            latency = perf_counter() - start
            self._observe_slow("point", canonical, latency, shard)
        return RouterAnswer(
            tuple(payload["cuboid"]), payload["threshold"],
            _decode_cells(payload["cells"]), payload["generation"],
            shard, replica, failovers, latency)

    def cube(self, minsup=1):
        """The full iceberg cube, fanned out and pinned to one generation.

        Every shard contributes the cuboids it owns; responses are only
        merged when *all* shards answered from the same store
        generation.  A stale shard (an ``append`` landed between
        responses) is re-queried, pinning the newest generation seen;
        after ``generation_attempts`` rounds without convergence the
        router raises :class:`~repro.errors.GenerationSkewError` rather
        than mixing generations.
        """
        start = perf_counter()
        threshold = as_threshold(minsup)
        self._ensure_map()
        path = "/cube?" + _threshold_query(threshold)
        responses = {}
        generations = set()
        with obs.span("router.cube") as span:
            # Fan-out threads have no span stack of their own; hand them
            # this thread's context so the traceparent each ReplicaClient
            # injects names the router.cube span as parent.
            ctx = obs.context()
            for attempt in range(1, self.generation_attempts + 1):
                pinned = max((p["generation"] for p in responses.values()),
                             default=None)
                needed = [s for s in range(self.n_shards)
                          if responses.get(s) is None
                          or responses[s]["generation"] != pinned]
                futures = {
                    s: self._pool.submit(self._traced, ctx,
                                         self._call_shard, s, path)
                    for s in needed
                }
                try:
                    for s, future in futures.items():
                        responses[s] = future.result()[0]
                except ReproError:
                    self._requests.inc(kind="cube", outcome="error")
                    raise
                generations = {p["generation"] for p in responses.values()}
                if len(generations) == 1:
                    merged = {}
                    for payload in responses.values():
                        for entry in payload["cuboids"]:
                            merged[tuple(entry["cuboid"])] = \
                                _decode_cells(entry["cells"])
                    self._requests.inc(kind="cube", outcome="ok")
                    generation = generations.pop()
                    if span:
                        span.set(cuboids=len(merged), generation=generation,
                                 attempts=attempt)
                    latency = perf_counter() - start
                    self._observe_slow("cube", ("*",), latency, None)
                    return RouterCubeAnswer(
                        merged, threshold.describe(), generation, attempt,
                        latency)
                self._generation_retries.inc()
                obs.event("router.generation_retry",
                          generations=sorted(generations))
        self._requests.inc(kind="cube", outcome="generation_skew")
        raise GenerationSkewError(generations, self.generation_attempts)

    def _cluster_wal_enabled(self):
        """Whether every reachable replica can dedupe idempotent appends.

        Answered from the last health sweep; if none has run, the
        replicas are probed without persisting the snapshot (a stale
        copy stored mid-append would mask later failures from
        :meth:`health`).  Retrying an append is only safe when the
        replica remembers batch ids, so a cluster with any WAL-less
        replica is driven in legacy single-attempt mode.
        """
        with self._lock:
            snapshot = dict(self._health)
        if not snapshot:
            snapshot = self.check_health(store=False)
        saw_replica = False
        for state in snapshot.values():
            if state.get("status") != "ok":
                continue
            saw_replica = True
            wal = state.get("wal")
            if not (wal and wal.get("enabled")):
                return False
        return saw_replica

    def _append_replica(self, shard, replica, payload, deadline, attempts):
        """Deliver one append to one replica, retrying with backoff.

        Consults the replica's circuit breaker before every try (a
        tripped replica is skipped and left to anti-entropy repair, the
        same way the query path skips it) and records every outcome on
        it.  Transient :class:`~repro.errors.ReplicaError` failures are
        retried under the router's :class:`RetryPolicy`; a
        :class:`~repro.errors.PlanError` (the replica answered, and said
        no) is permanent.  ``attempts`` is 1 unless the delivery carries
        an idempotence key — only then is a retry safe: a replica that
        applied the batch but lost the reply just acknowledges the
        duplicate.
        """
        client = self.shards[shard][replica]
        breaker = self.breakers[(shard, replica)]
        outcome = {"shard": shard, "replica": replica, "ok": False}
        last_error = "no attempt made"
        for attempt in range(attempts):
            if not breaker.allow():
                outcome["error"] = "circuit breaker open"
                outcome["skipped"] = True
                obs.event("router.append_breaker_skip",
                          shard=shard, replica=replica)
                return outcome
            if deadline is not None and deadline.expired():
                outcome["error"] = ("append deadline exceeded after %d "
                                    "attempts (%s)" % (attempt, last_error))
                return outcome
            try:
                reply = client.post_json("/append", payload)
            except ReplicaError as exc:
                breaker.record_failure()
                last_error = str(exc)
                self._failovers.inc(shard=str(shard))
                if attempt + 1 < attempts:
                    self._append_retries.inc(shard=str(shard))
                    obs.event("router.append_retry", shard=shard,
                              replica=replica, attempt=attempt)
                    if self.append_policy.pause(attempt, deadline):
                        continue
                    outcome["error"] = ("append deadline cannot absorb "
                                        "backoff (%s)" % last_error)
                    return outcome
                outcome["error"] = last_error
                outcome["attempts"] = attempt + 1
                return outcome
            except PlanError as exc:
                outcome["error"] = str(exc)
                outcome["permanent"] = True
                outcome["attempts"] = attempt + 1
                return outcome
            breaker.record_success()
            outcome.update(
                ok=True, generation=reply.get("generation"),
                applied=reply.get("applied", True),
                attempts=attempt + 1)
            return outcome
        return outcome  # pragma: no cover - loop always returns

    def append(self, relation, batch_id=None, deadline_s=None):
        """Fold a row delta into *every* replica of every shard.

        Each replica applies the delta to its own store (replicas do not
        share disks), so the cluster's generations converge as the posts
        land; reads stay consistent throughout via the generation
        protocol.  Deliveries run in parallel; when the cluster can
        dedupe (every replica WAL-enabled, or the caller supplied a
        ``batch_id``) the whole batch travels under one idempotence key
        and each replica gets a full retry budget (capped full-jitter
        backoff, breaker-aware — see :meth:`_append_replica`), so
        retries — including a *client* retrying this very call after a
        crash — can never double-count rows.  Against WAL-less replicas
        the router stays in legacy mode: one attempt each, no key, no
        blind re-post.

        Returns a summary with per-replica outcomes (``applied`` counts
        acknowledgements, ``duplicates`` the acks that were replays).  A
        shard whose replicas *all* failed raises
        :class:`~repro.errors.ShardUnavailableError` — that shard would
        otherwise be permanently stale; re-calling with the same
        ``batch_id`` is the safe recovery.
        """
        with obs.span("router.append", rows=len(relation)) as span:
            idempotent = batch_id is not None or self._cluster_wal_enabled()
            if idempotent and batch_id is None:
                # Stamp the batch with the live trace id: every later
                # sighting of this id — replica WAL, retry, anti-entropy
                # re-delivery — correlates back to this append's trace.
                batch_id = stamped_batch_id(obs.trace_id())
            batch_id = str(batch_id) if batch_id is not None else None
            if span and batch_id is not None:
                span.set(batch_id=batch_id)
            payload = {
                "dims": list(relation.dims),
                "rows": [list(row) for row in relation.rows],
                "measures": list(relation.measures),
            }
            if idempotent:
                payload["batch_id"] = batch_id
            attempts = self.append_policy.attempts if idempotent else 1
            if deadline_s is None:
                deadline_s = self.append_deadline_s
            deadline = Deadline(deadline_s) if deadline_s is not None else None
            ctx = obs.context()
            futures = {
                (shard, replica): self._pool.submit(
                    self._traced, ctx, self._append_replica, shard, replica,
                    payload, deadline, attempts)
                for shard, replicas in enumerate(self.shards)
                for replica in range(len(replicas))
            }
            outcomes = [futures[key].result() for key in sorted(futures)]
            for shard, replicas in enumerate(self.shards):
                ok = sum(1 for o in outcomes
                         if o["shard"] == shard and o["ok"])
                if ok == 0:
                    errors = "; ".join(
                        o.get("error", "?") for o in outcomes
                        if o["shard"] == shard)
                    self._unavailable.inc(shard=str(shard))
                    obs.event("router.shard_unavailable", shard=shard)
                    self._requests.inc(kind="append", outcome="unavailable")
                    detail = "append failed on every replica (%s)" % errors
                    if idempotent:
                        detail += ("; batch %s is safe to resubmit — "
                                   "idempotence keys deduplicate" % batch_id)
                    raise ShardUnavailableError(shard, len(replicas), detail)
            applied = sum(1 for o in outcomes if o["ok"])
            duplicates = sum(1 for o in outcomes
                             if o["ok"] and not o.get("applied", True))
            self._requests.inc(kind="append",
                               outcome="ok" if applied == len(outcomes)
                               else "partial")
            if span:
                span.set(applied=applied, duplicates=duplicates)
        return {"rows": len(relation), "replicas": len(outcomes),
                "applied": applied, "duplicates": duplicates,
                "batch_id": batch_id, "idempotent": idempotent,
                "outcomes": outcomes}

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def check_health(self, store=True):
        """One synchronous sweep of every replica's ``/healthz``.

        Success closes the replica's breaker (recovered replicas rejoin
        rotation); failure records a breaker failure (dead replicas trip
        out).  A replica reporting the wrong shard placement is marked
        ``misplaced`` and counted as a failure — better to lose a
        replica than to serve another shard's cuboids.  ``store=False``
        probes without remembering the snapshot or running the
        anti-entropy sweep (the append path's WAL-capability probe).
        """
        snapshot = {}
        for shard, replicas in enumerate(self.shards):
            for replica, client in enumerate(replicas):
                key = (shard, replica)
                breaker = self.breakers[key]
                try:
                    health = client.get_json("/healthz")
                    self._validate_placement(shard, health)
                except (ReplicaError, PlanError, SchemaError, KeyError) as exc:
                    status = "misplaced" if isinstance(exc, PlanError) \
                        else "down"
                    breaker.record_failure()
                    self._health_checks.inc(status=status)
                    self._replica_up.set(
                        0, shard=str(shard), replica=str(replica))
                    snapshot[key] = {"url": client.url, "status": status,
                                     "error": str(exc)}
                    continue
                breaker.record_success()
                self._health_checks.inc(status="ok")
                self._replica_up.set(1, shard=str(shard), replica=str(replica))
                snapshot[key] = {
                    "url": client.url, "status": health.get("status", "ok"),
                    "generation": health.get("generation"),
                    "verify": health.get("verify"),
                    "breaker": health.get("breaker"),
                    "wal": health.get("wal"),
                }
        # Per-replica generation lag against the shard's freshest healthy
        # sibling — the number anti-entropy repairs by, now exported
        # instead of discarded after the sweep.
        for shard in range(self.n_shards):
            generations = {
                replica: int(state["generation"])
                for (s, replica), state in snapshot.items()
                if s == shard and state.get("status") == "ok"
                and state.get("generation") is not None
            }
            if not generations:
                continue
            target = max(generations.values())
            for replica, generation in generations.items():
                self._replica_lag.set(target - generation,
                                      shard=str(shard), replica=str(replica))
        if store:
            with self._lock:
                self._health = snapshot
            if self.anti_entropy:
                self._anti_entropy_sweep(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # anti-entropy repair
    # ------------------------------------------------------------------
    def _anti_entropy_sweep(self, snapshot):
        """Re-deliver missing WAL batches to generation-lagging replicas.

        For every shard, the freshest healthy WAL-enabled replica is the
        repair *source*: its pending (un-compacted) WAL batches are
        fetched over ``GET /wal`` and re-POSTed — original batch ids and
        all — to every healthy sibling whose generation lags.  Replays
        land in WAL order and duplicates are acknowledged idempotently,
        so repair converges the replicas to cell-exact equality without
        any coordination beyond the health sweep that is already
        running.  A replica that lags below the source's WAL *base*
        (those batches were compacted away) is counted ``unrepairable``
        — it needs a store resync, which repair will not guess at.
        """
        for shard in range(self.n_shards):
            states = {}
            for replica in range(len(self.shards[shard])):
                state = snapshot.get((shard, replica))
                if not state or state.get("status") != "ok":
                    continue
                generation = state.get("generation")
                if generation is None:
                    continue
                states[replica] = (int(generation), state.get("wal"))
            if len(states) < 2:
                continue
            target = max(generation for generation, _ in states.values())
            laggards = [r for r, (g, wal) in sorted(states.items())
                        if g < target]
            if not laggards:
                continue
            sources = [r for r, (g, wal) in sorted(states.items())
                       if g == target and wal and wal.get("enabled")]
            if not sources:
                self._anti_entropy.inc(outcome="no_source",
                                       amount=len(laggards))
                obs.event("router.anti_entropy_no_source", shard=shard,
                          laggards=laggards)
                continue
            source = sources[0]
            source_base = int(states[source][1].get(
                "base_generation", target))
            for replica in laggards:
                generation, wal = states[replica]
                if not wal or not wal.get("enabled"):
                    self._anti_entropy.inc(outcome="unrepairable")
                    obs.event("router.anti_entropy_unrepairable",
                              shard=shard, replica=replica,
                              reason="replica has no WAL")
                    continue
                if generation < source_base:
                    # The batches it missed predate the source's last
                    # compaction — the WAL can no longer replay them.
                    self._anti_entropy.inc(outcome="unrepairable")
                    obs.event("router.anti_entropy_unrepairable",
                              shard=shard, replica=replica,
                              reason="lags below the source WAL base "
                                     "(%d < %d): store resync required"
                                     % (generation, source_base))
                    continue
                self._repair_replica(shard, replica, source, source_base)

    def _repair_replica(self, shard, replica, source, source_base):
        """Fetch the source's pending WAL batches and re-POST them all.

        Every pending batch is re-delivered (the lagging replica's own
        generation cannot name *which* batches it missed when failures
        interleaved), relying on idempotence keys to turn the already-
        applied ones into cheap duplicate acks and the missing ones into
        real appends — after which both replicas have applied the same
        batch set and their generations agree.
        """
        source_client = self.shards[shard][source]
        client = self.shards[shard][replica]
        try:
            reply = source_client.get_json("/wal?since=%d" % source_base)
        except (ReplicaError, PlanError) as exc:
            self._anti_entropy.inc(outcome="fetch_failed")
            obs.event("router.anti_entropy_fetch_failed", shard=shard,
                      source=source, error=str(exc))
            return
        if reply.get("truncated"):
            self._anti_entropy.inc(outcome="unrepairable")
            obs.event("router.anti_entropy_unrepairable", shard=shard,
                      replica=replica,
                      reason="source WAL truncated during repair")
            return
        delivered = applied = 0
        for batch in reply.get("batches", []):
            payload = {"dims": batch["dims"], "rows": batch["rows"],
                       "measures": batch["measures"],
                       "batch_id": batch["batch_id"]}
            try:
                ack = client.post_json("/append", payload)
            except (ReplicaError, PlanError) as exc:
                self._anti_entropy.inc(outcome="redeliver_failed")
                obs.event("router.anti_entropy_redeliver_failed",
                          shard=shard, replica=replica, error=str(exc))
                return
            delivered += 1
            if ack.get("applied", True):
                applied += 1
        self._anti_entropy.inc(outcome="repaired")
        obs.event("router.anti_entropy_repaired", shard=shard,
                  replica=replica, source=source, delivered=delivered,
                  applied=applied)

    def _health_loop(self):
        while True:
            try:
                self.check_health()
            except Exception:  # pragma: no cover - belt and braces
                pass  # a health sweep must never kill the router
            if self._closed.wait(self.health_interval_s):
                return

    def health(self):
        """The router's own ``/healthz`` body: per-shard replica states."""
        with self._lock:
            snapshot = dict(self._health)
        if not snapshot:
            # No sweep has run yet (health checker off, or just booted):
            # probe synchronously rather than guess the cluster is down.
            snapshot = self.check_health()
        shards = []
        degraded = []
        red = self.red_summary()
        for shard, replicas in enumerate(self.shards):
            entries = []
            up = 0
            for replica, client in enumerate(replicas):
                state = snapshot.get((shard, replica), {"url": client.url,
                                                        "status": "unknown"})
                state = dict(state)
                state["breaker_local"] = self.breakers[(shard, replica)].state
                entries.append(state)
                if state["status"] == "ok" \
                        and state["breaker_local"] != "open":
                    up += 1
            if up == 0:
                degraded.append(shard)
            shards.append({"shard": shard, "replicas": entries, "up": up,
                           "red": red.get(str(shard))})
        status = "ok" if not degraded else "degraded"
        return {"status": status, "n_shards": self.n_shards,
                "degraded_shards": degraded, "shards": shards}

    def stats(self):
        """Router-wide counters and per-replica breaker states."""
        return {
            "n_shards": self.n_shards,
            "replicas": [len(r) for r in self.shards],
            "generation_attempts": self.generation_attempts,
            "slow_query_threshold_s": self.slow_query_s,
            "slow_queries": self.slow_queries(),
            "breakers": {
                "%d/%d" % key: breaker.stats()
                for key, breaker in sorted(self.breakers.items())
            },
            "health": self.health(),
        }

    # ------------------------------------------------------------------
    # observability: trace collection + metrics federation
    # ------------------------------------------------------------------
    def _scrape_replicas(self, path, kind, json_body=False):
        """Fetch ``path`` from every replica in parallel.

        Returns ``{(shard, replica): body}`` for the replicas that
        answered.  A failed scrape is counted and skipped — federation
        degrades to the reachable subset instead of failing the page
        (the ``shard``/``replica`` labels make the gap visible).
        """
        def fetch(client):
            return client.get_json(path) if json_body \
                else client.get_text(path)

        futures = {
            (shard, replica): self._pool.submit(fetch, client)
            for shard, replicas in enumerate(self.shards)
            for replica, client in enumerate(replicas)
        }
        out = {}
        for key, future in futures.items():
            try:
                out[key] = future.result()
            except (ReplicaError, PlanError):
                self._scrape_failures.inc(kind=kind)
        return out

    def federated_metrics(self):
        """One Prometheus page for the whole cluster.

        The router's own registry passes through unlabelled; every
        replica's scrape is relabelled with ``shard``/``replica`` before
        merging, so per-replica series stay distinguishable and summing
        them back (``sum by (shard)``, or plain ``sum``) reproduces each
        replica's own totals exactly.
        """
        sources = [({}, self.registry.to_prometheus())]
        scrapes = self._scrape_replicas("/metrics", "metrics")
        for (shard, replica) in sorted(scrapes):
            sources.append((
                {"shard": str(shard), "replica": str(replica)},
                scrapes[(shard, replica)]))
        return federate_prometheus(sources)

    def trace_payload(self, since=0):
        """The router's own span export (``GET /trace?since=`` body)."""
        active = obs.current()
        if active is None:
            return {"enabled": False, "node": "router", "spans": []}
        return active.tracer.payload(since=since, node="router")

    def collect_trace(self, path=None):
        """Merge the whole cluster's spans into one Chrome trace.

        Scrapes every replica's ``GET /trace`` and merges with the
        router's own buffer: one process track per node, spans aligned
        on the shared wall clock, correlated by trace id.  With ``path``
        the merged JSON is also written to disk (the ``router
        --trace-out`` artifact).
        """
        processes = [("router", self.trace_payload())]
        scrapes = self._scrape_replicas("/trace?since=0", "trace",
                                        json_body=True)
        for (shard, replica) in sorted(scrapes):
            processes.append((
                "shard%d/replica%d" % (shard, replica),
                scrapes[(shard, replica)]))
        merged = merge_chrome_traces(processes)
        if path is not None:
            with open(path, "w") as handle:
                json.dump(merged, handle, indent=1)
                handle.write("\n")
        return merged

    def red_summary(self, scrapes=None):
        """Rate/Errors/Duration per shard, from replica ``/metrics``.

        Requests and errors are sums over the shard's replicas (errors =
        sheds + deadline overruns + breaker rejections); latency
        quantiles come from the replicas' *merged* histogram buckets —
        a true shard-level distribution, not an average of averages.
        """
        if scrapes is None:
            scrapes = self._scrape_replicas("/metrics", "red")
        parsed = {}
        for key, text in scrapes.items():
            try:
                parsed[key] = parse_prometheus(text)
            except ValueError:
                self._scrape_failures.inc(kind="red")
        out = {}
        for shard in range(self.n_shards):
            requests = errors = 0.0
            bucket_series = []
            for (s, _replica), families in parsed.items():
                if s != shard:
                    continue
                for _name, _labels, value in families.get(
                        "repro_server_requests_total", {}).get("samples", ()):
                    requests += value
                for _name, labels, value in families.get(
                        "repro_server_events_total", {}).get("samples", ()):
                    if labels.get("event") in ("shed", "deadline_exceeded",
                                               "breaker_rejected"):
                        errors += value
                series = [
                    (labels["le"], value)
                    for name, labels, value in families.get(
                        "repro_server_latency_seconds", {}).get("samples", ())
                    if name.endswith("_bucket") and "le" in labels
                ]
                if series:
                    bucket_series.append(series)
            merged = merge_histogram_buckets(bucket_series)
            out[str(shard)] = {
                "requests": requests,
                "errors": errors,
                "p50_s": quantile_from_buckets(merged, 0.50),
                "p95_s": quantile_from_buckets(merged, 0.95),
                "p99_s": quantile_from_buckets(merged, 0.99),
            }
        return out

    # ------------------------------------------------------------------
    # HTTP endpoint + lifecycle
    # ------------------------------------------------------------------
    def serve_http(self, host="127.0.0.1", port=0):
        """Expose the router over JSON HTTP (same surface shape as a
        replica, so clients cannot tell one box from the cluster)."""
        if self._closed.is_set():
            raise PlanError("router is closed")
        httpd = _RouterHTTPServer((host, port), _RouterRequestHandler)
        httpd.cube_router = self
        thread = threading.Thread(
            target=httpd.serve_forever, name="router-http", daemon=True)
        thread.start()
        endpoint = HttpEndpoint(httpd, thread)
        self._endpoints.append(endpoint)
        return endpoint

    def close(self):
        """Stop the health checker, endpoints and fan-out pool."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        endpoints, self._endpoints = self._endpoints, []
        for endpoint in endpoints:
            endpoint.close()
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __repr__(self):
        return "CubeRouter(%d shards, %s replicas)" % (
            self.n_shards, [len(r) for r in self.shards])


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    cube_router = None


def _parse_router_threshold(params):
    conditions = []
    minsup = int(params.get("minsup", ["1"])[0])
    min_sum = params.get("min_sum")
    if minsup > 1 or min_sum is None:
        conditions.append(CountThreshold(max(1, minsup)))
    if min_sum is not None:
        conditions.append(SumThreshold(float(min_sum[0])))
    return conditions[0] if len(conditions) == 1 else AndThreshold(*conditions)


class _RouterRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-router/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - http.server naming
        self._guarded(self._route)

    def do_POST(self):  # noqa: N802 - http.server naming
        self._guarded(self._route_post)

    def _guarded(self, route):
        try:
            with obs.activate(obs.extract(self.headers.get("traceparent"))):
                route()
        except ShardUnavailableError as exc:
            # The honest partial outage: name the shard, never guess.
            self._reply(503, {"error": str(exc), "kind": "shard_unavailable",
                              "shard": exc.shard})
        except GenerationSkewError as exc:
            self._reply(503, {"error": str(exc), "kind": "generation_skew",
                              "generations": list(exc.generations)})
        except (ReproError, ValueError) as exc:
            self._reply(400, {"error": str(exc), "kind": "bad_request"})
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        except Exception as exc:  # pragma: no cover - last-ditch guard
            self._reply(500, {"error": "internal error (%s)"
                              % exc.__class__.__name__, "kind": "internal"})

    def _route(self):
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        router = self.server.cube_router
        if split.path == "/query":
            raw = params.get("cuboid", [""])[0]
            cuboid = tuple(filter(None, (n.strip() for n in raw.split(","))))
            answer = router.query(cuboid, _parse_router_threshold(params))
            self._reply(200, _router_answer_payload(answer))
        elif split.path == "/point":
            raw = params.get("cuboid", [""])[0]
            cuboid = tuple(filter(None, (n.strip() for n in raw.split(","))))
            raw_cell = params.get("cell", [""])[0]
            cell = tuple(int(v) for v in raw_cell.split(",") if v.strip())
            answer = router.point(cuboid, cell, _parse_router_threshold(params))
            self._reply(200, _router_answer_payload(answer))
        elif split.path == "/cube":
            answer = router.cube(_parse_router_threshold(params))
            self._reply(200, {
                "threshold": answer.threshold,
                "generation": answer.generation,
                "attempts": answer.attempts,
                "latency_ms": round(answer.latency_s * 1000.0, 3),
                "cuboids": [
                    {"cuboid": list(cuboid), "cells": [
                        {"cell": list(cell), "count": count, "sum": value}
                        for cell, (count, value) in sorted(cells.items())
                    ]}
                    for cuboid, cells in sorted(answer.cuboids.items())
                ],
            })
        elif split.path == "/healthz":
            health = router.health()
            self._reply(200 if health["status"] == "ok" else 503, health)
        elif split.path == "/stats":
            self._reply(200, router.stats())
        elif split.path == "/metrics":
            # The federated page: this router's registry plus every
            # replica's scrape, relabelled shard/replica and merged.
            self._reply_text(200, router.federated_metrics())
        elif split.path == "/trace":
            since = int(params.get("since", ["0"])[0])
            self._reply(200, router.trace_payload(since))
        elif split.path == "/trace/cluster":
            self._reply(200, router.collect_trace())
        else:
            self._reply(404, {"error": "unknown path %r" % split.path,
                              "kind": "not_found"})

    def _route_post(self):
        split = urlsplit(self.path)
        router = self.server.cube_router
        if split.path != "/append":
            self._reply(404, {"error": "unknown path %r" % split.path,
                              "kind": "not_found"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if not 0 < length <= MAX_REQUEST_BYTES:
            self._reply(400, {"error": "append body must be 1..%d bytes"
                              % MAX_REQUEST_BYTES, "kind": "bad_request"})
            return
        try:
            payload = json.loads(self.rfile.read(length))
            from ..data.relation import Relation

            relation = Relation(
                tuple(payload["dims"]),
                [tuple(int(v) for v in row) for row in payload["rows"]],
                [float(m) for m in payload["measures"]]
                if payload.get("measures") is not None else None,
            )
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            self._reply(400, {"error": "malformed append body (%s)" % exc,
                              "kind": "bad_request"})
            return
        batch_id = payload.get("batch_id")
        self._reply(200, router.append(relation, batch_id=batch_id))

    def _reply(self, status, payload):
        body = json.dumps(payload).encode()
        self._send(status, body, "application/json")

    def _reply_text(self, status, text):
        self._send(status, text.encode(),
                   "text/plain; version=0.0.4; charset=utf-8")

    def _send(self, status, body, content_type):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server naming
        pass

    def log_request(self, code="-", size="-"):
        pass


def _router_answer_payload(answer):
    return {
        "cuboid": list(answer.cuboid),
        "threshold": answer.threshold,
        "generation": answer.generation,
        "shard": answer.shard,
        "replica": answer.replica,
        "failovers": answer.failovers,
        "latency_ms": round(answer.latency_s * 1000.0, 3),
        "cells": [
            {"cell": list(cell), "count": count, "sum": value}
            for cell, (count, value) in sorted(answer.cells.items())
        ],
    }

"""Durable, idempotent streaming ingestion: the store's write-ahead log.

The serving tier's ``append`` used to be its weakest link: every
micro-batch rewrote every leaf file (O(full store) per append) and a
re-sent batch double-counted because nothing remembered having applied
it.  This module supplies the durability half of the fix — a per-store
**write-ahead log** of checksummed, batch-id-stamped delta records —
while :class:`~repro.serve.store.CubeStore` supplies the visibility
half (in-memory delta runs under the existing generation protocol) and
reuses its journalled two-phase leaf rewrite for compaction.

On-disk layout (a subdirectory of the store)::

    <store>/wal/
      0000000000000002.wal   # the batch that produced generation 2
      0000000000000003.wal   # ... generation 3, and so on

One file per appended batch, named by the generation its application
produced, written ``.tmp`` + fsync + ``os.replace`` (+ directory fsync)
so a record is either fully present or absent — never torn.  Record
layout (little-endian)::

    magic   "RWAL"                    4 bytes
    version u16                       currently 1
    mode    u16                       0 = packed keys, 1 = i64 columns
    generation u64
    header_len u32
    header  JSON                      batch_id, dims, row count, bit plan
    body    packed u64 keys + f64 measures   (mode 0)
            per-dim i64 columns + f64 measures (mode 1)
    sha256  32 raw bytes over everything above

Mode 0 reuses the 63-bit MSB-first :class:`~repro.core.columnar.KeyPacking`
codec — one ``u64`` per row, bit widths recorded in the header.  When
the batch's coordinates don't fit 63 bits the record falls back to mode
1 (one signed 64-bit column per dimension), so overflow keys round-trip
exactly instead of failing the append.  A record whose checksum,
magic or structure does not verify raises
:class:`~repro.errors.WalCorruptError` naming the file.

**Idempotence** lives one level up: every record carries its client
``batch_id``; the store remembers applied ids (WAL records plus a
bounded window in the manifest) and acknowledges a replayed id without
re-applying it.  **Truncation** happens at compaction: once a batch's
delta is folded into the leaf files (journalled, crash-safe), its
record is obsolete and :meth:`WriteAheadLog.truncate_through` removes
it.  Recovery is therefore a replay: records at or below the manifest
generation are pruned (a compaction whose truncation didn't finish),
records above it are re-applied in generation order.

The chaos hook mirrors ``repro.parallel.local``: setting
:data:`CHAOS_KILL_ENV` to a named kill point SIGKILLs the process at
exactly that instant, so the smoke harness can prove every crash
window recovers.
"""

import hashlib
import json
import os
import re
import signal
import struct
import uuid

from .. import obs
from ..core.columnar import KeyPacking, bits_for
from ..errors import PlanError, WalCorruptError

__all__ = [
    "WriteAheadLog", "WalRecord", "encode_record", "decode_record",
    "CHAOS_KILL_ENV", "stamped_batch_id", "trace_id_of",
]

#: Environment hook for crash testing: when set to one of the named
#: kill points (``wal.pre_publish``, ``wal.post_publish``,
#: ``compact.staged``, ``compact.journalled``), the process SIGKILLs
#: itself at that instant.
CHAOS_KILL_ENV = "REPRO_INGEST_CHAOS_KILL"

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1
WAL_SUFFIX = ".wal"

#: Record body encodings.
MODE_PACKED = 0   # one KeyPacking'd u64 per row
MODE_COLUMNS = 1  # one i64 per coordinate (keys wider than 63 bits)

_FIXED = struct.Struct("<4sHHQI")  # magic, version, mode, generation, header_len
_DIGEST_BYTES = 32

#: Largest coordinate a mode-1 column can hold (signed 64-bit).
MAX_COORD = (1 << 63) - 1


def chaos_kill(point):
    """SIGKILL the process if the chaos env names this kill point."""
    if os.environ.get(CHAOS_KILL_ENV) == point:
        os.kill(os.getpid(), signal.SIGKILL)


_STAMPED_RE = re.compile(r"^([0-9a-f]{32})-[0-9a-f]+$")


def stamped_batch_id(trace_id=None):
    """Mint a batch id, trace-stamped when a trace id is in hand.

    ``<32-hex trace id>-<16-hex random>`` when tracing is on, else a
    bare ``uuid4().hex``.  The batch id is an opaque idempotence string
    everywhere in the WAL/append path, so stamping changes no format —
    it just makes every re-delivery of the batch (router retry,
    anti-entropy repair) correlatable with the trace that first wrote
    it via :func:`trace_id_of`.
    """
    if trace_id:
        return "%s-%s" % (trace_id, uuid.uuid4().hex[:16])
    return uuid.uuid4().hex


def trace_id_of(batch_id):
    """The trace id a batch id was stamped with, or ``None``."""
    if not isinstance(batch_id, str):
        return None
    match = _STAMPED_RE.match(batch_id)
    return match.group(1) if match else None


class WalRecord:
    """One decoded WAL record: a batch of delta rows plus its identity."""

    __slots__ = ("generation", "batch_id", "dims", "rows", "measures")

    def __init__(self, generation, batch_id, dims, rows, measures):
        self.generation = int(generation)
        self.batch_id = batch_id
        self.dims = tuple(dims)
        self.rows = rows
        self.measures = measures

    def __repr__(self):
        return "WalRecord(generation=%d, batch_id=%r, rows=%d)" % (
            self.generation, self.batch_id, len(self.rows))


def _plan_packing(dims, rows):
    """A 63-bit packing over the batch's coordinates, or ``None``."""
    if not rows:
        return KeyPacking.plan([1] * len(dims))
    maxima = [0] * len(dims)
    for row in rows:
        for i, coord in enumerate(row):
            if coord > maxima[i]:
                maxima[i] = coord
    return KeyPacking.plan([m + 1 for m in maxima])


def encode_record(generation, batch_id, dims, rows, measures):
    """Serialize one batch as a checksummed WAL record (bytes)."""
    dims = tuple(dims)
    if len(rows) != len(measures):
        raise PlanError(
            "WAL record has %d rows but %d measures"
            % (len(rows), len(measures)))
    for row in rows:
        if len(row) != len(dims):
            raise PlanError(
                "WAL row %r has %d coordinates, dims %r has %d"
                % (row, len(row), dims, len(dims)))
        for coord in row:
            if not (0 <= coord <= MAX_COORD):
                raise PlanError(
                    "WAL coordinate %r does not fit a signed 64-bit "
                    "column" % (coord,))
    packing = _plan_packing(dims, rows)
    header = {"batch_id": str(batch_id), "dims": list(dims),
              "rows": len(rows)}
    if packing is not None:
        mode = MODE_PACKED
        header["bits"] = list(packing.bits)
        body = struct.pack(
            "<%dQ" % len(rows), *(packing.pack(row) for row in rows))
    else:
        mode = MODE_COLUMNS
        flat = [coord for row in rows for coord in row]
        body = struct.pack("<%dq" % len(flat), *flat)
    body += struct.pack("<%dd" % len(measures), *measures)
    header_bytes = json.dumps(header, sort_keys=True).encode()
    prefix = _FIXED.pack(WAL_MAGIC, WAL_VERSION, mode, int(generation),
                         len(header_bytes))
    payload = prefix + header_bytes + body
    return payload + hashlib.sha256(payload).digest()


def decode_record(data, path="<bytes>"):
    """Parse and verify one WAL record; raises :class:`WalCorruptError`."""
    if len(data) < _FIXED.size + _DIGEST_BYTES:
        raise WalCorruptError(path, "record truncated (%d bytes)" % len(data))
    payload, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
    if hashlib.sha256(payload).digest() != digest:
        raise WalCorruptError(path, "SHA-256 mismatch (torn or corrupted)")
    magic, version, mode, generation, header_len = _FIXED.unpack_from(payload)
    if magic != WAL_MAGIC:
        raise WalCorruptError(path, "bad magic %r" % (magic,))
    if version != WAL_VERSION:
        raise WalCorruptError(path, "unsupported WAL version %d" % version)
    try:
        header = json.loads(
            payload[_FIXED.size:_FIXED.size + header_len].decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorruptError(path, "unreadable header: %s" % exc) from None
    dims = tuple(header["dims"])
    n_rows = int(header["rows"])
    body = payload[_FIXED.size + header_len:]
    measure_bytes = 8 * n_rows
    if mode == MODE_PACKED:
        packing = KeyPacking(header["bits"])
        key_bytes = 8 * n_rows
        if len(body) != key_bytes + measure_bytes:
            raise WalCorruptError(
                path, "packed body is %d bytes, expected %d"
                % (len(body), key_bytes + measure_bytes))
        keys = struct.unpack("<%dQ" % n_rows, body[:key_bytes])
        positions = tuple(range(len(dims)))
        rows = [packing.unpack(key, positions) for key in keys]
    elif mode == MODE_COLUMNS:
        coord_bytes = 8 * n_rows * len(dims)
        if len(body) != coord_bytes + measure_bytes:
            raise WalCorruptError(
                path, "column body is %d bytes, expected %d"
                % (len(body), coord_bytes + measure_bytes))
        flat = struct.unpack("<%dq" % (n_rows * len(dims)), body[:coord_bytes])
        width = len(dims)
        rows = [tuple(flat[i * width:(i + 1) * width])
                for i in range(n_rows)]
        key_bytes = coord_bytes
    else:
        raise WalCorruptError(path, "unknown body mode %d" % mode)
    measures = list(struct.unpack("<%dd" % n_rows, body[key_bytes:]))
    return WalRecord(generation, header["batch_id"], dims, rows, measures)


class WriteAheadLog:
    """The per-store WAL: one durable record file per appended batch.

    Not itself thread-safe — the owning :class:`CubeStore` serializes
    access under its store lock.
    """

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, generation):
        return os.path.join(self.directory,
                            "%016d%s" % (int(generation), WAL_SUFFIX))

    def generations(self):
        """Generations with a published record, ascending."""
        out = []
        for name in os.listdir(self.directory):
            if name.endswith(WAL_SUFFIX):
                try:
                    out.append(int(name[:-len(WAL_SUFFIX)]))
                except ValueError:
                    continue
        out.sort()
        return out

    def __len__(self):
        return len(self.generations())

    def nbytes(self):
        total = 0
        for generation in self.generations():
            try:
                total += os.path.getsize(self.path_for(generation))
            except OSError:
                pass
        return total

    def sweep(self):
        """Remove ``.tmp`` debris from interrupted writers."""
        removed = []
        for name in sorted(os.listdir(self.directory)):
            if ".tmp." in name:
                os.unlink(os.path.join(self.directory, name))
                removed.append(name)
        if removed:
            obs.event("ingest.wal_swept", removed=len(removed))
        return removed

    def _fsync_dir(self):
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def append(self, generation, batch_id, dims, rows, measures):
        """Durably publish one batch record; returns its byte size.

        The record is fsync'd under a temp name, then atomically renamed
        into place and the directory entry fsync'd — after ``append``
        returns, the batch survives any crash.
        """
        data = encode_record(generation, batch_id, dims, rows, measures)
        path = self.path_for(generation)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        chaos_kill("wal.pre_publish")
        os.replace(tmp, path)
        self._fsync_dir()
        chaos_kill("wal.post_publish")
        return len(data)

    def read(self, generation):
        """Decode the record for one generation (verifying its checksum)."""
        path = self.path_for(generation)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise WalCorruptError(path, "record missing") from None
        return decode_record(data, path=path)

    def replay(self):
        """Yield every published record in generation order."""
        for generation in self.generations():
            yield self.read(generation)

    def truncate_through(self, generation):
        """Drop records at or below ``generation`` (they are compacted)."""
        removed = 0
        for g in self.generations():
            if g <= generation:
                os.unlink(self.path_for(g))
                removed += 1
        if removed:
            self._fsync_dir()
        return removed

    def __repr__(self):
        generations = self.generations()
        return "WriteAheadLog(%d record(s)%s)" % (
            len(generations),
            ", generations %d..%d" % (generations[0], generations[-1])
            if generations else "")

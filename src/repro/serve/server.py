"""A concurrent iceberg-query front-end over a :class:`CubeStore`.

:class:`CubeServer` admits queries through a thread pool and answers
each from the cheapest source available::

    cache hit  ->  stored leaf scan  ->  (optional) fresh compute

The cache is the LRU :class:`~repro.serve.cache.QueryCache`; the store
is a :class:`~repro.serve.store.CubeStore` (or any object with the same
``query``/``canonical`` surface, e.g. a ``LeafMaterialization``); the
compute fallback — for cuboids the store does not cover, such as
dimensions left out of the materialization — runs the real local
multiprocess backend from :mod:`repro.parallel.local` over the raw
relation.  Every answer is recorded in
:class:`~repro.serve.telemetry.ServerTelemetry`.

``serve_http`` exposes the same surface as a JSON HTTP endpoint (pure
stdlib ``http.server``) for point, roll-up and drill-down queries::

    GET /query?cuboid=A,B&minsup=2        # group-by (roll-up / drill-down
                                          #   by dropping / adding dims)
    GET /point?cuboid=A,B&cell=3,1        # one cell, O(log n) lookup
    GET /stats                            # cache + latency telemetry
    GET /cuboids                          # dims and stored leaves
"""

import json
import threading
from collections import namedtuple
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from ..core.thresholds import AndThreshold, CountThreshold, SumThreshold, as_threshold
from ..errors import PlanError, ReproError, SchemaError
from .cache import QueryCache
from .telemetry import ServerTelemetry

#: One served answer: the canonical cuboid, the threshold text, the
#: ``{cell: (count, sum)}`` dict, where it came from and how long it took.
QueryAnswer = namedtuple(
    "QueryAnswer", ("cuboid", "threshold", "cells", "source", "latency_s")
)


class CubeServer:
    """Thread-pooled query serving over a persistent cube store."""

    def __init__(self, store, relation=None, cache_size=256, max_workers=8,
                 fallback_workers=1):
        """``relation`` enables the compute fallback (and ``append``
        equivalence checks); without it, uncovered cuboids raise."""
        self.store = store
        self.relation = relation
        self.cache = QueryCache(cache_size)
        self.telemetry = ServerTelemetry()
        self.fallback_workers = fallback_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="cube-query"
        )
        self._write_lock = threading.Lock()
        self._endpoints = []
        self._closed = False

    # ------------------------------------------------------------------
    # query paths
    # ------------------------------------------------------------------
    def query(self, cuboid, minsup=1):
        """Answer one group-by, cache -> store -> compute.

        Returns a :class:`QueryAnswer`; ``.cells`` maps each qualifying
        cell to its ``(count, sum)`` pair.
        """
        start = perf_counter()
        threshold = as_threshold(minsup)
        try:
            canonical = self.store.canonical(cuboid)
        except SchemaError:
            if self.relation is None:
                raise
            canonical = self._relation_canonical(cuboid)
        generation = self.store.generation
        cells = self.cache.get(canonical, threshold, generation)
        if cells is not None:
            source = "cache"
        else:
            try:
                cells = self.store.query(canonical, minsup=threshold)
                source = "store"
            except (PlanError, SchemaError):
                if self.relation is None:
                    raise
                cells = self._compute(canonical, threshold)
                source = "compute"
            self.cache.put(canonical, threshold, generation, cells)
        latency = perf_counter() - start
        self.telemetry.record(canonical, threshold.describe(), source, latency)
        return QueryAnswer(canonical, threshold.describe(), cells, source, latency)

    def point(self, cuboid, cell, minsup=1):
        """One cell of one cuboid via the store's prefix offset index."""
        start = perf_counter()
        threshold = as_threshold(minsup)
        canonical = self.store.canonical(cuboid)
        agg = self.store.point(canonical, cell, minsup=threshold)
        cells = {tuple(cell): agg} if agg is not None else {}
        latency = perf_counter() - start
        self.telemetry.record(canonical, threshold.describe(), "store", latency)
        return QueryAnswer(canonical, threshold.describe(), cells, "store", latency)

    def submit(self, cuboid, minsup=1):
        """Admit a query to the thread pool; returns a Future."""
        if self._closed:
            raise PlanError("server is closed")
        return self._pool.submit(self.query, cuboid, minsup)

    def query_many(self, queries):
        """Answer ``(cuboid, minsup)`` pairs concurrently, in order."""
        futures = [self.submit(cuboid, minsup) for cuboid, minsup in queries]
        return [future.result() for future in futures]

    def _relation_canonical(self, cuboid):
        order = {name: i for i, name in enumerate(self.relation.dims)}
        try:
            return tuple(sorted(cuboid, key=order.__getitem__))
        except KeyError as exc:
            raise SchemaError(
                "unknown dimension %s in cuboid %r" % (exc, cuboid)
            ) from None

    def _compute(self, cuboid, threshold):
        """Fresh compute with the local multiprocess backend."""
        from ..parallel.local import multiprocess_iceberg_cube

        if not cuboid:
            count = len(self.relation)
            total = sum(self.relation.measures)
            if threshold.qualifies(count, total):
                return {(): (count, total)}
            return {}
        projected = self.relation.project(cuboid)
        result = multiprocess_iceberg_cube(
            projected, dims=cuboid, minsup=threshold, workers=self.fallback_workers
        )
        return dict(result.cuboid(cuboid))

    # ------------------------------------------------------------------
    # maintenance and stats
    # ------------------------------------------------------------------
    def append(self, relation):
        """Fold new rows into the store; cached answers go stale.

        Serialized against other appends; in-flight readers see either
        the old or the new leaf lists (both internally consistent), and
        the generation bump keeps the cache from mixing the two.
        """
        with self._write_lock:
            self.store.append(relation)
            if self.relation is not None:
                self.relation = self.relation.concat(relation)

    def stats(self):
        """Server-wide counters: store shape, cache and latency summary."""
        return {
            "dims": list(self.store.dims),
            "leaves": len(self.store.leaves),
            "generation": self.store.generation,
            "total_rows": self.store.total_rows,
            "cache": self.cache.stats(),
            "telemetry": self.telemetry.summary(),
        }

    # ------------------------------------------------------------------
    # HTTP endpoint
    # ------------------------------------------------------------------
    def serve_http(self, host="127.0.0.1", port=0):
        """Start the JSON endpoint on a background thread.

        ``port`` 0 picks a free port.  Returns an :class:`HttpEndpoint`
        whose ``.url`` is ready immediately; ``.close()`` stops it.
        """
        if self._closed:
            raise PlanError("server is closed")
        httpd = _CubeHTTPServer((host, port), _CubeRequestHandler)
        httpd.cube_server = self
        thread = threading.Thread(
            target=httpd.serve_forever, name="cube-http", daemon=True
        )
        thread.start()
        endpoint = HttpEndpoint(httpd, thread)
        self._endpoints.append(endpoint)
        return endpoint

    def close(self):
        """Stop the endpoint(s) and the worker pool."""
        if self._closed:
            return
        self._closed = True
        for endpoint in self._endpoints:
            endpoint.close()
        self._endpoints = []
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class HttpEndpoint:
    """A running HTTP endpoint: address, URL and shutdown."""

    def __init__(self, httpd, thread):
        self._httpd = httpd
        self._thread = thread
        self.host, self.port = httpd.server_address[:2]

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def join(self):
        """Block until the endpoint is shut down (CLI serve mode)."""
        self._thread.join()

    def close(self):
        self._httpd.shutdown()
        self._httpd.server_close()

    def __repr__(self):
        return "HttpEndpoint(%s)" % self.url


class _CubeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    cube_server = None


def _parse_threshold(params):
    conditions = []
    minsup = int(params.get("minsup", ["1"])[0])
    min_sum = params.get("min_sum")
    if minsup > 1 or min_sum is None:
        conditions.append(CountThreshold(max(1, minsup)))
    if min_sum is not None:
        conditions.append(SumThreshold(float(min_sum[0])))
    return conditions[0] if len(conditions) == 1 else AndThreshold(*conditions)


def _parse_cuboid(params):
    raw = params.get("cuboid", [""])[0]
    return tuple(filter(None, (name.strip() for name in raw.split(","))))


class _CubeRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - http.server naming
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        server = self.server.cube_server
        try:
            if split.path == "/query":
                answer = server.query(_parse_cuboid(params), _parse_threshold(params))
                self._reply(200, _answer_payload(answer))
            elif split.path == "/point":
                raw_cell = params.get("cell", [""])[0]
                cell = tuple(int(v) for v in raw_cell.split(",") if v.strip())
                answer = server.point(
                    _parse_cuboid(params), cell, _parse_threshold(params)
                )
                self._reply(200, _answer_payload(answer))
            elif split.path == "/stats":
                self._reply(200, server.stats())
            elif split.path == "/cuboids":
                self._reply(200, {
                    "dims": list(server.store.dims),
                    "leaves": [list(leaf) for leaf in server.store.leaves],
                    "generation": server.store.generation,
                })
            else:
                self._reply(404, {"error": "unknown path %r" % split.path})
        except (ReproError, ValueError) as exc:
            self._reply(400, {"error": str(exc)})

    def _reply(self, status, payload):
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server naming
        pass  # keep the serving path quiet; telemetry covers it


def _answer_payload(answer):
    return {
        "cuboid": list(answer.cuboid),
        "threshold": answer.threshold,
        "source": answer.source,
        "latency_ms": round(answer.latency_s * 1000.0, 3),
        "cells": [
            {"cell": list(cell), "count": count, "sum": value}
            for cell, (count, value) in sorted(answer.cells.items())
        ],
    }

"""A concurrent iceberg-query front-end over a :class:`CubeStore`.

:class:`CubeServer` admits queries through a thread pool and answers
each from the cheapest source available::

    cache hit  ->  stored leaf scan  ->  (optional) fresh compute

The cache is the LRU :class:`~repro.serve.cache.QueryCache`; the store
is a :class:`~repro.serve.store.CubeStore` (or any object with the same
``query``/``canonical`` surface, e.g. a ``LeafMaterialization``); the
compute fallback — for cuboids the store does not cover, such as
dimensions left out of the materialization — runs the real local
multiprocess backend from :mod:`repro.parallel.local` over the raw
relation.  Every answer is recorded in
:class:`~repro.serve.telemetry.ServerTelemetry`.

**Degradation ladder** (:mod:`repro.serve.resilience`): admission is
bounded — past ``max_pending`` in-flight queries, :meth:`submit` sheds
with a fast :class:`~repro.errors.ServerOverloadedError` (HTTP 429)
instead of queueing unboundedly.  Each query can carry a wall-clock
deadline (created at admission, so queue time counts) that turns into
:class:`~repro.errors.DeadlineExceededError` (HTTP 504).  The recompute
fallback sits behind a :class:`~repro.serve.resilience.CircuitBreaker`:
repeated failures trip it open so the server keeps answering cache and
store hits fast while the expensive path cools down, then half-open
probes restore it.  All of it is visible in :meth:`stats` and the
``/healthz`` endpoint.

``serve_http`` exposes the same surface as a JSON HTTP endpoint (pure
stdlib ``http.server``) for point, roll-up and drill-down queries::

    GET /query?cuboid=A,B&minsup=2        # group-by (roll-up / drill-down
                                          #   by dropping / adding dims)
    GET /query?cuboid=A&deadline_ms=50    # per-query deadline
    GET /point?cuboid=A,B&cell=3,1        # one cell, O(log n) lookup
    GET /cube?minsup=2                    # this store's whole cube share
    POST /append                          # fold a JSON row delta in
                                          #   (idempotent with batch_id
                                          #   on a WAL-enabled store)
    GET /wal?since=3                      # pending WAL batches newer
                                          #   than generation 3 (replica
                                          #   repair / anti-entropy)
    GET /stats                            # cache + latency + resilience
    GET /metrics                          # Prometheus text exposition
    GET /trace?since=7                    # span export newer than buffer
                                          #   seq 7 (router trace collector)
    GET /cuboids                          # dims and stored leaves
    GET /healthz                          # liveness + generation + shard
                                          #   + degradation state

Every data answer carries the store ``generation`` it was *verified*
against: the generation is read before and after the cells, and a
mismatch (an ``append`` swung mid-read) retries the read instead of
mislabeling it — the contract the sharded router
(:mod:`repro.serve.cluster`) builds generation-pinned fan-outs on.

``/metrics`` serves the server's :class:`~repro.obs.metrics
.MetricsRegistry` (request counters, latency histograms, degradation
events) in text exposition format; the counters are incremented by the
same telemetry calls that feed ``/stats``, so the two endpoints always
agree.  With :func:`repro.obs.install` active, each query additionally
records a ``serve.query`` span (cache→store→compute stages as events).

Errors are always structured JSON — ``400`` for malformed queries,
``404`` for unknown paths, ``413`` for oversized requests, ``429`` when
shedding, ``504`` past a deadline — never an HTML traceback.
"""

import json
import threading
from collections import namedtuple
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..core.thresholds import AndThreshold, CountThreshold, SumThreshold, as_threshold
from ..errors import (
    DeadlineExceededError,
    GenerationSkewError,
    PlanError,
    ReproError,
    SchemaError,
    ServerOverloadedError,
    StoreCorruptError,
)
from .cache import QueryCache
from .ingest import trace_id_of
from .resilience import AdmissionGate, CircuitBreaker, Deadline
from .telemetry import ServerTelemetry

#: One served answer: the canonical cuboid, the threshold text, the
#: ``{cell: (count, sum)}`` dict, where it came from, how long it took,
#: and the store generation the cells were verified against.
QueryAnswer = namedtuple(
    "QueryAnswer",
    ("cuboid", "threshold", "cells", "source", "latency_s", "generation"),
)

#: One store-shard's share of the full iceberg cube, computed at a
#: single verified generation (the ``/cube`` fan-out unit).
CubeAnswer = namedtuple(
    "CubeAnswer", ("cuboids", "threshold", "generation", "latency_s")
)

#: Largest request body the HTTP endpoint will accept (query GETs and
#: bounded ``POST /append`` deltas; anything bigger is abuse).
MAX_REQUEST_BYTES = 1 << 20

#: How many times a read retries when an ``append`` swings the store
#: generation mid-read before giving up with a 503.  Appends are rare
#: and bounded, so more than a couple of laps means something is wrong.
GENERATION_RETRY_LIMIT = 8


class CubeServer:
    """Thread-pooled query serving over a persistent cube store."""

    def __init__(self, store, relation=None, cache_size=256, max_workers=8,
                 fallback_workers=1, max_pending=None, default_deadline_s=None,
                 breaker=None, registry=None, fallback_backend="local"):
        """``relation`` enables the compute fallback (and ``append``
        equivalence checks); without it, uncovered cuboids raise.

        ``max_pending`` bounds admitted-but-unfinished queries (default
        ``16 * max_workers``, minimum 64) — the excess is shed.
        ``default_deadline_s`` applies to queries that don't carry their
        own deadline (``None``: no deadline).  ``breaker`` guards the
        recompute fallback (default: a
        :class:`~repro.serve.resilience.CircuitBreaker` tripping after 5
        consecutive failures, 5 s cool-down).  ``registry`` is the
        metrics registry behind ``GET /metrics`` (default: the installed
        :mod:`repro.obs` registry, else a private one).
        ``fallback_backend`` names the compute backend behind uncovered
        cuboids; it is validated against the backend registry's
        ``serve-fallback`` capability at construction, not first use.
        """
        from ..backends import resolve_backend

        self.store = store
        self.relation = relation
        self.cache = QueryCache(cache_size)
        self.telemetry = ServerTelemetry(registry=registry)
        self.registry = self.telemetry.registry
        self.fallback_workers = fallback_workers
        required = {"serve-fallback"}
        if getattr(store, "wal", None) is not None:
            # A WAL-enabled store serves idempotent streaming appends;
            # the fallback backend must be able to live behind that
            # (see the ``ingest`` capability in repro.backends).
            required.add("ingest")
        self.fallback_backend = resolve_backend(
            fallback_backend, require=required).name
        self.default_deadline_s = default_deadline_s
        if max_pending is None:
            max_pending = max(64, 16 * max_workers)
        self.gate = AdmissionGate(max_pending)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="cube-query"
        )
        self._compute_pool = None  # lazy: only deadline-bounded computes
        self._write_lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._endpoints = []
        self._closed = False

    # ------------------------------------------------------------------
    # query paths
    # ------------------------------------------------------------------
    def query(self, cuboid, minsup=1, deadline_s=None):
        """Answer one group-by, cache -> store -> compute.

        ``deadline_s`` (seconds, or a prebuilt
        :class:`~repro.serve.resilience.Deadline`) bounds the query's
        wall clock; past it, :class:`~repro.errors.DeadlineExceededError`
        is raised instead of continuing dead work.  Returns a
        :class:`QueryAnswer`; ``.cells`` maps each qualifying cell to
        its ``(count, sum)`` pair.
        """
        start = perf_counter()
        deadline = self._deadline(deadline_s)
        with obs.span("serve.query") as span:
            try:
                answer = self._query(cuboid, minsup, deadline, start)
            except DeadlineExceededError:
                self.telemetry.bump("deadline_exceeded")
                if span:
                    span.set(cuboid=list(cuboid), outcome="deadline_exceeded")
                raise
            if span:
                span.set(cuboid=list(answer.cuboid), source=answer.source,
                         cells=len(answer.cells))
            return answer

    def _query(self, cuboid, minsup, deadline, start):
        threshold = as_threshold(minsup)
        if deadline is not None:
            deadline.check("admission queue")
        try:
            canonical = self.store.canonical(cuboid)
        except SchemaError:
            if self.relation is None:
                raise
            canonical = self._relation_canonical(cuboid)
        cells, source, generation = self._answer_verified(
            canonical, threshold, deadline)
        latency = perf_counter() - start
        self.telemetry.record(canonical, threshold.describe(), source, latency)
        return QueryAnswer(canonical, threshold.describe(), cells, source,
                           latency, generation)

    def _answer_verified(self, canonical, threshold, deadline):
        """cache -> store -> compute, at one *verified* store generation.

        The generation is read before and re-read after computing the
        cells: a mismatch means an :meth:`append` swung the store
        mid-read, so the cells could belong to either side — instead of
        mislabeling (and possibly poisoning the cache or a
        generation-pinned router read), the lookup is retried at the new
        generation.  Appends are rare; the retry budget is
        :data:`GENERATION_RETRY_LIMIT`.
        """
        seen = set()
        for _attempt in range(GENERATION_RETRY_LIMIT):
            generation = self.store.generation
            seen.add(generation)
            cells = self.cache.get(canonical, threshold, generation)
            if cells is not None:
                return cells, "cache", generation
            if deadline is not None:
                deadline.check("store scan")
            obs.event("serve.cache_miss")
            try:
                cells = self.store.query(canonical, minsup=threshold)
                source = "store"
            except (PlanError, SchemaError):
                if self.relation is None:
                    raise
                obs.event("serve.compute_fallback")
                cells = self._compute_guarded(canonical, threshold, deadline)
                source = "compute"
            if self.store.generation == generation:
                # Verified: nothing swung while we read, so the cells
                # really are generation ``generation``'s.
                self.cache.put(canonical, threshold, generation, cells)
                if deadline is not None:
                    # The answer is cached for the next caller either
                    # way, but a reply past its budget is honestly late.
                    deadline.check("reply")
                return cells, source, generation
            self.telemetry.bump("generation_retry")
            obs.event("serve.generation_retry")
            if deadline is not None:
                deadline.check("generation retry")
        raise GenerationSkewError(seen, GENERATION_RETRY_LIMIT)

    def point(self, cuboid, cell, minsup=1):
        """One cell of one cuboid via the store's prefix offset index."""
        start = perf_counter()
        threshold = as_threshold(minsup)
        canonical = self.store.canonical(cuboid)
        seen = set()
        for _attempt in range(GENERATION_RETRY_LIMIT):
            generation = self.store.generation
            seen.add(generation)
            agg = self.store.point(canonical, cell, minsup=threshold)
            if self.store.generation == generation:
                break
            self.telemetry.bump("generation_retry")
        else:
            raise GenerationSkewError(seen, GENERATION_RETRY_LIMIT)
        cells = {tuple(cell): agg} if agg is not None else {}
        latency = perf_counter() - start
        self.telemetry.record(canonical, threshold.describe(), "store", latency)
        return QueryAnswer(canonical, threshold.describe(), cells, "store",
                           latency, generation)

    def iceberg(self, minsup=1, deadline_s=None):
        """This store's whole share of the iceberg cube, one generation.

        Answers every cuboid in ``store.owned_cuboids()`` (the full
        lattice for an unsharded store, this shard's partition
        otherwise) under a single verified generation — the unit a
        :class:`~repro.serve.cluster.CubeRouter` fans out and merges.
        Returns a :class:`CubeAnswer`.
        """
        start = perf_counter()
        threshold = as_threshold(minsup)
        deadline = self._deadline(deadline_s)
        with obs.span("serve.cube") as span:
            seen = set()
            for _attempt in range(GENERATION_RETRY_LIMIT):
                generation = self.store.generation
                seen.add(generation)
                cuboids = {
                    cuboid: self.store.query(cuboid, minsup=threshold)
                    for cuboid in self.store.owned_cuboids()
                }
                if self.store.generation == generation:
                    break
                self.telemetry.bump("generation_retry")
                obs.event("serve.generation_retry")
                if deadline is not None:
                    deadline.check("generation retry")
            else:
                raise GenerationSkewError(seen, GENERATION_RETRY_LIMIT)
            latency = perf_counter() - start
            self.telemetry.record(self.store.dims, threshold.describe(),
                                  "store", latency)
            if span:
                span.set(cuboids=len(cuboids), generation=generation)
        return CubeAnswer(cuboids, threshold.describe(), generation, latency)

    def submit(self, cuboid, minsup=1, deadline_s=None):
        """Admit a query to the thread pool; returns a Future.

        Admission is bounded: past ``max_pending`` unfinished queries
        this sheds immediately with
        :class:`~repro.errors.ServerOverloadedError` rather than growing
        the queue.  The deadline clock starts *now* — time spent queued
        counts, so an aged-out query fails fast when it reaches a
        worker.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        deadline = self._deadline(deadline_s)
        return self._admit(self.query, cuboid, minsup, deadline_s=deadline)

    def submit_point(self, cuboid, cell, minsup=1):
        """Admit a point lookup to the thread pool; returns a Future."""
        return self._admit(self.point, cuboid, cell, minsup)

    def submit_cube(self, minsup=1, deadline_s=None):
        """Admit a whole-share iceberg read (:meth:`iceberg`) to the pool."""
        return self._admit(self.iceberg, minsup, deadline_s=deadline_s)

    def query_many(self, queries):
        """Answer ``(cuboid, minsup)`` pairs concurrently, in order."""
        futures = [self.submit(cuboid, minsup) for cuboid, minsup in queries]
        return [future.result() for future in futures]

    def _admit(self, fn, *args, **kwargs):
        if self._closed:
            raise PlanError("server is closed")
        try:
            self.gate.acquire()
        except ServerOverloadedError:
            # Same counter feeds /stats events and /metrics, so the two
            # endpoints agree on shed counts by construction.
            self.telemetry.bump("shed")
            raise
        # Pool threads have their own (empty) span stacks; carry the
        # submitting thread's trace context across so serve.* spans
        # opened in the worker parent under the caller's span.
        ctx = obs.context()
        if ctx is not None:
            inner = fn

            def fn(*a, **k):
                with obs.activate(ctx):
                    return inner(*a, **k)
        try:
            future = self._pool.submit(fn, *args, **kwargs)
        except BaseException:
            self.gate.release()
            raise
        future.add_done_callback(lambda _future: self.gate.release())
        return future

    def _deadline(self, deadline_s):
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if deadline_s is None or isinstance(deadline_s, Deadline):
            return deadline_s
        return Deadline(deadline_s)

    def _relation_canonical(self, cuboid):
        order = {name: i for i, name in enumerate(self.relation.dims)}
        try:
            return tuple(sorted(cuboid, key=order.__getitem__))
        except KeyError as exc:
            raise SchemaError(
                "unknown dimension %s in cuboid %r" % (exc, cuboid)
            ) from None

    def _compute_guarded(self, cuboid, threshold, deadline=None):
        """The recompute fallback behind the circuit breaker.

        Breaker open: fail fast with
        :class:`~repro.errors.ServerOverloadedError` — cache and store
        hits keep flowing while the expensive path cools down.  With a
        deadline, the compute runs on a side thread so the caller can
        give up on time (the stray compute finishes in the background;
        the breaker keeps a pile-up from forming).
        """
        if not self.breaker.allow():
            self.telemetry.bump("breaker_rejected")
            raise ServerOverloadedError(
                "recompute circuit breaker is open (%d consecutive failures "
                "tripped it)" % (self.breaker.failure_threshold,)
            )
        try:
            if deadline is None:
                cells = self._compute(cuboid, threshold)
            else:
                deadline.check("compute fallback")
                future = self._compute_executor().submit(
                    self._compute, cuboid, threshold)
                try:
                    cells = future.result(timeout=max(0.0, deadline.remaining()))
                except FutureTimeoutError:
                    raise DeadlineExceededError(
                        deadline.seconds, elapsed_s=deadline.elapsed(),
                        stage="compute fallback",
                    ) from None
        except Exception:
            self.breaker.record_failure()
            if self.breaker.state == "open":
                self.telemetry.bump("breaker_tripped")
            raise
        self.breaker.record_success()
        return cells

    def _compute_executor(self):
        with self._close_lock:
            if self._compute_pool is None:
                self._compute_pool = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="cube-compute"
                )
            return self._compute_pool

    def _compute(self, cuboid, threshold):
        """Fresh compute with the configured fallback backend."""
        if not cuboid:
            count = len(self.relation)
            total = sum(self.relation.measures)
            if threshold.qualifies(count, total):
                return {(): (count, total)}
            return {}
        projected = self.relation.project(cuboid)
        if self.fallback_backend == "mapreduce":
            from ..mr import mapreduce_iceberg_cube

            result = mapreduce_iceberg_cube(
                projected, dims=cuboid, minsup=threshold,
                workers=self.fallback_workers,
            )
        else:
            from ..parallel.local import multiprocess_iceberg_cube

            result = multiprocess_iceberg_cube(
                projected, dims=cuboid, minsup=threshold,
                workers=self.fallback_workers,
            )
        return dict(result.cuboid(cuboid))

    # ------------------------------------------------------------------
    # maintenance and stats
    # ------------------------------------------------------------------
    def append(self, relation, batch_id=None):
        """Fold new rows into the store; cached answers go stale.

        Serialized against other appends; in-flight readers see either
        the old or the new leaf lists (both internally consistent), and
        the generation bump keeps the cache from mixing the two.

        ``batch_id`` (WAL-enabled stores only) makes the append
        idempotent: a batch the store already applied is acknowledged
        with ``applied=False`` instead of double-counting — the contract
        that lets clients and the router retry ``POST /append`` freely.
        Returns an :class:`~repro.serve.store.AppendResult`.
        """
        from .store import AppendResult

        with self._write_lock:
            if getattr(self.store, "wal", None) is not None:
                result = self.store.append(relation, batch_id=batch_id)
            else:
                if batch_id is not None:
                    raise PlanError(
                        "idempotent appends (batch_id=%r) need a WAL-enabled "
                        "store; serve with --wal" % (batch_id,))
                result = self.store.append(relation)
            applied = getattr(result, "applied", True)
            # Raise the cache watermark *after* the store swung: from
            # here on, any insert computed before the append is refused
            # (closing the read-compute-insert race).
            self.cache.advance(self.store.generation)
            if applied and self.relation is not None:
                self.relation = self.relation.concat(relation)
        return AppendResult(self.store.generation, applied,
                            getattr(result, "batch_id", batch_id))

    def wal_batches(self, since):
        """Pending WAL batches newer than generation ``since`` as JSON
        (the ``GET /wal`` body the router's anti-entropy sweep reads)."""
        reply = self.store.wal_batches_since(int(since))
        return {
            "generation": reply["generation"],
            "base_generation": reply["base_generation"],
            "truncated": reply["truncated"],
            "batches": [
                {
                    "generation": record.generation,
                    "batch_id": record.batch_id,
                    "trace_id": trace_id_of(record.batch_id),
                    "dims": list(record.dims),
                    "rows": [list(row) for row in record.rows],
                    "measures": list(record.measures),
                }
                for record in reply["batches"]
            ],
        }

    def trace_payload(self, since=0):
        """This process's span export (the ``GET /trace?since=`` body).

        ``since`` pages by buffer sequence number; the router collector
        passes the largest ``seq`` it has seen back on the next scrape.
        A server running without obs installed reports
        ``enabled: false`` so the collector can name the gap instead of
        silently missing a node.
        """
        active = obs.current()
        shard = getattr(self.store, "shard", None)
        node = "shard%d" % shard[0] if shard else "store"
        if active is None:
            return {"enabled": False, "node": node, "spans": []}
        return active.tracer.payload(since=since, node=node)

    def stats(self):
        """Server-wide counters: store shape, cache, latency, resilience."""
        return {
            "dims": list(self.store.dims),
            "leaves": len(self.store.leaves),
            "generation": self.store.generation,
            "total_rows": self.store.total_rows,
            "cache": self.cache.stats(),
            "telemetry": self.telemetry.summary(),
            "resilience": {
                "admission": self.gate.stats(),
                "breaker": self.breaker.stats(),
                "default_deadline_s": self.default_deadline_s,
            },
        }

    def health(self):
        """Liveness *and* serving state (the ``/healthz`` body).

        Beyond a bare liveness probe: the store generation (so a router
        can tell "alive" from "serving a stale generation"), the
        integrity level the store was opened at, shard placement, dims,
        and the degradation state (admission + breaker) — everything a
        health-checking router needs to route, pin and fail over.
        """
        gate = self.gate.stats()
        shard = getattr(self.store, "shard", None)
        wal_stats = getattr(self.store, "wal_stats", None)
        return {
            "status": "closed" if self._closed else "ok",
            "generation": self.store.generation,
            "verify": getattr(self.store, "verify_mode", "off"),
            "dims": list(self.store.dims),
            "shard": ({"index": shard[0], "of": shard[1]}
                      if shard is not None else None),
            "leaves": len(self.store.leaves),
            "pending": gate["pending"],
            "max_pending": gate["limit"],
            "shed": gate["shed"],
            "breaker": self.breaker.state,
            "wal": wal_stats() if wal_stats is not None else None,
        }

    # ------------------------------------------------------------------
    # HTTP endpoint
    # ------------------------------------------------------------------
    def serve_http(self, host="127.0.0.1", port=0):
        """Start the JSON endpoint on a background thread.

        ``port`` 0 picks a free port.  Returns an :class:`HttpEndpoint`
        whose ``.url`` is ready immediately; ``.close()`` stops it.
        """
        if self._closed:
            raise PlanError("server is closed")
        httpd = _CubeHTTPServer((host, port), _CubeRequestHandler)
        httpd.cube_server = self
        thread = threading.Thread(
            target=httpd.serve_forever, name="cube-http", daemon=True
        )
        thread.start()
        endpoint = HttpEndpoint(httpd, thread)
        self._endpoints.append(endpoint)
        return endpoint

    def close(self, cancel_pending=False):
        """Stop the endpoint(s) and the worker pool.  Idempotent.

        Deterministic teardown: after :meth:`close` returns, every
        future :meth:`submit` handed out is *done* — drained to a real
        answer by default, or cancelled (``CancelledError``) when
        ``cancel_pending`` is true and the query had not started.  New
        submissions raise :class:`~repro.errors.PlanError` the moment
        close begins.  A second (or concurrent) close is a no-op.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            endpoints, self._endpoints = self._endpoints, []
            compute_pool, self._compute_pool = self._compute_pool, None
        for endpoint in endpoints:
            endpoint.close()
        self._pool.shutdown(wait=True, cancel_futures=cancel_pending)
        if compute_pool is not None:
            compute_pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class HttpEndpoint:
    """A running HTTP endpoint: address, URL and shutdown."""

    def __init__(self, httpd, thread):
        self._httpd = httpd
        self._thread = thread
        self.host, self.port = httpd.server_address[:2]

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def join(self):
        """Block until the endpoint is shut down (CLI serve mode)."""
        self._thread.join()

    def close(self):
        self._httpd.shutdown()
        self._httpd.server_close()

    def __repr__(self):
        return "HttpEndpoint(%s)" % self.url


class _CubeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    cube_server = None


def _parse_threshold(params):
    conditions = []
    minsup = int(params.get("minsup", ["1"])[0])
    min_sum = params.get("min_sum")
    if minsup > 1 or min_sum is None:
        conditions.append(CountThreshold(max(1, minsup)))
    if min_sum is not None:
        conditions.append(SumThreshold(float(min_sum[0])))
    return conditions[0] if len(conditions) == 1 else AndThreshold(*conditions)


def _parse_cuboid(params):
    raw = params.get("cuboid", [""])[0]
    return tuple(filter(None, (name.strip() for name in raw.split(","))))


def _parse_deadline(params):
    raw = params.get("deadline_ms")
    if raw is None:
        return None
    deadline_ms = float(raw[0])
    if deadline_ms <= 0:
        raise ValueError("deadline_ms must be > 0, got %r" % (raw[0],))
    return deadline_ms / 1000.0


class _CubeRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - http.server naming
        self._guarded(self._route)

    def do_POST(self):  # noqa: N802 - http.server naming
        self._guarded(self._route_post)

    def _guarded(self, route):
        try:
            # Join the caller's distributed trace for the whole request:
            # any span opened while routing (serve.query, store.append,
            # …) parents under the router span named in the header.
            with obs.activate(obs.extract(self.headers.get("traceparent"))):
                route()
        except ServerOverloadedError as exc:
            self._reply(429, {"error": str(exc), "kind": "overloaded"})
        except DeadlineExceededError as exc:
            self._reply(504, {"error": str(exc), "kind": "deadline"})
        except GenerationSkewError as exc:
            # Honest retry signal: the store kept swinging generations
            # under the read; never a mislabeled or mixed answer.
            self._reply(503, {"error": str(exc), "kind": "generation_skew"})
        except StoreCorruptError as exc:
            self._reply(500, {"error": str(exc), "kind": "corrupt"})
        except (ReproError, ValueError) as exc:
            self._reply(400, {"error": str(exc), "kind": "bad_request"})
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client hung up mid-reply; nothing to answer
        except Exception as exc:  # pragma: no cover - last-ditch guard
            # Never a traceback on the wire: a structured 500 instead.
            self._reply(500, {"error": "internal error (%s)"
                              % exc.__class__.__name__, "kind": "internal"})

    def _route(self):
        if not self._bounded_request():
            return
        split = urlsplit(self.path)
        params = parse_qs(split.query)
        server = self.server.cube_server
        if split.path == "/query":
            # Through the bounded gate: overload sheds here with a fast
            # 429 instead of stacking requests on the HTTP threads.
            future = server.submit(
                _parse_cuboid(params), _parse_threshold(params),
                deadline_s=_parse_deadline(params),
            )
            self._reply(200, _answer_payload(future.result()))
        elif split.path == "/point":
            raw_cell = params.get("cell", [""])[0]
            cell = tuple(int(v) for v in raw_cell.split(",") if v.strip())
            future = server.submit_point(
                _parse_cuboid(params), cell, _parse_threshold(params)
            )
            self._reply(200, _answer_payload(future.result()))
        elif split.path == "/cube":
            future = server.submit_cube(
                _parse_threshold(params), deadline_s=_parse_deadline(params)
            )
            self._reply(200, _cube_payload(future.result()))
        elif split.path == "/stats":
            self._reply(200, server.stats())
        elif split.path == "/metrics":
            self._reply_text(200, server.registry.to_prometheus())
        elif split.path == "/cuboids":
            self._reply(200, {
                "dims": list(server.store.dims),
                "leaves": [list(leaf) for leaf in server.store.leaves],
                "generation": server.store.generation,
            })
        elif split.path == "/wal":
            since = int(params.get("since", ["0"])[0])
            self._reply(200, server.wal_batches(since))
        elif split.path == "/trace":
            since = int(params.get("since", ["0"])[0])
            self._reply(200, server.trace_payload(since))
        elif split.path == "/healthz":
            health = server.health()
            self._reply(200 if health["status"] == "ok" else 503, health)
        else:
            self._reply(404, {"error": "unknown path %r" % split.path,
                              "kind": "not_found"})

    def _route_post(self):
        if not self._bounded_request():
            return
        split = urlsplit(self.path)
        server = self.server.cube_server
        if split.path != "/append":
            self._reply(404, {"error": "unknown path %r" % split.path,
                              "kind": "not_found"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._reply(400, {"error": "POST /append needs a JSON body",
                              "kind": "bad_request"})
            return
        try:
            payload = json.loads(self.rfile.read(length))
            relation = _append_relation(payload, server.store.dims)
            batch_id = payload.get("batch_id")
            if batch_id is not None:
                batch_id = str(batch_id)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            self._reply(400, {"error": "malformed append body (%s)" % exc,
                              "kind": "bad_request"})
            return
        result = server.append(relation, batch_id=batch_id)
        self._reply(200, {"generation": result.generation,
                          "rows": len(relation),
                          "total_rows": server.store.total_rows,
                          "applied": result.applied,
                          "batch_id": result.batch_id})

    def _bounded_request(self):
        """Reject oversized or malformed requests before any work."""
        if len(self.path) > 8192:
            self._reply(400, {"error": "request path too long",
                              "kind": "bad_request"})
            return False
        length = self.headers.get("Content-Length")
        if length is not None:
            try:
                n_bytes = int(length)
            except ValueError:
                self._reply(400, {"error": "malformed Content-Length %r" % length,
                                  "kind": "bad_request"})
                return False
            if n_bytes > MAX_REQUEST_BYTES:
                self._reply(413, {"error": "request body of %d bytes exceeds "
                                  "the %d byte limit" % (n_bytes, MAX_REQUEST_BYTES),
                                  "kind": "too_large"})
                return False
        return True

    def _reply(self, status, payload):
        self._send(status, json.dumps(payload).encode(), "application/json")

    def _reply_text(self, status, text):
        self._send(status, text.encode(),
                   "text/plain; version=0.0.4; charset=utf-8")

    def _send(self, status, body, content_type):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server naming
        pass  # keep the serving path quiet; telemetry covers it

    def log_request(self, code="-", size="-"):
        pass


def _answer_payload(answer):
    return {
        "cuboid": list(answer.cuboid),
        "threshold": answer.threshold,
        "source": answer.source,
        "generation": answer.generation,
        "latency_ms": round(answer.latency_s * 1000.0, 3),
        "cells": [
            {"cell": list(cell), "count": count, "sum": value}
            for cell, (count, value) in sorted(answer.cells.items())
        ],
    }


def _cube_payload(answer):
    return {
        "threshold": answer.threshold,
        "generation": answer.generation,
        "latency_ms": round(answer.latency_s * 1000.0, 3),
        "cuboids": [
            {
                "cuboid": list(cuboid),
                "cells": [
                    {"cell": list(cell), "count": count, "sum": value}
                    for cell, (count, value) in sorted(cells.items())
                ],
            }
            for cuboid, cells in sorted(answer.cuboids.items())
        ],
    }


def _append_relation(payload, dims):
    """Decode a ``POST /append`` body into a :class:`Relation`."""
    from ..data.relation import Relation

    body_dims = tuple(payload.get("dims") or dims)
    rows = [tuple(int(v) for v in row) for row in payload["rows"]]
    measures = payload.get("measures")
    if measures is not None:
        measures = [float(m) for m in measures]
    return Relation(body_dims, rows, measures)

"""Per-query serving telemetry: latency and answer-source records.

Every query a :class:`~repro.serve.server.CubeServer` answers is
recorded as a :class:`QueryRecord` — which cuboid, which threshold,
where the answer came from (``cache``, ``store`` or ``compute``) and
how long it took.  :class:`ServerTelemetry` aggregates the records into
the numbers an operator actually watches: per-source counts, mean and
percentile latencies.

Everything here is thread-safe: the server's worker threads record
concurrently while a stats endpoint reads.
"""

import threading
from collections import namedtuple

#: One answered query.  ``latency_s`` is real wall-clock seconds;
#: ``source`` is "cache", "store" or "compute".
QueryRecord = namedtuple(
    "QueryRecord", ("cuboid", "threshold", "source", "latency_s")
)

SOURCES = ("cache", "store", "compute")


def percentile(sorted_values, p):
    """Nearest-rank percentile of an ascending list (``p`` in 0..100)."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * p // 100))  # ceil without floats
    return sorted_values[min(len(sorted_values), rank) - 1]


class ServerTelemetry:
    """Thread-safe accumulator of :class:`QueryRecord` entries."""

    def __init__(self, keep_records=10_000):
        self._lock = threading.Lock()
        self._records = []
        self._keep = int(keep_records)
        self._counts = {source: 0 for source in SOURCES}
        self._latency_totals = {source: 0.0 for source in SOURCES}
        self._events = {}

    def bump(self, event, n=1):
        """Count one degradation event (``shed``, ``deadline_exceeded``,
        ``breaker_open`` ...) — free-form names, surfaced in
        :meth:`summary` under ``events``."""
        with self._lock:
            self._events[event] = self._events.get(event, 0) + n

    def event_counts(self):
        """A snapshot of the degradation-event counters."""
        with self._lock:
            return dict(self._events)

    def record(self, cuboid, threshold, source, latency_s):
        """Record one answered query."""
        if source not in self._counts:
            raise ValueError("unknown answer source %r" % (source,))
        entry = QueryRecord(tuple(cuboid), threshold, source, float(latency_s))
        with self._lock:
            self._counts[source] += 1
            self._latency_totals[source] += entry.latency_s
            if len(self._records) < self._keep:
                self._records.append(entry)

    def __len__(self):
        with self._lock:
            return sum(self._counts.values())

    def records(self, source=None):
        """A snapshot of the retained records (optionally one source)."""
        with self._lock:
            records = list(self._records)
        if source is not None:
            records = [r for r in records if r.source == source]
        return records

    def latencies(self, source=None):
        """Retained latencies in ascending order (seconds)."""
        return sorted(r.latency_s for r in self.records(source))

    def summary(self):
        """Aggregate stats: counts per source, mean and p50/p95/p99.

        Latency figures are in milliseconds, rounded for display; counts
        cover every query ever recorded (percentiles cover the retained
        window).
        """
        with self._lock:
            counts = dict(self._counts)
            totals = dict(self._latency_totals)
        out = {"queries": sum(counts.values()), "by_source": {}}
        for source in SOURCES:
            ordered = self.latencies(source)
            count = counts[source]
            out["by_source"][source] = {
                "count": count,
                "mean_ms": round(1000.0 * totals[source] / count, 3) if count else 0.0,
                "p50_ms": round(1000.0 * percentile(ordered, 50), 3),
                "p95_ms": round(1000.0 * percentile(ordered, 95), 3),
                "p99_ms": round(1000.0 * percentile(ordered, 99), 3),
            }
        overall = self.latencies()
        out["p50_ms"] = round(1000.0 * percentile(overall, 50), 3)
        out["p95_ms"] = round(1000.0 * percentile(overall, 95), 3)
        out["p99_ms"] = round(1000.0 * percentile(overall, 99), 3)
        out["events"] = self.event_counts()
        return out

"""Per-query serving telemetry: latency and answer-source records.

Every query a :class:`~repro.serve.server.CubeServer` answers is
recorded as a :class:`QueryRecord` — which cuboid, which threshold,
where the answer came from (``cache``, ``store`` or ``compute``) and
how long it took.  :class:`ServerTelemetry` aggregates the records into
the numbers an operator actually watches: per-source counts, mean and
percentile latencies.

The counters live on a :class:`~repro.obs.metrics.MetricsRegistry` —
``repro_server_requests_total{source=...}`` and
``repro_server_events_total{event=...}`` are incremented by the same
calls that feed :meth:`summary`, so the JSON ``/stats`` endpoint and
the Prometheus ``/metrics`` exposition can never disagree.  Latencies
additionally feed ``repro_server_latency_seconds{source=...}``
histograms.

Everything here is thread-safe: the server's worker threads record
concurrently while a stats endpoint reads.
"""

import threading
from collections import namedtuple

from .. import obs
from ..obs.metrics import MetricsRegistry
from ..obs.stats import percentile

__all__ = ["QueryRecord", "ServerTelemetry", "SOURCES", "percentile"]

#: One answered query.  ``latency_s`` is real wall-clock seconds;
#: ``source`` is "cache", "store" or "compute".
QueryRecord = namedtuple(
    "QueryRecord", ("cuboid", "threshold", "source", "latency_s")
)

SOURCES = ("cache", "store", "compute")


class ServerTelemetry:
    """Thread-safe accumulator of :class:`QueryRecord` entries.

    ``registry`` is the metrics registry the counters live on; the
    default is the installed :mod:`repro.obs` registry when
    observability is on, else a private one (so ``/metrics`` always has
    something to serve).
    """

    def __init__(self, keep_records=10_000, registry=None):
        if registry is None:
            active = obs.current()
            registry = active.registry if active is not None \
                else MetricsRegistry()
        self.registry = registry
        self._lock = threading.Lock()
        self._records = []
        self._keep = int(keep_records)
        self._counts = {source: 0 for source in SOURCES}
        self._latency_totals = {source: 0.0 for source in SOURCES}
        self._requests = registry.counter(
            "repro_server_requests_total",
            "Queries answered, by source (cache/store/compute).",
            ("source",))
        self._events = registry.counter(
            "repro_server_events_total",
            "Degradation events (shed, deadline_exceeded, breaker_* ...).",
            ("event",))
        self._latency = registry.histogram(
            "repro_server_latency_seconds",
            "Query latency by answer source.",
            ("source",))

    def bump(self, event, n=1):
        """Count one degradation event (``shed``, ``deadline_exceeded``,
        ``breaker_open`` ...) — free-form names, surfaced in
        :meth:`summary` under ``events`` and on the registry as
        ``repro_server_events_total{event=...}``."""
        self._events.inc(n, event=event)

    def event_counts(self):
        """A snapshot of the degradation-event counters.

        Read straight off the metrics registry — this *is* the
        ``/metrics`` number.
        """
        return {key[0]: int(value)
                for key, value in self._events.series().items()}

    def record(self, cuboid, threshold, source, latency_s):
        """Record one answered query."""
        if source not in self._counts:
            raise ValueError("unknown answer source %r" % (source,))
        entry = QueryRecord(tuple(cuboid), threshold, source, float(latency_s))
        with self._lock:
            self._counts[source] += 1
            self._latency_totals[source] += entry.latency_s
            if len(self._records) < self._keep:
                self._records.append(entry)
        self._requests.inc(source=source)
        self._latency.observe(entry.latency_s, source=source)

    def __len__(self):
        with self._lock:
            return sum(self._counts.values())

    def records(self, source=None):
        """A snapshot of the retained records (optionally one source)."""
        with self._lock:
            records = list(self._records)
        if source is not None:
            records = [r for r in records if r.source == source]
        return records

    def latencies(self, source=None):
        """Retained latencies in ascending order (seconds)."""
        return sorted(r.latency_s for r in self.records(source))

    def summary(self):
        """Aggregate stats: counts per source, mean and p50/p95/p99.

        Latency figures are in milliseconds, rounded for display; counts
        cover every query ever recorded (percentiles cover the retained
        window).
        """
        with self._lock:
            counts = dict(self._counts)
            totals = dict(self._latency_totals)
        out = {"queries": sum(counts.values()), "by_source": {}}
        for source in SOURCES:
            ordered = self.latencies(source)
            count = counts[source]
            out["by_source"][source] = {
                "count": count,
                "mean_ms": round(1000.0 * totals[source] / count, 3) if count else 0.0,
                "p50_ms": round(1000.0 * percentile(ordered, 50), 3),
                "p95_ms": round(1000.0 * percentile(ordered, 95), 3),
                "p99_ms": round(1000.0 * percentile(ordered, 99), 3),
            }
        overall = self.latencies()
        out["p50_ms"] = round(1000.0 * percentile(overall, 50), 3)
        out["p95_ms"] = round(1000.0 * percentile(overall, 95), 3)
        out["p99_ms"] = round(1000.0 * percentile(overall, 99), 3)
        out["events"] = self.event_counts()
        return out

"""A thread-safe LRU cache for answered iceberg queries.

Keys are the canonical ``(cuboid, threshold)`` pair — the cuboid in
schema order and the threshold by its HAVING-clause text, so
``CountThreshold(2)`` built twice (or reached via the ``minsup=2``
shorthand) hits the same entry.

Entries carry the *generation* of the store they were computed from.
``CubeStore.append`` bumps its generation, so after an incremental
insert every cached answer is stale; a stale entry is dropped on access
(and counted) instead of being served.

The cache additionally keeps a monotonic *generation watermark*
(:meth:`QueryCache.advance`, bumped by the server on every append).
:meth:`QueryCache.put` refuses entries computed below the watermark —
closing the check-then-act race where a thread reads the store's
generation, computes an answer, and only then inserts it: if an append
lands in between, the stale insert would otherwise resurrect dead data
(and, had the generation been re-read late, could even file stale cells
under the *new* generation key).  Rejections are counted as
``stale_rejections``.

Counters (hits / misses / evictions / invalidations) feed the server's
stats endpoint; the acceptance workloads assert on the hit rate.
"""

import threading
from collections import OrderedDict

from ..core.thresholds import as_threshold
from ..errors import PlanError


def cache_key(cuboid, threshold):
    """The canonical cache key for a query.

    ``cuboid`` must already be canonical (schema order); thresholds are
    keyed by their describe() text, which states the condition fully.
    """
    return (tuple(cuboid), as_threshold(threshold).describe())


class QueryCache:
    """LRU map from :func:`cache_key` to a cached answer.

    ``capacity`` 0 disables caching (every lookup is a miss, nothing is
    stored) — the bench suite uses that to isolate store-scan latency.
    """

    def __init__(self, capacity=256):
        if capacity < 0:
            raise PlanError("cache capacity must be >= 0, got %r" % (capacity,))
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries = OrderedDict()  # key -> (generation, value)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_rejections = 0
        #: newest generation the cache has been told about; inserts
        #: below it are refused (see :meth:`advance`)
        self.watermark = 0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def get(self, cuboid, threshold, generation):
        """The cached answer, or ``None`` on a miss or stale entry.

        A lookup is also an observation: seeing generation ``g`` raises
        the watermark to ``g``, so even when appends bypass the server's
        explicit :meth:`advance` call (e.g. WAL delta-runs applied
        replica-side by anti-entropy repair), an in-flight insert
        computed before ``g`` can no longer resurrect dead data.
        """
        key = cache_key(cuboid, threshold)
        with self._lock:
            if generation > self.watermark:
                self.watermark = generation
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            entry_generation, value = entry
            if entry_generation != generation:
                # Written before the last insert: invalid, drop it.
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, cuboid, threshold, generation, value):
        """Cache an answer computed at ``generation``; evicts LRU-first.

        An insert below the generation watermark (an append committed
        while this answer was being computed) is refused and counted —
        never stored, so a pinned-generation reader can trust that a hit
        at generation ``g`` really was computed at ``g``.
        """
        if self.capacity == 0:
            return
        key = cache_key(cuboid, threshold)
        with self._lock:
            if generation < self.watermark:
                self.stale_rejections += 1
                return
            entry = self._entries.get(key)
            if entry is not None and entry[0] > generation:
                # A fresher answer is already cached; keep it.
                self.stale_rejections += 1
                return
            self._entries[key] = (generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def advance(self, generation):
        """Raise the generation watermark (monotonic; never lowers it).

        Called under the same ordering as the store's generation bump:
        once ``advance(g)`` returns, no answer computed before ``g`` can
        enter the cache, whatever generation its writer believed in.
        """
        with self._lock:
            if generation > self.watermark:
                self.watermark = generation

    def clear(self):
        """Drop every entry (counts them as invalidations)."""
        with self._lock:
            self.invalidations += len(self._entries)
            self._entries.clear()

    def stats(self):
        """Counters plus the derived hit rate."""
        with self._lock:
            hits, misses = self.hits, self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "stale_rejections": self.stale_rejections,
                "watermark": self.watermark,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            }

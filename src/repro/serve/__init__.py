"""Query serving: persistent cube store, cache, server and telemetry.

Section 5.1's observation — precomputed BUC-tree leaves answer any
iceberg query almost immediately — made into a serving subsystem:

* :class:`CubeStore` persists the leaves (sorted, prefix-indexed,
  checksummed) so a restart never repeats the precompute, and recovers
  from crashes mid-append (journal roll-forward) and damaged leaf files
  (salvage from the covering root leaf);
* :class:`QueryCache` keeps hot answers with LRU eviction and
  insert-generation invalidation;
* :class:`CubeServer` admits concurrent queries (thread pool + optional
  stdlib-HTTP JSON endpoint) and answers cache -> store -> compute,
  degrading gracefully under load: bounded admission
  (:class:`AdmissionGate`), per-query :class:`Deadline` budgets, and a
  :class:`CircuitBreaker` around the recompute fallback;
* :class:`ServerTelemetry` records per-query latency, source and
  degradation events;
* :class:`CubeRouter` (``repro.serve.cluster``) fronts N store shards
  x R replicas as one logical cube: stable covering-leaf placement
  (:class:`ShardMap`), per-replica circuit breakers with failover,
  generation-pinned fan-out, and honest 503s when a whole shard is
  down;
* :class:`WriteAheadLog` (``repro.serve.ingest``) makes appends durable
  and idempotent: checksummed batch-id-stamped delta records fsync'd
  before acknowledgement, replayed on restart, deduplicated on retry
  (:class:`AppendResult`), compacted in the background, and re-delivered
  to lagging replicas by the router's anti-entropy sweep (retries paced
  by :class:`RetryPolicy`).
"""

from .cache import QueryCache, cache_key
from .cluster import CubeRouter, ReplicaClient, ShardMap, stable_shard_hash
from .ingest import WalRecord, WriteAheadLog
from .resilience import AdmissionGate, CircuitBreaker, Deadline, RetryPolicy
from .server import CubeAnswer, CubeServer, HttpEndpoint, QueryAnswer
from .store import AppendResult, CubeStore
from .telemetry import QueryRecord, ServerTelemetry

__all__ = [
    "CubeStore",
    "AppendResult",
    "WriteAheadLog",
    "WalRecord",
    "RetryPolicy",
    "QueryCache",
    "cache_key",
    "CubeServer",
    "HttpEndpoint",
    "QueryAnswer",
    "CubeAnswer",
    "CubeRouter",
    "ShardMap",
    "ReplicaClient",
    "stable_shard_hash",
    "QueryRecord",
    "ServerTelemetry",
    "AdmissionGate",
    "CircuitBreaker",
    "Deadline",
]

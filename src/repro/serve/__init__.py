"""Query serving: persistent cube store, cache, server and telemetry.

Section 5.1's observation — precomputed BUC-tree leaves answer any
iceberg query almost immediately — made into a serving subsystem:

* :class:`CubeStore` persists the leaves (sorted, prefix-indexed) so a
  restart never repeats the precompute;
* :class:`QueryCache` keeps hot answers with LRU eviction and
  insert-generation invalidation;
* :class:`CubeServer` admits concurrent queries (thread pool + optional
  stdlib-HTTP JSON endpoint) and answers cache -> store -> compute;
* :class:`ServerTelemetry` records per-query latency and source.
"""

from .cache import QueryCache, cache_key
from .server import CubeServer, HttpEndpoint, QueryAnswer
from .store import CubeStore
from .telemetry import QueryRecord, ServerTelemetry

__all__ = [
    "CubeStore",
    "QueryCache",
    "cache_key",
    "CubeServer",
    "HttpEndpoint",
    "QueryAnswer",
    "QueryRecord",
    "ServerTelemetry",
]

"""Building blocks for graceful degradation under load.

Serving-grade OLAP needs explicit admission and latency control — a
query front-end that queues unboundedly turns one slow dependency into
a site-wide stall.  Three small, thread-safe primitives give
:class:`~repro.serve.server.CubeServer` its degradation ladder:

* :class:`Deadline` — one query's wall-clock budget, created at
  *admission* (queue time counts) and checked at every stage boundary;
* :class:`AdmissionGate` — a bounded in-flight counter that sheds the
  excess with a fast :class:`~repro.errors.ServerOverloadedError`
  instead of queueing it;
* :class:`CircuitBreaker` — wraps the expensive recompute fallback:
  repeated failures trip it open (fail fast, keep serving cache/store
  hits), a cool-down admits half-open probes, and a probe's success
  closes it again.

Every class takes an injectable monotonic ``clock`` so tests can drive
state transitions without sleeping.

With :func:`repro.obs.install` active, degradation turns visible on the
trace timeline: every shed admission and every circuit-breaker state
transition is recorded as an instant event.
"""

import random
import threading
import time

from .. import obs
from ..errors import DeadlineExceededError, PlanError, ServerOverloadedError

__all__ = ["Deadline", "AdmissionGate", "CircuitBreaker", "RetryPolicy"]


class RetryPolicy:
    """Capped full-jitter exponential backoff for idempotent retries.

    ``attempts`` is the *total* number of tries.  The delay before retry
    ``k`` (0-based) is drawn uniformly from ``[0, min(cap_s, base_s *
    2**k)]`` — AWS-style full jitter, which decorrelates a thundering
    herd of retriers better than truncated or equal jitter.  ``rng`` and
    ``sleep`` are injectable so tests can drive the schedule without
    wall-clock time.

    The policy itself is stateless and thread-safe; it only computes
    delays and sleeps.  Callers that need per-attempt bookkeeping (e.g.
    the router's circuit breakers) loop over ``range(attempts)`` and
    call :meth:`backoff_s` / :meth:`pause` themselves.
    """

    def __init__(self, attempts=3, base_s=0.05, cap_s=1.0,
                 rng=None, sleep=time.sleep):
        if attempts < 1:
            raise PlanError("retry attempts must be >= 1, got %r" % (attempts,))
        if base_s < 0 or cap_s < 0:
            raise PlanError(
                "retry backoff must be >= 0 seconds, got base=%r cap=%r"
                % (base_s, cap_s))
        self.attempts = int(attempts)
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def backoff_s(self, attempt):
        """The jittered delay before retrying after try ``attempt``."""
        ceiling = min(self.cap_s, self.base_s * (2 ** attempt))
        return self._rng.uniform(0.0, ceiling)

    def pause(self, attempt, deadline=None):
        """Sleep the backoff for ``attempt``; False if ``deadline`` can't
        absorb the delay (the caller should stop retrying)."""
        delay = self.backoff_s(attempt)
        if deadline is not None and deadline.remaining() <= delay:
            return False
        if delay > 0:
            self._sleep(delay)
        return True

    def __repr__(self):
        return "RetryPolicy(attempts=%d, base=%.3fs, cap=%.3fs)" % (
            self.attempts, self.base_s, self.cap_s)


class Deadline:
    """A wall-clock budget carried through one query's stages.

    Created when the query is *admitted*, so time spent waiting in the
    worker queue counts against the budget — a query that aged out while
    queued fails fast instead of doing dead work.
    """

    __slots__ = ("seconds", "_clock", "_start", "_expires")

    def __init__(self, seconds, clock=time.monotonic):
        seconds = float(seconds)
        if seconds <= 0:
            raise PlanError("deadline must be > 0 seconds, got %r" % (seconds,))
        self.seconds = seconds
        self._clock = clock
        self._start = clock()
        self._expires = self._start + seconds

    def elapsed(self):
        """Seconds since the deadline was created."""
        return self._clock() - self._start

    def remaining(self):
        """Seconds left in the budget (negative once blown)."""
        return self._expires - self._clock()

    def expired(self):
        return self.remaining() <= 0.0

    def check(self, stage=""):
        """Raise :class:`~repro.errors.DeadlineExceededError` if blown."""
        if self.expired():
            raise DeadlineExceededError(
                self.seconds, elapsed_s=self.elapsed(), stage=stage
            )

    def __repr__(self):
        return "Deadline(%.3fs, %.3fs remaining)" % (self.seconds, self.remaining())


class AdmissionGate:
    """Bounded admission: at most ``limit`` queries in flight or queued.

    ``acquire`` either admits (and counts) the caller or sheds it with a
    fast :class:`~repro.errors.ServerOverloadedError` — O(1), no
    waiting, so an overloaded server answers "try later" in
    microseconds instead of stacking work it will never finish.
    """

    def __init__(self, limit):
        if limit < 1:
            raise PlanError("admission limit must be >= 1, got %r" % (limit,))
        self.limit = int(limit)
        self._lock = threading.Lock()
        self.pending = 0
        self.admitted = 0
        self.shed = 0

    def acquire(self, reason="admission queue full"):
        with self._lock:
            if self.pending >= self.limit:
                self.shed += 1
                pending = self.pending
                obs.event("admission.shed", pending=pending,
                          limit=self.limit)
                raise ServerOverloadedError(
                    reason, pending=pending, limit=self.limit
                )
            self.pending += 1
            self.admitted += 1

    def release(self):
        with self._lock:
            if self.pending > 0:
                self.pending -= 1

    def stats(self):
        with self._lock:
            return {
                "limit": self.limit,
                "pending": self.pending,
                "admitted": self.admitted,
                "shed": self.shed,
            }

    def __repr__(self):
        return "AdmissionGate(%d/%d pending, %d shed)" % (
            self.pending, self.limit, self.shed)


class CircuitBreaker:
    """A three-state circuit breaker around an unreliable dependency.

    ``closed`` (normal): calls flow; ``failure_threshold`` *consecutive*
    failures trip it ``open``.  ``open``: :meth:`allow` answers False
    instantly for ``reset_after_s`` seconds.  Then ``half_open``: up to
    ``half_open_probes`` concurrent trial calls are admitted — a
    success closes the breaker, a failure re-opens it for another
    cool-down.

    Thread-safe; callers pair every allowed call with exactly one
    :meth:`record_success` or :meth:`record_failure`.
    """

    STATES = ("closed", "open", "half_open")

    def __init__(self, failure_threshold=5, reset_after_s=5.0,
                 half_open_probes=1, clock=time.monotonic):
        if failure_threshold < 1:
            raise PlanError(
                "failure_threshold must be >= 1, got %r" % (failure_threshold,))
        if reset_after_s <= 0:
            raise PlanError(
                "reset_after_s must be > 0, got %r" % (reset_after_s,))
        if half_open_probes < 1:
            raise PlanError(
                "half_open_probes must be >= 1, got %r" % (half_open_probes,))
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = None
        self._probes_in_flight = 0
        #: times the breaker transitioned closed/half_open -> open
        self.trips = 0
        #: calls fast-failed while open (or out of probe slots)
        self.rejections = 0

    # -- internal ------------------------------------------------------
    def _tick_locked(self):
        """open -> half_open once the cool-down has elapsed."""
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._state = "half_open"
            self._probes_in_flight = 0
            obs.event("breaker.half_open")

    def _trip_locked(self):
        self._state = "open"
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.trips += 1
        obs.event("breaker.open", trips=self.trips)

    # -- public --------------------------------------------------------
    @property
    def state(self):
        with self._lock:
            self._tick_locked()
            return self._state

    def allow(self):
        """Whether a call may proceed right now (counts probe slots)."""
        with self._lock:
            self._tick_locked()
            if self._state == "closed":
                return True
            if (self._state == "half_open"
                    and self._probes_in_flight < self.half_open_probes):
                self._probes_in_flight += 1
                return True
            self.rejections += 1
            return False

    def record_success(self):
        with self._lock:
            self._tick_locked()
            if self._state != "closed":
                obs.event("breaker.closed")
            self._state = "closed"
            self._consecutive_failures = 0
            self._probes_in_flight = 0

    def record_failure(self):
        with self._lock:
            self._tick_locked()
            if self._state == "half_open":
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip_locked()

    def stats(self):
        with self._lock:
            self._tick_locked()
            return {
                "state": self._state,
                "failure_threshold": self.failure_threshold,
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "rejections": self.rejections,
            }

    def __repr__(self):
        return "CircuitBreaker(%s, trips=%d)" % (self.state, self.trips)

"""A persistent store of materialized leaf cuboids.

:class:`~repro.online.materialize.LeafMaterialization` holds the BUC
processing tree's leaf cuboids in memory; a :class:`CubeStore` is the
same idea made durable.  ``build`` precomputes the leaves (minsup 1)
and writes one file per leaf under a directory; ``open`` attaches to a
previously built store, so a process restart pays a file read instead
of the full precompute.

On-disk layout (extending :mod:`repro.core.export`'s one-file-per-cuboid
manifest convention)::

    <directory>/
      manifest.json        # dims, generation, per-leaf index + checksums
      journal.json         # only mid-append: the pending generation
      A_D.csv, B_D.csv ... # one file per leaf, rows SORTED by coords

Each leaf file is written in cell-coordinate order and the manifest
carries, per leaf, a *prefix offset index*: for every distinct value of
the leaf's first dimension, the byte offset of its first row and the
number of rows in the run.  Because cells sharing a prefix are
contiguous in sorted order, a point query is an index lookup + seek +
contiguous scan of one run — never a full-leaf sort, and (for point
lookups on an unloaded leaf) never a full-leaf read.  Group-by queries
are one ordered pass over the presorted leaf, exactly like
``LeafMaterialization.query`` but without the sort step.

**Crash safety.**  The manifest records every leaf's byte size and
SHA-256, and :meth:`CubeStore.open` verifies them (``verify="quick"``
checks sizes, ``"full"`` re-hashes the content).  A truncated, corrupted
or missing leaf is *salvaged* — rebuilt by re-aggregating the root leaf,
which covers every other leaf at minsup 1 — or, when the root leaf
itself is damaged, :class:`~repro.errors.StoreCorruptError` names the
offending leaf.  Debris from interrupted writes (``*.tmp.*``,
``*.staged``, leaf files no manifest references) is swept on open.

``append`` mirrors ``LeafMaterialization.insert``: new rows are folded
into each leaf as a sorted-merge of a delta — no rescan of the original
input — and the rewrite is *journalled two-phase*: every new leaf file
is staged next to the live one, a journal naming the complete next
generation is written atomically (the commit point), and only then are
the live files swung over.  A crash at any instant leaves the store
openable at exactly the old generation (journal absent: staged files
are swept) or the new one (journal present: roll-forward completes the
swing) — never a mix.  The manifest ``generation`` is bumped so caches
above the store invalidate.
"""

import hashlib
import json
import os
import threading
from bisect import bisect_left
from collections import namedtuple

from .. import obs
from ..core.export import MANIFEST, atomic_write
from ..core.thresholds import as_threshold
from ..errors import PlanError, SchemaError, StoreCorruptError, WalCorruptError
from ..lattice.lattice import CubeLattice
from .ingest import WriteAheadLog, chaos_kill, stamped_batch_id

STORE_FORMAT = "repro-cube-store/1"
STORE_FORMAT_VERSION = 2

#: The append journal: present only between an append's commit point and
#: its completed leaf swing; holds the complete next-generation manifest.
JOURNAL = "journal.json"
JOURNAL_FORMAT = "repro-cube-store-journal/1"

#: Suffix of a staged (phase-1) leaf rewrite awaiting the journal commit.
STAGED_SUFFIX = ".staged"

#: Verification levels accepted by :meth:`CubeStore.open`.
VERIFY_LEVELS = ("off", "quick", "full")

#: Subdirectory holding the write-ahead log (see :mod:`repro.serve.ingest`).
WAL_DIR = "wal"

#: Auto-compaction threshold: pending WAL batches before a background
#: compaction folds them into the leaf files.  ``None`` disables.
DEFAULT_COMPACT_AFTER = 8

#: How many applied batch ids the manifest remembers after compaction.
#: Bounds the idempotence window: a duplicate arriving more than this
#: many batches late is no longer recognized.  Client retries happen
#: within seconds; 1024 batches is orders of magnitude more than that.
APPLIED_BATCH_WINDOW = 1024

#: What :meth:`CubeStore.append` returns.  ``applied`` is False when the
#: batch id was already applied (the duplicate is acknowledged at the
#: current generation, not re-applied).
AppendResult = namedtuple("AppendResult", ("generation", "applied", "batch_id"))


def _leaf_filename(cuboid):
    return "_".join(cuboid) + ".csv"


def _sha256_bytes(data):
    return hashlib.sha256(data).hexdigest()


def _sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _encode_leaf(cuboid, items):
    """Serialize sorted leaf items; returns (bytes, prefix offset index).

    The index maps each distinct first-coordinate value to
    ``[byte_offset, run_rows]`` — the contiguous run of rows starting
    with that value.
    """
    header = (",".join(list(cuboid) + ["count", "sum"]) + "\n").encode()
    chunks = [header]
    offset = len(header)
    index = {}
    for cell, (count, value) in items:
        line = ",".join(
            [str(coord) for coord in cell] + [str(count), repr(value)]
        ).encode() + b"\n"
        run = index.get(cell[0])
        if run is None:
            index[cell[0]] = [offset, 1]
        else:
            run[1] += 1
        offset += len(line)
        chunks.append(line)
    return b"".join(chunks), index


def _parse_rows(lines, width):
    """Decode leaf rows (bytes) into ``(cell, (count, sum))`` items."""
    items = []
    for raw in lines:
        parts = raw.decode().rstrip("\n").split(",")
        if len(parts) != width + 2:
            raise SchemaError(
                "leaf row %r has %d fields, expected %d"
                % (raw, len(parts), width + 2)
            )
        cell = tuple(int(p) for p in parts[:width])
        items.append((cell, (int(parts[width]), float(parts[width + 1]))))
    return items


def _merge_sorted(items, delta_items):
    """Merge two cell-sorted item lists, summing aggregates on equal cells."""
    merged = []
    i = j = 0
    while i < len(items) and j < len(delta_items):
        cell_a, agg_a = items[i]
        cell_b, agg_b = delta_items[j]
        if cell_a == cell_b:
            merged.append((cell_a, (agg_a[0] + agg_b[0], agg_a[1] + agg_b[1])))
            i += 1
            j += 1
        elif cell_a < cell_b:
            merged.append(items[i])
            i += 1
        else:
            merged.append(delta_items[j])
            j += 1
    merged.extend(items[i:])
    merged.extend(delta_items[j:])
    return merged


def _leaf_entry(cuboid, filename, data, index, n_cells):
    """One manifest entry (the internal, typed form)."""
    return {
        "file": filename,
        "cells": n_cells,
        "bytes": len(data),
        "sha256": _sha256_bytes(data),
        "index": {k: tuple(v) for k, v in index.items()},
    }


class LeafWriter:
    """Stream one leaf cuboid to disk without holding its cells in RAM.

    Byte-for-byte identical to :func:`_encode_leaf` — same header, same
    row formatting — but rows are appended one at a time, with the
    sha256, byte offsets and first-coordinate index maintained
    incrementally.  The file is written under an ``atomic_write``-style
    temp name; nothing is visible at the real path until
    :meth:`commit`, so a killed writer never leaves a partial leaf in
    the store.  Cells must arrive in sorted cell order (the caller's
    merge already guarantees it for the MapReduce reducers).
    """

    def __init__(self, directory, cuboid):
        self.cuboid = tuple(cuboid)
        self.filename = _leaf_filename(self.cuboid)
        self.path = os.path.join(str(directory), self.filename)
        self._tmp = "%s.tmp.%d" % (self.path, os.getpid())
        header = (",".join(list(self.cuboid) + ["count", "sum"]) + "\n").encode()
        self._handle = open(self._tmp, "wb")
        self._handle.write(header)
        self._digest = hashlib.sha256(header)
        self._offset = len(header)
        self.index = {}
        self.cells = 0

    def add(self, cell, count, value):
        line = ",".join(
            [str(coord) for coord in cell] + [str(count), repr(value)]
        ).encode() + b"\n"
        run = self.index.get(cell[0])
        if run is None:
            self.index[cell[0]] = [self._offset, 1]
        else:
            run[1] += 1
        self._handle.write(line)
        self._digest.update(line)
        self._offset += len(line)
        self.cells += 1

    def commit(self):
        """Publish the leaf atomically; returns its manifest entry."""
        self._handle.close()
        os.replace(self._tmp, self.path)
        return {
            "file": self.filename,
            "cells": self.cells,
            "bytes": self._offset,
            "sha256": self._digest.hexdigest(),
            "index": {k: tuple(v) for k, v in self.index.items()},
        }

    def abort(self):
        """Discard the temp file; the store is untouched."""
        try:
            self._handle.close()
        finally:
            try:
                os.remove(self._tmp)
            except OSError:
                pass


class CubeStore:
    """Persistent, incrementally maintainable leaf-cuboid store.

    A store may hold *all* leaves of its dimension set or just one
    shard's worth (see :mod:`repro.serve.cluster`): ``build`` with
    ``shard=(i, n)`` writes only the leaves the stable placement hash
    assigns to shard ``i`` of ``n``, and the manifest records the
    placement so a later open under a different sharding is refused
    instead of silently serving the wrong subset.  ``shard`` is ``None``
    for an unsharded store.
    """

    def __init__(self, directory, manifest):
        self.directory = str(directory)
        self._check_manifest(manifest)
        self.dims = tuple(manifest["dims"])
        self._lattice = CubeLattice(self.dims)
        shard = manifest.get("shard")
        self.shard = ((int(shard["index"]), int(shard["of"]))
                      if shard else None)
        #: integrity level this store was opened at ("off" for a fresh
        #: build); surfaced on the server's /healthz
        self.verify_mode = "off"
        self.generation = int(manifest["generation"])
        self.total_rows = int(manifest["total_rows"])
        self.total_measure = float(manifest["total_measure"])
        #: leaf cuboid -> manifest entry (file, cells, checksums, index)
        self._entries = {}
        self.leaves = []
        for entry in manifest["leaves"]:
            cuboid = tuple(entry["cuboid"])
            self.leaves.append(cuboid)
            self._entries[cuboid] = {
                "file": entry["file"],
                "cells": int(entry["cells"]),
                "bytes": int(entry["bytes"]),
                "sha256": entry["sha256"],
                "index": {int(k): tuple(v) for k, v in entry["index"].items()},
            }
        self._leaf_set = frozenset(self.leaves)
        self._items = {}  # leaf -> sorted base [(cell, (count, sum))], lazy
        self._lock = threading.RLock()
        self._closed = False
        #: the write-ahead log, or None when the store was opened without
        #: one (the legacy rewrite-per-append path)
        self.wal = None
        self.compact_after = None
        #: leaf -> sorted delta items accumulated from WAL'd appends but
        #: not yet compacted into the leaf files
        self._delta_items = {}
        self._merged = {}  # leaf -> base (+) delta, lazy merged view
        #: WAL'd batches awaiting compaction: [{generation, batch_id, rows}]
        self._pending = []
        #: batch_id -> generation for every applied batch still in the
        #: idempotence window (manifest window + pending WAL records)
        self._applied_batches = {
            str(batch): int(generation)
            for batch, generation in manifest.get("applied_batches", {}).items()
        }
        self._compacting = False
        self._compact_thread = None
        #: what `open` had to repair: rolled_forward / orphans_removed /
        #: salvaged (empty for a clean open or a fresh build)
        self.recovery = {
            "rolled_forward": False, "orphans_removed": [], "salvaged": [],
        }

    @staticmethod
    def _check_manifest(manifest):
        if manifest.get("format") != STORE_FORMAT:
            raise SchemaError(
                "unknown cube-store format %r" % (manifest.get("format"),)
            )
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise SchemaError(
                "cube-store format_version %r not supported (this library reads %d)"
                % (manifest.get("format_version"), STORE_FORMAT_VERSION)
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, relation, directory, dims=None, cluster_spec=None, cost_model=None,
              backend="simulated", shard=None, workers=None, use_shm=True):
        """Precompute the leaf cuboids of ``relation`` and persist them.

        Runs the same minsup-1 leaf precompute as
        :class:`~repro.online.materialize.LeafMaterialization`, then
        writes the store and returns it open.  ``backend="local"``
        aggregates the leaves over a columnar frame at machine speed
        instead of through the simulated cluster — same cells, much
        faster ingest (the CLI's default).  ``workers`` > 1 spreads the
        local-backend leaf aggregation over the supervised process pool
        with shared-memory transport (``use_shm=False`` keeps the pool
        but ships pickles).

        ``shard=(i, n)`` builds one shard of a sharded serving tier:
        only the leaves :class:`~repro.serve.cluster.ShardMap` assigns
        to shard ``i`` of ``n`` are computed and written, and the
        placement is recorded in the manifest.
        """
        from ..online.materialize import LeafMaterialization

        leaves = None
        if shard is not None:
            from .cluster import ShardMap

            index, of = int(shard[0]), int(shard[1])
            shard_map = ShardMap(tuple(dims) if dims else relation.dims, of)
            leaves = shard_map.leaves_for(index)
            shard = (index, of)
        materialization = LeafMaterialization(
            relation, dims=dims, cluster_spec=cluster_spec, cost_model=cost_model,
            backend=backend, leaves=leaves, workers=workers, use_shm=use_shm,
        )
        return cls.from_materialization(materialization, directory, shard=shard)

    @classmethod
    def from_materialization(cls, materialization, directory, shard=None):
        """Persist an in-memory :class:`LeafMaterialization` as a store."""
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        entries = {}
        loaded = {}
        for leaf in materialization.leaves:
            with obs.span("store.write_leaf") as span:
                items = list(materialization._items(leaf))
                filename = _leaf_filename(leaf)
                data, index = _encode_leaf(leaf, items)
                atomic_write(
                    os.path.join(directory, filename),
                    lambda handle, data=data: handle.write(data),
                    binary=True,
                )
                entries[leaf] = _leaf_entry(leaf, filename, data, index,
                                            len(items))
                loaded[leaf] = items
                if span:
                    span.set(leaf="/".join(leaf), cells=len(items),
                             bytes=len(data))
        manifest = cls._manifest_dict(
            materialization.dims, materialization.leaves, entries,
            generation=1,
            total_rows=materialization.total_rows,
            total_measure=materialization.total_measure,
            shard=shard,
        )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        store = cls(directory, manifest)
        store._items.update(loaded)
        return store

    @classmethod
    def assemble(cls, directory, dims, entries, total_rows, total_measure,
                 shard=None, generation=1):
        """Write a manifest over leaf files already committed on disk.

        The externalized build path: workers write leaves through
        :class:`LeafWriter` (each commit is atomic), then the driver
        calls ``assemble`` with the collected manifest entries (leaf
        cuboid -> entry dict as returned by :meth:`LeafWriter.commit`)
        to publish the store.  Leaves are ordered deterministically by
        cuboid so the manifest is byte-stable across re-executions.
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        leaves = sorted(entries)
        typed = {
            leaf: {
                "file": entry["file"],
                "cells": int(entry["cells"]),
                "bytes": int(entry["bytes"]),
                "sha256": entry["sha256"],
                "index": {int(k): tuple(v)
                          for k, v in entry["index"].items()},
            }
            for leaf, entry in entries.items()
        }
        manifest = cls._manifest_dict(
            dims, leaves, typed, generation=int(generation),
            total_rows=int(total_rows), total_measure=float(total_measure),
            shard=shard,
        )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory, verify="quick", salvage=True, wal=False,
             compact_after=DEFAULT_COMPACT_AFTER):
        """Attach to a store previously written by :meth:`build`.

        ``verify`` controls the integrity pass: ``"quick"`` (default)
        checks every leaf file's existence and byte size against the
        manifest, ``"full"`` re-hashes the content, ``"off"`` skips the
        pass (an interrupted append is still rolled forward or back —
        generation mixing is never allowed).  Damaged leaves are rebuilt
        from the root leaf when ``salvage`` is true; otherwise — or when
        the root leaf itself is damaged —
        :class:`~repro.errors.StoreCorruptError` names the leaf.  What
        was repaired is reported in the returned store's ``.recovery``.

        ``wal=True`` attaches the write-ahead log (see
        :mod:`repro.serve.ingest`): appends become durable idempotent
        delta records applied as in-memory delta runs, pending records
        are replayed on open, and a background compaction folds them
        into the leaf files every ``compact_after`` batches
        (``None`` = only on explicit :meth:`compact`).  Opening a store
        that has un-compacted WAL records *without* ``wal=True`` is
        refused — those batches are durable and must not be silently
        dropped.
        """
        if verify not in VERIFY_LEVELS:
            raise PlanError(
                "verify must be one of %s, got %r" % (", ".join(VERIFY_LEVELS), verify)
            )
        directory = str(directory)
        recovery = {
            "rolled_forward": False, "orphans_removed": [], "salvaged": [],
        }
        manifest = cls._recover_journal(directory, recovery)
        if manifest is None:
            manifest_path = os.path.join(directory, MANIFEST)
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
            except FileNotFoundError:
                raise SchemaError(
                    "no cube-store manifest at %r" % (manifest_path,)
                ) from None
        store = cls(directory, manifest)
        store.recovery = recovery
        store.verify_mode = verify
        if verify != "off":
            store._sweep_orphans(recovery)
            store._verify_leaves(verify, salvage, recovery)
        if wal:
            store._attach_wal(compact_after, recovery)
        else:
            store._refuse_pending_wal()
        if (recovery["rolled_forward"] or recovery["orphans_removed"]
                or recovery["salvaged"]):
            obs.event("store.recovered",
                      rolled_forward=recovery["rolled_forward"],
                      orphans_removed=len(recovery["orphans_removed"]),
                      salvaged=len(recovery["salvaged"]))
        return store

    def _refuse_pending_wal(self):
        """Refuse a WAL-less open that would strand durable batches."""
        wal_dir = os.path.join(self.directory, WAL_DIR)
        if not os.path.isdir(wal_dir):
            return
        pending = [g for g in WriteAheadLog(wal_dir).generations()
                   if g > self.generation]
        if pending:
            raise PlanError(
                "store %r has %d un-compacted WAL batch(es) (generations "
                "up to %d); open with wal=True to replay them — opening "
                "without the WAL would silently drop durable appends"
                % (self.directory, len(pending), max(pending)))

    def _attach_wal(self, compact_after, recovery):
        """Attach the WAL and replay records newer than the manifest."""
        self.wal = WriteAheadLog(os.path.join(self.directory, WAL_DIR))
        self.compact_after = (None if compact_after is None
                              else max(1, int(compact_after)))
        self.wal.sweep()
        # Records at or below the manifest generation were compacted in
        # (a crash between the manifest swing and WAL truncation).
        pruned = self.wal.truncate_through(self.generation)
        replayed = 0
        for record in self.wal.replay():
            if record.generation != self.generation + 1:
                raise WalCorruptError(
                    self.wal.path_for(record.generation),
                    "generation gap: record %d follows store generation %d"
                    % (record.generation, self.generation))
            if record.dims != self.dims:
                raise WalCorruptError(
                    self.wal.path_for(record.generation),
                    "dims %r do not match store dims %r"
                    % (record.dims, self.dims))
            self._apply_delta(record.rows, record.measures,
                              record.generation, record.batch_id)
            replayed += 1
        recovery["wal_replayed"] = replayed
        recovery["wal_pruned"] = pruned
        if replayed or pruned:
            obs.event("ingest.wal_recovered", replayed=replayed,
                      pruned=pruned, generation=self.generation)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def _recover_journal(cls, directory, recovery):
        """Complete (or discard) an append interrupted mid-commit.

        Returns the rolled-forward manifest, or ``None`` when there is
        no journal (the common case).  The journal is only ever written
        *after* every staged leaf file landed, so roll-forward can
        always finish the swing: each leaf either still has its staged
        file (swing it now) or was already swung (its content matches
        the journalled checksum).
        """
        journal_path = os.path.join(directory, JOURNAL)
        try:
            with open(journal_path) as handle:
                journal = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # The journal is written atomically, so a malformed one is
            # foreign debris; without a valid commit record, roll back.
            os.unlink(journal_path)
            return None
        if journal.get("format") != JOURNAL_FORMAT:
            raise SchemaError(
                "unknown cube-store journal format %r" % (journal.get("format"),)
            )
        manifest = journal["manifest"]
        cls._check_manifest(manifest)
        for entry in manifest["leaves"]:
            path = os.path.join(directory, entry["file"])
            staged = path + STAGED_SUFFIX
            if os.path.exists(staged):
                os.replace(staged, path)
            elif not (os.path.exists(path)
                      and os.path.getsize(path) == int(entry["bytes"])
                      and _sha256_file(path) == entry["sha256"]):
                raise StoreCorruptError(
                    tuple(entry["cuboid"]),
                    "journal roll-forward found neither the staged file "
                    "nor the committed content",
                    directory,
                )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        os.unlink(journal_path)
        recovery["rolled_forward"] = True
        return manifest

    def _sweep_orphans(self, recovery):
        """Remove write debris the manifest does not reference.

        Staged files and ``atomic_write`` temps are always an
        interrupted writer's leftovers (a journalled writer's staged
        files were consumed by roll-forward before this runs); ``.csv``
        files no manifest entry names are stale leaves from a superseded
        generation.  Anything else is left alone.
        """
        known = {MANIFEST, JOURNAL}
        known.update(entry["file"] for entry in self._entries.values())
        for name in sorted(os.listdir(self.directory)):
            if name in known:
                continue
            path = os.path.join(self.directory, name)
            if not os.path.isfile(path):
                continue
            if (".tmp." in name or name.endswith(STAGED_SUFFIX)
                    or name.endswith(".csv")):
                os.unlink(path)
                recovery["orphans_removed"].append(name)

    def _leaf_damage(self, leaf, level):
        """Why the leaf's file fails verification, or ``None`` if intact."""
        entry = self._entries[leaf]
        path = os.path.join(self.directory, entry["file"])
        try:
            size = os.path.getsize(path)
        except OSError:
            return "leaf file %r is missing" % (entry["file"],)
        if size != entry["bytes"]:
            return ("leaf file %r is %d bytes, manifest says %d "
                    "(truncated or overwritten)"
                    % (entry["file"], size, entry["bytes"]))
        if level == "full" and _sha256_file(path) != entry["sha256"]:
            return "leaf file %r fails its SHA-256 check (corrupted content)" % (
                entry["file"],)
        return None

    def _verify_leaves(self, level, salvage, recovery):
        damaged = []
        for leaf in self.leaves:
            reason = self._leaf_damage(leaf, level)
            if reason is not None:
                damaged.append((leaf, reason))
        if not damaged:
            return
        root = self.dims
        if root not in self._leaf_set:
            # A shard store without the root leaf has nothing local to
            # salvage from; its replicas are the redundancy instead.
            leaf, reason = damaged[0]
            raise StoreCorruptError(
                leaf, reason + "; this shard store does not hold the root "
                "leaf, so local salvage is impossible — rebuild the shard "
                "or restore from a sibling replica",
                self.directory,
            )
        root_damage = [item for item in damaged if item[0] == root]
        if root_damage:
            leaf, reason = root_damage[0]
            raise StoreCorruptError(
                leaf, reason + "; the root leaf covers every other leaf, so "
                "nothing remains to salvage from — rebuild the store",
                self.directory,
            )
        if not salvage:
            leaf, reason = damaged[0]
            raise StoreCorruptError(leaf, reason, self.directory)
        with self._lock:
            for leaf, _reason in damaged:
                with obs.span("store.salvage", leaf=list(leaf)):
                    self._rebuild_leaf(leaf)
                recovery["salvaged"].append(leaf)
            self._write_manifest()

    def _rebuild_leaf(self, leaf):
        """Regenerate one leaf by re-aggregating the (intact) root leaf.

        Leaves hold unfiltered minsup-1 cells and count/sum are
        distributive, so projecting the root leaf's cells onto the
        damaged leaf's dimensions reproduces its content exactly.
        """
        positions = [self.dims.index(d) for d in leaf]
        accumulated = {}
        for cell, (count, value) in self.leaf_items(self.dims):
            sub = tuple(cell[p] for p in positions)
            acc = accumulated.get(sub)
            if acc is None:
                accumulated[sub] = [count, value]
            else:
                acc[0] += count
                acc[1] += value
        items = sorted(
            (cell, (acc[0], acc[1])) for cell, acc in accumulated.items()
        )
        entry = self._entries[leaf]
        data, index = _encode_leaf(leaf, items)
        atomic_write(
            os.path.join(self.directory, entry["file"]),
            lambda handle, data=data: handle.write(data),
            binary=True,
        )
        self._entries[leaf] = _leaf_entry(
            leaf, entry["file"], data, index, len(items))
        self._items[leaf] = items

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Release in-memory leaf data; further queries raise.

        Pending WAL batches are *not* compacted — they are already
        durable and will replay on the next ``wal=True`` open.
        """
        thread = self._compact_thread
        if (thread is not None and thread.is_alive()
                and thread is not threading.current_thread()):
            thread.join()
        with self._lock:
            self._items.clear()
            self._merged.clear()
            self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise PlanError("cube store %r is closed" % (self.directory,))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def canonical(self, cuboid):
        """Normalize a cuboid to the store's schema order."""
        return self._lattice.canonical(cuboid)

    def covering_leaf(self, cuboid):
        """The stored leaf that has (canonical) ``cuboid`` as a prefix."""
        cuboid = self._lattice.canonical(cuboid)
        if cuboid and cuboid[-1] == self.dims[-1]:
            return cuboid
        candidate = cuboid + (self.dims[-1],)
        if candidate in self._leaf_set:
            return candidate
        if self.shard is not None:
            raise PlanError(
                "no stored leaf covers cuboid %r on shard %d/%d (placement "
                "assigns its covering leaf to another shard)"
                % (cuboid, self.shard[0], self.shard[1]))
        raise PlanError("no stored leaf covers cuboid %r" % (cuboid,))

    def total_cells(self):
        """Stored cells across all leaves (from the manifest, no I/O)."""
        return sum(entry["cells"] for entry in self._entries.values())

    def loaded_leaves(self):
        """Leaves currently resident in memory (the hot set)."""
        with self._lock:
            return sorted(self._items)

    def leaf_items(self, leaf):
        """The leaf's cells in sorted order, loading from disk on first use.

        With a WAL attached this is the *merged view*: the on-disk base
        run plus the in-memory delta run of every not-yet-compacted
        append, merged lazily and cached until the next append or
        compaction — so append cost never includes a leaf rewrite.
        """
        self._check_open()
        if self.wal is None or not self._delta_items:
            return self._base_items(leaf)
        with self._lock:
            delta = self._delta_items.get(leaf)
            if not delta:
                return self._base_items(leaf)
            merged = self._merged.get(leaf)
            if merged is None:
                merged = _merge_sorted(self._base_items(leaf), delta)
                self._merged[leaf] = merged
            return merged

    def _base_items(self, leaf):
        """The leaf's compacted on-disk cells (no delta run)."""
        items = self._items.get(leaf)
        if items is not None:
            return items
        with self._lock:
            items = self._items.get(leaf)
            if items is not None:
                return items
            entry = self._entries.get(leaf)
            if entry is None:
                raise PlanError("cuboid %r is not a stored leaf" % (leaf,))
            path = os.path.join(self.directory, entry["file"])
            with open(path, "rb") as handle:
                handle.readline()  # header
                items = _parse_rows(handle.readlines(), len(leaf))
            if len(items) != entry["cells"]:
                raise StoreCorruptError(
                    leaf,
                    "has %d cells on disk, manifest says %d"
                    % (len(items), entry["cells"]),
                    self.directory,
                )
            self._items[leaf] = items
            return items

    def query(self, cuboid, minsup=1):
        """Answer ``GROUP BY cuboid HAVING <threshold>`` from the store.

        One ordered pass over the covering leaf's presorted cells —
        identical semantics to ``LeafMaterialization.query``.  Returns
        ``{cell: (count, sum)}``.
        """
        self._check_open()
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        with obs.span("store.query", cuboid="/".join(cuboid)) as span:
            if not cuboid:
                if threshold.qualifies(self.total_rows, self.total_measure):
                    return {(): (self.total_rows, self.total_measure)}
                return {}
            leaf = self.covering_leaf(cuboid)
            items = self.leaf_items(leaf)
            width = len(cuboid)
            out = {}
            current = None
            count = 0
            total = 0.0
            for cell, (c, v) in items:
                prefix = cell[:width]
                if prefix != current:
                    if current is not None and threshold.qualifies(count,
                                                                   total):
                        out[current] = (count, total)
                    current = prefix
                    count = 0
                    total = 0.0
                count += c
                total += v
            if current is not None and threshold.qualifies(count, total):
                out[current] = (count, total)
            if span:
                span.set(cells=len(out))
            return out

    def owned_cuboids(self):
        """Every cuboid whose *covering leaf* this store holds.

        Each stored leaf ``L`` covers exactly two cuboids whose
        ``covering_leaf`` is ``L`` itself: ``L`` and ``L[:-1]`` (for the
        last-dimension-only leaf that second cuboid is ``()``).  Across
        the shards of a :class:`~repro.serve.cluster.ShardMap` these
        sets partition the whole lattice, so a fan-out to all shards
        covers every cuboid exactly once.
        """
        owned = []
        for leaf in self.leaves:
            owned.append(leaf)
            owned.append(leaf[:-1])
        return owned

    def iceberg(self, minsup=1):
        """The iceberg cube over every cuboid this store covers.

        Returns ``{cuboid: {cell: (count, sum)}}`` restricted to the
        cuboids in :meth:`owned_cuboids` — the store's share of the full
        cube.  An unsharded store answers the entire lattice.
        """
        return {cuboid: self.query(cuboid, minsup=minsup)
                for cuboid in self.owned_cuboids()}

    def point(self, cuboid, cell, minsup=1):
        """One cell of one cuboid: ``(count, sum)`` or ``None``.

        For a loaded leaf this is a binary search over the sorted items;
        for an unloaded leaf the prefix offset index turns it into a
        seek + one contiguous run scan, without reading the whole file.
        """
        self._check_open()
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        if not cuboid:
            agg = (self.total_rows, self.total_measure)
            return agg if threshold.qualifies(*agg) else None
        cell = tuple(cell)
        if len(cell) != len(cuboid):
            raise SchemaError(
                "cell %r has %d coordinates, cuboid %r has %d dimensions"
                % (cell, len(cell), cuboid, len(cuboid))
            )
        leaf = self.covering_leaf(cuboid)
        if self.wal is not None and self._delta_items.get(leaf):
            # Pending delta run: answer from the merged view so un-
            # compacted appends are visible to point lookups too.
            items = self.leaf_items(leaf)
            start = bisect_left(items, (cell,))
        else:
            items = self._items.get(leaf)
            if items is None:
                items = self._run_items(leaf, cell[0])
                start = 0
            else:
                start = bisect_left(items, (cell,))
        width = len(cell)
        count = 0
        total = 0.0
        for leaf_cell, (c, v) in items[start:]:
            prefix = leaf_cell[:width]
            if prefix < cell:
                continue
            if prefix != cell:
                break
            count += c
            total += v
        if count and threshold.qualifies(count, total):
            return (count, total)
        return None

    def _run_items(self, leaf, first_coord):
        """Read only the contiguous run of ``leaf`` rows starting with
        ``first_coord``, via the manifest's prefix offset index."""
        entry = self._entries[leaf]
        run = entry["index"].get(first_coord)
        if run is None:
            return []
        offset, n_rows = run
        path = os.path.join(self.directory, entry["file"])
        with self._lock:
            self._check_open()
            with open(path, "rb") as handle:
                handle.seek(offset)
                lines = [handle.readline() for _ in range(n_rows)]
        return _parse_rows(lines, len(leaf))

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def append(self, relation, batch_id=None):
        """Fold new rows into every stored leaf (delta maintenance).

        Mirrors ``LeafMaterialization.insert``: the leaves hold
        unfiltered minsup-1 cells, so appending is pure accumulation —
        each leaf gets a sorted delta merged into its sorted items — and
        ``generation`` is bumped so caches invalidate.  No rescan of
        previously stored data.  Returns an :class:`AppendResult`.

        **With a WAL attached** (``open(..., wal=True)``) the batch is
        first made durable as a checksummed WAL record, then applied as
        an in-memory delta run — O(batch x leaves), independent of the
        store's size — and leaf files are only rewritten by the
        (background) :meth:`compact`.  ``batch_id`` makes the append
        idempotent: a batch id the store already applied is acknowledged
        (``applied=False``) without being re-applied, so clients retry
        freely after a dropped ACK.

        **Without a WAL** the legacy journalled two-phase rewrite runs
        (see the module docstring): stage every new leaf file, commit a
        journal, swing the live files.  A crash at any point leaves the
        store openable at exactly the old or the new generation.
        ``batch_id`` is refused — there is no durable record to
        deduplicate against.
        """
        self._check_open()
        if self.wal is not None:
            return self._append_wal(relation, batch_id)
        if batch_id is not None:
            raise PlanError(
                "idempotent appends (batch_id=%r) require a WAL-enabled "
                "store; open with wal=True" % (batch_id,))
        with obs.span("store.append", rows=len(relation)) as span:
            self._append(relation)
            if span:
                span.set(generation=self.generation,
                         leaves=len(self.leaves))
        return AppendResult(self.generation, True, None)

    def _append_wal(self, relation, batch_id):
        """Durable WAL write + in-memory delta-run visibility."""
        positions = relation.dim_indices(self.dims)
        with self._lock:
            if batch_id is None:
                batch_id = stamped_batch_id(obs.trace_id())
            batch_id = str(batch_id)
            if batch_id in self._applied_batches:
                obs.event("ingest.duplicate", batch_id=batch_id,
                          generation=self._applied_batches[batch_id])
                self._ingest_counter("repro_ingest_duplicates_total")
                return AppendResult(self.generation, False, batch_id)
            keyed = [tuple(row[p] for p in positions)
                     for row in relation.rows]
            measures = list(relation.measures)
            generation = self.generation + 1
            with obs.span("ingest.wal", rows=len(keyed)) as span:
                nbytes = self.wal.append(generation, batch_id, self.dims,
                                         keyed, measures)
                self._apply_delta(keyed, measures, generation, batch_id)
                if span:
                    span.set(generation=generation, bytes=nbytes,
                             pending=len(self._pending))
            self._ingest_counter("repro_ingest_appends_total")
            self._maybe_compact_locked()
            return AppendResult(generation, True, batch_id)

    def _apply_delta(self, keyed_rows, measures, generation, batch_id):
        """Fold one batch (rows already in store-dims order) into the
        per-leaf delta runs and advance the generation."""
        for leaf in self.leaves:
            leaf_positions = [self.dims.index(d) for d in leaf]
            delta = {}
            for key, measure in zip(keyed_rows, measures):
                cell = tuple(key[p] for p in leaf_positions)
                acc = delta.get(cell)
                if acc is None:
                    delta[cell] = [1, measure]
                else:
                    acc[0] += 1
                    acc[1] += measure
            delta_items = sorted(
                (cell, (acc[0], acc[1])) for cell, acc in delta.items()
            )
            existing = self._delta_items.get(leaf)
            self._delta_items[leaf] = (
                _merge_sorted(existing, delta_items) if existing
                else delta_items)
            self._merged.pop(leaf, None)
        self._pending.append({"generation": generation,
                              "batch_id": batch_id,
                              "rows": len(keyed_rows)})
        self._applied_batches[batch_id] = generation
        self.total_rows += len(keyed_rows)
        self.total_measure += sum(measures)
        self.generation = generation

    @staticmethod
    def _ingest_counter(name, amount=1, **labels):
        active = obs.current()
        if active is not None:
            active.registry.counter(
                name, labelnames=tuple(sorted(labels))).inc(amount, **labels)

    def _maybe_compact_locked(self):
        """Kick a background compaction once enough batches are pending."""
        if (self.compact_after is None or self._compacting
                or len(self._pending) < self.compact_after):
            return
        self._compacting = True
        thread = threading.Thread(target=self._compact_background,
                                  name="cubestore-compact", daemon=True)
        self._compact_thread = thread
        thread.start()

    def _compact_background(self):
        try:
            self.compact()
        except Exception as exc:  # the WAL keeps every batch durable
            obs.event("ingest.compact_failed", error=str(exc))
        finally:
            self._compacting = False

    def compact(self):
        """Fold every pending WAL batch into the leaf files (crash-safe).

        Reuses the journalled two-phase rewrite: the merged view of each
        leaf is staged, a journal naming the complete state is committed
        atomically, the live files are swung, and only then is the WAL
        truncated.  A crash before the journal rolls *back* (the WAL
        replays the batches on reopen); after it rolls *forward* (the
        replayed-in manifest generation makes the WAL records stale and
        they are pruned).  Either way nothing is lost or double-counted.
        Returns the number of batches compacted.
        """
        self._check_open()
        if self.wal is None:
            raise PlanError(
                "store %r has no write-ahead log to compact; open with "
                "wal=True" % (self.directory,))
        with self._lock:
            if not self._pending:
                return 0
            n_batches = len(self._pending)
            with obs.span("ingest.compact", batches=n_batches) as span:
                staged = []  # (leaf, entry, data, merged)
                for leaf in self.leaves:
                    merged = self.leaf_items(leaf)
                    data, index = _encode_leaf(leaf, merged)
                    filename = self._entries[leaf]["file"]
                    staged.append((
                        leaf,
                        _leaf_entry(leaf, filename, data, index, len(merged)),
                        data,
                        merged,
                    ))
                for _leaf, entry, data, _merged in staged:
                    atomic_write(
                        os.path.join(self.directory,
                                     entry["file"] + STAGED_SUFFIX),
                        lambda handle, data=data: handle.write(data),
                        binary=True,
                    )
                chaos_kill("compact.staged")
                new_entries = {leaf: entry
                               for leaf, entry, _data, _merged in staged}
                window = dict(sorted(
                    self._applied_batches.items(), key=lambda kv: kv[1]
                )[-APPLIED_BATCH_WINDOW:])
                manifest = self._manifest_dict(
                    self.dims, self.leaves, new_entries,
                    generation=self.generation,
                    total_rows=self.total_rows,
                    total_measure=self.total_measure,
                    shard=self.shard,
                    applied_batches=window,
                )
                journal = {"format": JOURNAL_FORMAT,
                           "generation": manifest["generation"],
                           "manifest": manifest}
                atomic_write(
                    os.path.join(self.directory, JOURNAL),
                    lambda handle: json.dump(journal, handle, indent=2,
                                             sort_keys=True),
                )
                obs.event("store.journal_commit",
                          generation=manifest["generation"])
                chaos_kill("compact.journalled")
                for _leaf, entry, _data, _merged in staged:
                    path = os.path.join(self.directory, entry["file"])
                    os.replace(path + STAGED_SUFFIX, path)
                atomic_write(
                    os.path.join(self.directory, MANIFEST),
                    lambda handle: json.dump(manifest, handle, indent=2,
                                             sort_keys=True),
                )
                os.unlink(os.path.join(self.directory, JOURNAL))
                for leaf, entry, _data, merged in staged:
                    self._entries[leaf] = entry
                    self._items[leaf] = merged
                self._delta_items.clear()
                self._merged.clear()
                self._pending = []
                self._applied_batches = window
                self.wal.truncate_through(self.generation)
                if span:
                    span.set(generation=self.generation)
            self._ingest_counter("repro_ingest_compactions_total")
            obs.event("ingest.compacted", batches=n_batches,
                      generation=self.generation)
            return n_batches

    def wal_stats(self):
        """Ingestion state for health/stats endpoints (None without WAL)."""
        if self.wal is None:
            return None
        with self._lock:
            return {
                "enabled": True,
                "pending_batches": len(self._pending),
                "base_generation": self.generation - len(self._pending),
                "generation": self.generation,
                "wal_bytes": self.wal.nbytes(),
                "compact_after": self.compact_after,
                "applied_window": len(self._applied_batches),
            }

    def wal_batches_since(self, since):
        """Pending batches newer than generation ``since``, for replica
        repair (the router's anti-entropy sweep re-delivers them).

        Returns ``{generation, base_generation, truncated, batches}``;
        ``truncated`` is True when ``since`` predates the oldest WAL
        record (the gap was compacted away and cannot be re-delivered).
        """
        self._check_open()
        if self.wal is None:
            raise PlanError(
                "store %r has no write-ahead log" % (self.directory,))
        with self._lock:
            base = self.generation - len(self._pending)
            batches = [record for record in self.wal.replay()
                       if record.generation > since]
            return {
                "generation": self.generation,
                "base_generation": base,
                "truncated": since < base,
                "batches": batches,
            }

    def _append(self, relation):
        positions = relation.dim_indices(self.dims)
        keyed = [
            (tuple(row[p] for p in positions), measure)
            for row, measure in zip(relation.rows, relation.measures)
        ]
        with self._lock:
            staged = []  # (leaf, entry, data, merged)
            for leaf in self.leaves:
                delta = {}
                leaf_positions = [self.dims.index(d) for d in leaf]
                for key, measure in keyed:
                    cell = tuple(key[p] for p in leaf_positions)
                    acc = delta.get(cell)
                    if acc is None:
                        delta[cell] = [1, measure]
                    else:
                        acc[0] += 1
                        acc[1] += measure
                delta_items = sorted(
                    (cell, (acc[0], acc[1])) for cell, acc in delta.items()
                )
                merged = _merge_sorted(self.leaf_items(leaf), delta_items)
                data, index = _encode_leaf(leaf, merged)
                filename = self._entries[leaf]["file"]
                staged.append((
                    leaf,
                    _leaf_entry(leaf, filename, data, index, len(merged)),
                    data,
                    merged,
                ))
            # Phase 1: stage every rewritten leaf next to the live one.
            for _leaf, entry, data, _merged in staged:
                atomic_write(
                    os.path.join(self.directory, entry["file"] + STAGED_SUFFIX),
                    lambda handle, data=data: handle.write(data),
                    binary=True,
                )
            new_entries = {leaf: entry for leaf, entry, _data, _merged in staged}
            manifest = self._manifest_dict(
                self.dims, self.leaves, new_entries,
                generation=self.generation + 1,
                total_rows=self.total_rows + len(relation),
                total_measure=self.total_measure + sum(relation.measures),
                shard=self.shard,
                applied_batches=self._applied_batches,
            )
            # Commit point: after this journal lands, the new generation
            # is durable; before it, the staged files are mere debris.
            journal = {"format": JOURNAL_FORMAT,
                       "generation": manifest["generation"],
                       "manifest": manifest}
            atomic_write(
                os.path.join(self.directory, JOURNAL),
                lambda handle: json.dump(journal, handle, indent=2,
                                         sort_keys=True),
            )
            obs.event("store.journal_commit",
                      generation=manifest["generation"])
            # Phase 2: swing the leaves, rewrite the manifest, drop the
            # journal.  Any crash in here is rolled forward on open.
            for _leaf, entry, _data, _merged in staged:
                path = os.path.join(self.directory, entry["file"])
                os.replace(path + STAGED_SUFFIX, path)
            atomic_write(
                os.path.join(self.directory, MANIFEST),
                lambda handle: json.dump(manifest, handle, indent=2,
                                         sort_keys=True),
            )
            os.unlink(os.path.join(self.directory, JOURNAL))
            for leaf, entry, _data, merged in staged:
                self._entries[leaf] = entry
                self._items[leaf] = merged
            self.total_rows = manifest["total_rows"]
            self.total_measure = manifest["total_measure"]
            self.generation = manifest["generation"]

    @staticmethod
    def _manifest_dict(dims, leaves, entries, generation, total_rows,
                       total_measure, shard=None, applied_batches=None):
        return {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "dims": list(dims),
            "generation": generation,
            "total_rows": total_rows,
            "total_measure": total_measure,
            "applied_batches": dict(applied_batches or {}),
            "shard": ({"index": shard[0], "of": shard[1]}
                      if shard is not None else None),
            "leaves": [
                {
                    "cuboid": list(leaf),
                    "file": entries[leaf]["file"],
                    "cells": entries[leaf]["cells"],
                    "bytes": entries[leaf]["bytes"],
                    "sha256": entries[leaf]["sha256"],
                    "index": {
                        str(k): list(v)
                        for k, v in entries[leaf]["index"].items()
                    },
                }
                for leaf in leaves
            ],
        }

    def _write_manifest(self):
        manifest = self._manifest_dict(
            self.dims, self.leaves, self._entries,
            generation=self.generation,
            total_rows=self.total_rows,
            total_measure=self.total_measure,
            shard=self.shard,
            applied_batches=self._applied_batches,
        )
        atomic_write(
            os.path.join(self.directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )

    def __repr__(self):
        shard = (", shard=%d/%d" % self.shard) if self.shard else ""
        return "CubeStore(dims=%r, leaves=%d, rows=%d, generation=%d%s)" % (
            self.dims,
            len(self.leaves),
            self.total_rows,
            self.generation,
            shard,
        )

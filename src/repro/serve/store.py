"""A persistent store of materialized leaf cuboids.

:class:`~repro.online.materialize.LeafMaterialization` holds the BUC
processing tree's leaf cuboids in memory; a :class:`CubeStore` is the
same idea made durable.  ``build`` precomputes the leaves (minsup 1)
and writes one file per leaf under a directory; ``open`` attaches to a
previously built store, so a process restart pays a file read instead
of the full precompute.

On-disk layout (extending :mod:`repro.core.export`'s one-file-per-cuboid
manifest convention)::

    <directory>/
      manifest.json        # dims, generation, per-leaf index + checksums
      journal.json         # only mid-append: the pending generation
      A_D.csv, B_D.csv ... # one file per leaf, rows SORTED by coords

Each leaf file is written in cell-coordinate order and the manifest
carries, per leaf, a *prefix offset index*: for every distinct value of
the leaf's first dimension, the byte offset of its first row and the
number of rows in the run.  Because cells sharing a prefix are
contiguous in sorted order, a point query is an index lookup + seek +
contiguous scan of one run — never a full-leaf sort, and (for point
lookups on an unloaded leaf) never a full-leaf read.  Group-by queries
are one ordered pass over the presorted leaf, exactly like
``LeafMaterialization.query`` but without the sort step.

**Crash safety.**  The manifest records every leaf's byte size and
SHA-256, and :meth:`CubeStore.open` verifies them (``verify="quick"``
checks sizes, ``"full"`` re-hashes the content).  A truncated, corrupted
or missing leaf is *salvaged* — rebuilt by re-aggregating the root leaf,
which covers every other leaf at minsup 1 — or, when the root leaf
itself is damaged, :class:`~repro.errors.StoreCorruptError` names the
offending leaf.  Debris from interrupted writes (``*.tmp.*``,
``*.staged``, leaf files no manifest references) is swept on open.

``append`` mirrors ``LeafMaterialization.insert``: new rows are folded
into each leaf as a sorted-merge of a delta — no rescan of the original
input — and the rewrite is *journalled two-phase*: every new leaf file
is staged next to the live one, a journal naming the complete next
generation is written atomically (the commit point), and only then are
the live files swung over.  A crash at any instant leaves the store
openable at exactly the old generation (journal absent: staged files
are swept) or the new one (journal present: roll-forward completes the
swing) — never a mix.  The manifest ``generation`` is bumped so caches
above the store invalidate.
"""

import hashlib
import json
import os
import threading
from bisect import bisect_left

from .. import obs
from ..core.export import MANIFEST, atomic_write
from ..core.thresholds import as_threshold
from ..errors import PlanError, SchemaError, StoreCorruptError
from ..lattice.lattice import CubeLattice

STORE_FORMAT = "repro-cube-store/1"
STORE_FORMAT_VERSION = 2

#: The append journal: present only between an append's commit point and
#: its completed leaf swing; holds the complete next-generation manifest.
JOURNAL = "journal.json"
JOURNAL_FORMAT = "repro-cube-store-journal/1"

#: Suffix of a staged (phase-1) leaf rewrite awaiting the journal commit.
STAGED_SUFFIX = ".staged"

#: Verification levels accepted by :meth:`CubeStore.open`.
VERIFY_LEVELS = ("off", "quick", "full")


def _leaf_filename(cuboid):
    return "_".join(cuboid) + ".csv"


def _sha256_bytes(data):
    return hashlib.sha256(data).hexdigest()


def _sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _encode_leaf(cuboid, items):
    """Serialize sorted leaf items; returns (bytes, prefix offset index).

    The index maps each distinct first-coordinate value to
    ``[byte_offset, run_rows]`` — the contiguous run of rows starting
    with that value.
    """
    header = (",".join(list(cuboid) + ["count", "sum"]) + "\n").encode()
    chunks = [header]
    offset = len(header)
    index = {}
    for cell, (count, value) in items:
        line = ",".join(
            [str(coord) for coord in cell] + [str(count), repr(value)]
        ).encode() + b"\n"
        run = index.get(cell[0])
        if run is None:
            index[cell[0]] = [offset, 1]
        else:
            run[1] += 1
        offset += len(line)
        chunks.append(line)
    return b"".join(chunks), index


def _parse_rows(lines, width):
    """Decode leaf rows (bytes) into ``(cell, (count, sum))`` items."""
    items = []
    for raw in lines:
        parts = raw.decode().rstrip("\n").split(",")
        if len(parts) != width + 2:
            raise SchemaError(
                "leaf row %r has %d fields, expected %d"
                % (raw, len(parts), width + 2)
            )
        cell = tuple(int(p) for p in parts[:width])
        items.append((cell, (int(parts[width]), float(parts[width + 1]))))
    return items


def _merge_sorted(items, delta_items):
    """Merge two cell-sorted item lists, summing aggregates on equal cells."""
    merged = []
    i = j = 0
    while i < len(items) and j < len(delta_items):
        cell_a, agg_a = items[i]
        cell_b, agg_b = delta_items[j]
        if cell_a == cell_b:
            merged.append((cell_a, (agg_a[0] + agg_b[0], agg_a[1] + agg_b[1])))
            i += 1
            j += 1
        elif cell_a < cell_b:
            merged.append(items[i])
            i += 1
        else:
            merged.append(delta_items[j])
            j += 1
    merged.extend(items[i:])
    merged.extend(delta_items[j:])
    return merged


def _leaf_entry(cuboid, filename, data, index, n_cells):
    """One manifest entry (the internal, typed form)."""
    return {
        "file": filename,
        "cells": n_cells,
        "bytes": len(data),
        "sha256": _sha256_bytes(data),
        "index": {k: tuple(v) for k, v in index.items()},
    }


class LeafWriter:
    """Stream one leaf cuboid to disk without holding its cells in RAM.

    Byte-for-byte identical to :func:`_encode_leaf` — same header, same
    row formatting — but rows are appended one at a time, with the
    sha256, byte offsets and first-coordinate index maintained
    incrementally.  The file is written under an ``atomic_write``-style
    temp name; nothing is visible at the real path until
    :meth:`commit`, so a killed writer never leaves a partial leaf in
    the store.  Cells must arrive in sorted cell order (the caller's
    merge already guarantees it for the MapReduce reducers).
    """

    def __init__(self, directory, cuboid):
        self.cuboid = tuple(cuboid)
        self.filename = _leaf_filename(self.cuboid)
        self.path = os.path.join(str(directory), self.filename)
        self._tmp = "%s.tmp.%d" % (self.path, os.getpid())
        header = (",".join(list(self.cuboid) + ["count", "sum"]) + "\n").encode()
        self._handle = open(self._tmp, "wb")
        self._handle.write(header)
        self._digest = hashlib.sha256(header)
        self._offset = len(header)
        self.index = {}
        self.cells = 0

    def add(self, cell, count, value):
        line = ",".join(
            [str(coord) for coord in cell] + [str(count), repr(value)]
        ).encode() + b"\n"
        run = self.index.get(cell[0])
        if run is None:
            self.index[cell[0]] = [self._offset, 1]
        else:
            run[1] += 1
        self._handle.write(line)
        self._digest.update(line)
        self._offset += len(line)
        self.cells += 1

    def commit(self):
        """Publish the leaf atomically; returns its manifest entry."""
        self._handle.close()
        os.replace(self._tmp, self.path)
        return {
            "file": self.filename,
            "cells": self.cells,
            "bytes": self._offset,
            "sha256": self._digest.hexdigest(),
            "index": {k: tuple(v) for k, v in self.index.items()},
        }

    def abort(self):
        """Discard the temp file; the store is untouched."""
        try:
            self._handle.close()
        finally:
            try:
                os.remove(self._tmp)
            except OSError:
                pass


class CubeStore:
    """Persistent, incrementally maintainable leaf-cuboid store.

    A store may hold *all* leaves of its dimension set or just one
    shard's worth (see :mod:`repro.serve.cluster`): ``build`` with
    ``shard=(i, n)`` writes only the leaves the stable placement hash
    assigns to shard ``i`` of ``n``, and the manifest records the
    placement so a later open under a different sharding is refused
    instead of silently serving the wrong subset.  ``shard`` is ``None``
    for an unsharded store.
    """

    def __init__(self, directory, manifest):
        self.directory = str(directory)
        self._check_manifest(manifest)
        self.dims = tuple(manifest["dims"])
        self._lattice = CubeLattice(self.dims)
        shard = manifest.get("shard")
        self.shard = ((int(shard["index"]), int(shard["of"]))
                      if shard else None)
        #: integrity level this store was opened at ("off" for a fresh
        #: build); surfaced on the server's /healthz
        self.verify_mode = "off"
        self.generation = int(manifest["generation"])
        self.total_rows = int(manifest["total_rows"])
        self.total_measure = float(manifest["total_measure"])
        #: leaf cuboid -> manifest entry (file, cells, checksums, index)
        self._entries = {}
        self.leaves = []
        for entry in manifest["leaves"]:
            cuboid = tuple(entry["cuboid"])
            self.leaves.append(cuboid)
            self._entries[cuboid] = {
                "file": entry["file"],
                "cells": int(entry["cells"]),
                "bytes": int(entry["bytes"]),
                "sha256": entry["sha256"],
                "index": {int(k): tuple(v) for k, v in entry["index"].items()},
            }
        self._leaf_set = frozenset(self.leaves)
        self._items = {}  # leaf -> sorted [(cell, (count, sum))], lazy
        self._lock = threading.RLock()
        self._closed = False
        #: what `open` had to repair: rolled_forward / orphans_removed /
        #: salvaged (empty for a clean open or a fresh build)
        self.recovery = {
            "rolled_forward": False, "orphans_removed": [], "salvaged": [],
        }

    @staticmethod
    def _check_manifest(manifest):
        if manifest.get("format") != STORE_FORMAT:
            raise SchemaError(
                "unknown cube-store format %r" % (manifest.get("format"),)
            )
        if manifest.get("format_version") != STORE_FORMAT_VERSION:
            raise SchemaError(
                "cube-store format_version %r not supported (this library reads %d)"
                % (manifest.get("format_version"), STORE_FORMAT_VERSION)
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, relation, directory, dims=None, cluster_spec=None, cost_model=None,
              backend="simulated", shard=None, workers=None, use_shm=True):
        """Precompute the leaf cuboids of ``relation`` and persist them.

        Runs the same minsup-1 leaf precompute as
        :class:`~repro.online.materialize.LeafMaterialization`, then
        writes the store and returns it open.  ``backend="local"``
        aggregates the leaves over a columnar frame at machine speed
        instead of through the simulated cluster — same cells, much
        faster ingest (the CLI's default).  ``workers`` > 1 spreads the
        local-backend leaf aggregation over the supervised process pool
        with shared-memory transport (``use_shm=False`` keeps the pool
        but ships pickles).

        ``shard=(i, n)`` builds one shard of a sharded serving tier:
        only the leaves :class:`~repro.serve.cluster.ShardMap` assigns
        to shard ``i`` of ``n`` are computed and written, and the
        placement is recorded in the manifest.
        """
        from ..online.materialize import LeafMaterialization

        leaves = None
        if shard is not None:
            from .cluster import ShardMap

            index, of = int(shard[0]), int(shard[1])
            shard_map = ShardMap(tuple(dims) if dims else relation.dims, of)
            leaves = shard_map.leaves_for(index)
            shard = (index, of)
        materialization = LeafMaterialization(
            relation, dims=dims, cluster_spec=cluster_spec, cost_model=cost_model,
            backend=backend, leaves=leaves, workers=workers, use_shm=use_shm,
        )
        return cls.from_materialization(materialization, directory, shard=shard)

    @classmethod
    def from_materialization(cls, materialization, directory, shard=None):
        """Persist an in-memory :class:`LeafMaterialization` as a store."""
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        entries = {}
        loaded = {}
        for leaf in materialization.leaves:
            with obs.span("store.write_leaf") as span:
                items = list(materialization._items(leaf))
                filename = _leaf_filename(leaf)
                data, index = _encode_leaf(leaf, items)
                atomic_write(
                    os.path.join(directory, filename),
                    lambda handle, data=data: handle.write(data),
                    binary=True,
                )
                entries[leaf] = _leaf_entry(leaf, filename, data, index,
                                            len(items))
                loaded[leaf] = items
                if span:
                    span.set(leaf="/".join(leaf), cells=len(items),
                             bytes=len(data))
        manifest = cls._manifest_dict(
            materialization.dims, materialization.leaves, entries,
            generation=1,
            total_rows=materialization.total_rows,
            total_measure=materialization.total_measure,
            shard=shard,
        )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        store = cls(directory, manifest)
        store._items.update(loaded)
        return store

    @classmethod
    def assemble(cls, directory, dims, entries, total_rows, total_measure,
                 shard=None, generation=1):
        """Write a manifest over leaf files already committed on disk.

        The externalized build path: workers write leaves through
        :class:`LeafWriter` (each commit is atomic), then the driver
        calls ``assemble`` with the collected manifest entries (leaf
        cuboid -> entry dict as returned by :meth:`LeafWriter.commit`)
        to publish the store.  Leaves are ordered deterministically by
        cuboid so the manifest is byte-stable across re-executions.
        """
        directory = str(directory)
        os.makedirs(directory, exist_ok=True)
        leaves = sorted(entries)
        typed = {
            leaf: {
                "file": entry["file"],
                "cells": int(entry["cells"]),
                "bytes": int(entry["bytes"]),
                "sha256": entry["sha256"],
                "index": {int(k): tuple(v)
                          for k, v in entry["index"].items()},
            }
            for leaf, entry in entries.items()
        }
        manifest = cls._manifest_dict(
            dims, leaves, typed, generation=int(generation),
            total_rows=int(total_rows), total_measure=float(total_measure),
            shard=shard,
        )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory, verify="quick", salvage=True):
        """Attach to a store previously written by :meth:`build`.

        ``verify`` controls the integrity pass: ``"quick"`` (default)
        checks every leaf file's existence and byte size against the
        manifest, ``"full"`` re-hashes the content, ``"off"`` skips the
        pass (an interrupted append is still rolled forward or back —
        generation mixing is never allowed).  Damaged leaves are rebuilt
        from the root leaf when ``salvage`` is true; otherwise — or when
        the root leaf itself is damaged —
        :class:`~repro.errors.StoreCorruptError` names the leaf.  What
        was repaired is reported in the returned store's ``.recovery``.
        """
        if verify not in VERIFY_LEVELS:
            raise PlanError(
                "verify must be one of %s, got %r" % (", ".join(VERIFY_LEVELS), verify)
            )
        directory = str(directory)
        recovery = {
            "rolled_forward": False, "orphans_removed": [], "salvaged": [],
        }
        manifest = cls._recover_journal(directory, recovery)
        if manifest is None:
            manifest_path = os.path.join(directory, MANIFEST)
            try:
                with open(manifest_path) as handle:
                    manifest = json.load(handle)
            except FileNotFoundError:
                raise SchemaError(
                    "no cube-store manifest at %r" % (manifest_path,)
                ) from None
        store = cls(directory, manifest)
        store.recovery = recovery
        store.verify_mode = verify
        if verify != "off":
            store._sweep_orphans(recovery)
            store._verify_leaves(verify, salvage, recovery)
        if (recovery["rolled_forward"] or recovery["orphans_removed"]
                or recovery["salvaged"]):
            obs.event("store.recovered",
                      rolled_forward=recovery["rolled_forward"],
                      orphans_removed=len(recovery["orphans_removed"]),
                      salvaged=len(recovery["salvaged"]))
        return store

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def _recover_journal(cls, directory, recovery):
        """Complete (or discard) an append interrupted mid-commit.

        Returns the rolled-forward manifest, or ``None`` when there is
        no journal (the common case).  The journal is only ever written
        *after* every staged leaf file landed, so roll-forward can
        always finish the swing: each leaf either still has its staged
        file (swing it now) or was already swung (its content matches
        the journalled checksum).
        """
        journal_path = os.path.join(directory, JOURNAL)
        try:
            with open(journal_path) as handle:
                journal = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # The journal is written atomically, so a malformed one is
            # foreign debris; without a valid commit record, roll back.
            os.unlink(journal_path)
            return None
        if journal.get("format") != JOURNAL_FORMAT:
            raise SchemaError(
                "unknown cube-store journal format %r" % (journal.get("format"),)
            )
        manifest = journal["manifest"]
        cls._check_manifest(manifest)
        for entry in manifest["leaves"]:
            path = os.path.join(directory, entry["file"])
            staged = path + STAGED_SUFFIX
            if os.path.exists(staged):
                os.replace(staged, path)
            elif not (os.path.exists(path)
                      and os.path.getsize(path) == int(entry["bytes"])
                      and _sha256_file(path) == entry["sha256"]):
                raise StoreCorruptError(
                    tuple(entry["cuboid"]),
                    "journal roll-forward found neither the staged file "
                    "nor the committed content",
                    directory,
                )
        atomic_write(
            os.path.join(directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )
        os.unlink(journal_path)
        recovery["rolled_forward"] = True
        return manifest

    def _sweep_orphans(self, recovery):
        """Remove write debris the manifest does not reference.

        Staged files and ``atomic_write`` temps are always an
        interrupted writer's leftovers (a journalled writer's staged
        files were consumed by roll-forward before this runs); ``.csv``
        files no manifest entry names are stale leaves from a superseded
        generation.  Anything else is left alone.
        """
        known = {MANIFEST, JOURNAL}
        known.update(entry["file"] for entry in self._entries.values())
        for name in sorted(os.listdir(self.directory)):
            if name in known:
                continue
            path = os.path.join(self.directory, name)
            if not os.path.isfile(path):
                continue
            if (".tmp." in name or name.endswith(STAGED_SUFFIX)
                    or name.endswith(".csv")):
                os.unlink(path)
                recovery["orphans_removed"].append(name)

    def _leaf_damage(self, leaf, level):
        """Why the leaf's file fails verification, or ``None`` if intact."""
        entry = self._entries[leaf]
        path = os.path.join(self.directory, entry["file"])
        try:
            size = os.path.getsize(path)
        except OSError:
            return "leaf file %r is missing" % (entry["file"],)
        if size != entry["bytes"]:
            return ("leaf file %r is %d bytes, manifest says %d "
                    "(truncated or overwritten)"
                    % (entry["file"], size, entry["bytes"]))
        if level == "full" and _sha256_file(path) != entry["sha256"]:
            return "leaf file %r fails its SHA-256 check (corrupted content)" % (
                entry["file"],)
        return None

    def _verify_leaves(self, level, salvage, recovery):
        damaged = []
        for leaf in self.leaves:
            reason = self._leaf_damage(leaf, level)
            if reason is not None:
                damaged.append((leaf, reason))
        if not damaged:
            return
        root = self.dims
        if root not in self._leaf_set:
            # A shard store without the root leaf has nothing local to
            # salvage from; its replicas are the redundancy instead.
            leaf, reason = damaged[0]
            raise StoreCorruptError(
                leaf, reason + "; this shard store does not hold the root "
                "leaf, so local salvage is impossible — rebuild the shard "
                "or restore from a sibling replica",
                self.directory,
            )
        root_damage = [item for item in damaged if item[0] == root]
        if root_damage:
            leaf, reason = root_damage[0]
            raise StoreCorruptError(
                leaf, reason + "; the root leaf covers every other leaf, so "
                "nothing remains to salvage from — rebuild the store",
                self.directory,
            )
        if not salvage:
            leaf, reason = damaged[0]
            raise StoreCorruptError(leaf, reason, self.directory)
        with self._lock:
            for leaf, _reason in damaged:
                with obs.span("store.salvage", leaf=list(leaf)):
                    self._rebuild_leaf(leaf)
                recovery["salvaged"].append(leaf)
            self._write_manifest()

    def _rebuild_leaf(self, leaf):
        """Regenerate one leaf by re-aggregating the (intact) root leaf.

        Leaves hold unfiltered minsup-1 cells and count/sum are
        distributive, so projecting the root leaf's cells onto the
        damaged leaf's dimensions reproduces its content exactly.
        """
        positions = [self.dims.index(d) for d in leaf]
        accumulated = {}
        for cell, (count, value) in self.leaf_items(self.dims):
            sub = tuple(cell[p] for p in positions)
            acc = accumulated.get(sub)
            if acc is None:
                accumulated[sub] = [count, value]
            else:
                acc[0] += count
                acc[1] += value
        items = sorted(
            (cell, (acc[0], acc[1])) for cell, acc in accumulated.items()
        )
        entry = self._entries[leaf]
        data, index = _encode_leaf(leaf, items)
        atomic_write(
            os.path.join(self.directory, entry["file"]),
            lambda handle, data=data: handle.write(data),
            binary=True,
        )
        self._entries[leaf] = _leaf_entry(
            leaf, entry["file"], data, index, len(items))
        self._items[leaf] = items

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Release in-memory leaf data; further queries raise."""
        with self._lock:
            self._items.clear()
            self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise PlanError("cube store %r is closed" % (self.directory,))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def canonical(self, cuboid):
        """Normalize a cuboid to the store's schema order."""
        return self._lattice.canonical(cuboid)

    def covering_leaf(self, cuboid):
        """The stored leaf that has (canonical) ``cuboid`` as a prefix."""
        cuboid = self._lattice.canonical(cuboid)
        if cuboid and cuboid[-1] == self.dims[-1]:
            return cuboid
        candidate = cuboid + (self.dims[-1],)
        if candidate in self._leaf_set:
            return candidate
        if self.shard is not None:
            raise PlanError(
                "no stored leaf covers cuboid %r on shard %d/%d (placement "
                "assigns its covering leaf to another shard)"
                % (cuboid, self.shard[0], self.shard[1]))
        raise PlanError("no stored leaf covers cuboid %r" % (cuboid,))

    def total_cells(self):
        """Stored cells across all leaves (from the manifest, no I/O)."""
        return sum(entry["cells"] for entry in self._entries.values())

    def loaded_leaves(self):
        """Leaves currently resident in memory (the hot set)."""
        with self._lock:
            return sorted(self._items)

    def leaf_items(self, leaf):
        """The leaf's cells in sorted order, loading from disk on first use."""
        self._check_open()
        items = self._items.get(leaf)
        if items is not None:
            return items
        with self._lock:
            items = self._items.get(leaf)
            if items is not None:
                return items
            entry = self._entries.get(leaf)
            if entry is None:
                raise PlanError("cuboid %r is not a stored leaf" % (leaf,))
            path = os.path.join(self.directory, entry["file"])
            with open(path, "rb") as handle:
                handle.readline()  # header
                items = _parse_rows(handle.readlines(), len(leaf))
            if len(items) != entry["cells"]:
                raise StoreCorruptError(
                    leaf,
                    "has %d cells on disk, manifest says %d"
                    % (len(items), entry["cells"]),
                    self.directory,
                )
            self._items[leaf] = items
            return items

    def query(self, cuboid, minsup=1):
        """Answer ``GROUP BY cuboid HAVING <threshold>`` from the store.

        One ordered pass over the covering leaf's presorted cells —
        identical semantics to ``LeafMaterialization.query``.  Returns
        ``{cell: (count, sum)}``.
        """
        self._check_open()
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        if not cuboid:
            if threshold.qualifies(self.total_rows, self.total_measure):
                return {(): (self.total_rows, self.total_measure)}
            return {}
        leaf = self.covering_leaf(cuboid)
        items = self.leaf_items(leaf)
        width = len(cuboid)
        out = {}
        current = None
        count = 0
        total = 0.0
        for cell, (c, v) in items:
            prefix = cell[:width]
            if prefix != current:
                if current is not None and threshold.qualifies(count, total):
                    out[current] = (count, total)
                current = prefix
                count = 0
                total = 0.0
            count += c
            total += v
        if current is not None and threshold.qualifies(count, total):
            out[current] = (count, total)
        return out

    def owned_cuboids(self):
        """Every cuboid whose *covering leaf* this store holds.

        Each stored leaf ``L`` covers exactly two cuboids whose
        ``covering_leaf`` is ``L`` itself: ``L`` and ``L[:-1]`` (for the
        last-dimension-only leaf that second cuboid is ``()``).  Across
        the shards of a :class:`~repro.serve.cluster.ShardMap` these
        sets partition the whole lattice, so a fan-out to all shards
        covers every cuboid exactly once.
        """
        owned = []
        for leaf in self.leaves:
            owned.append(leaf)
            owned.append(leaf[:-1])
        return owned

    def iceberg(self, minsup=1):
        """The iceberg cube over every cuboid this store covers.

        Returns ``{cuboid: {cell: (count, sum)}}`` restricted to the
        cuboids in :meth:`owned_cuboids` — the store's share of the full
        cube.  An unsharded store answers the entire lattice.
        """
        return {cuboid: self.query(cuboid, minsup=minsup)
                for cuboid in self.owned_cuboids()}

    def point(self, cuboid, cell, minsup=1):
        """One cell of one cuboid: ``(count, sum)`` or ``None``.

        For a loaded leaf this is a binary search over the sorted items;
        for an unloaded leaf the prefix offset index turns it into a
        seek + one contiguous run scan, without reading the whole file.
        """
        self._check_open()
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        if not cuboid:
            agg = (self.total_rows, self.total_measure)
            return agg if threshold.qualifies(*agg) else None
        cell = tuple(cell)
        if len(cell) != len(cuboid):
            raise SchemaError(
                "cell %r has %d coordinates, cuboid %r has %d dimensions"
                % (cell, len(cell), cuboid, len(cuboid))
            )
        leaf = self.covering_leaf(cuboid)
        items = self._items.get(leaf)
        if items is None:
            items = self._run_items(leaf, cell[0])
            start = 0
        else:
            start = bisect_left(items, (cell,))
        width = len(cell)
        count = 0
        total = 0.0
        for leaf_cell, (c, v) in items[start:]:
            prefix = leaf_cell[:width]
            if prefix < cell:
                continue
            if prefix != cell:
                break
            count += c
            total += v
        if count and threshold.qualifies(count, total):
            return (count, total)
        return None

    def _run_items(self, leaf, first_coord):
        """Read only the contiguous run of ``leaf`` rows starting with
        ``first_coord``, via the manifest's prefix offset index."""
        entry = self._entries[leaf]
        run = entry["index"].get(first_coord)
        if run is None:
            return []
        offset, n_rows = run
        path = os.path.join(self.directory, entry["file"])
        with self._lock:
            self._check_open()
            with open(path, "rb") as handle:
                handle.seek(offset)
                lines = [handle.readline() for _ in range(n_rows)]
        return _parse_rows(lines, len(leaf))

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def append(self, relation):
        """Fold new rows into every stored leaf (delta maintenance).

        Mirrors ``LeafMaterialization.insert``: the leaves hold
        unfiltered minsup-1 cells, so appending is pure accumulation —
        each leaf gets a sorted delta merged into its sorted items — and
        ``generation`` is bumped so caches invalidate.  No rescan of
        previously stored data.

        The rewrite is journalled two-phase (see the module docstring):
        stage every new leaf file, atomically commit a journal naming
        the complete next generation, then swing the live files.  A
        crash at any point leaves the store openable at exactly the old
        or the new generation.
        """
        self._check_open()
        with obs.span("store.append", rows=len(relation)) as span:
            self._append(relation)
            if span:
                span.set(generation=self.generation,
                         leaves=len(self.leaves))

    def _append(self, relation):
        positions = relation.dim_indices(self.dims)
        keyed = [
            (tuple(row[p] for p in positions), measure)
            for row, measure in zip(relation.rows, relation.measures)
        ]
        with self._lock:
            staged = []  # (leaf, entry, data, merged)
            for leaf in self.leaves:
                delta = {}
                leaf_positions = [self.dims.index(d) for d in leaf]
                for key, measure in keyed:
                    cell = tuple(key[p] for p in leaf_positions)
                    acc = delta.get(cell)
                    if acc is None:
                        delta[cell] = [1, measure]
                    else:
                        acc[0] += 1
                        acc[1] += measure
                delta_items = sorted(
                    (cell, (acc[0], acc[1])) for cell, acc in delta.items()
                )
                merged = _merge_sorted(self.leaf_items(leaf), delta_items)
                data, index = _encode_leaf(leaf, merged)
                filename = self._entries[leaf]["file"]
                staged.append((
                    leaf,
                    _leaf_entry(leaf, filename, data, index, len(merged)),
                    data,
                    merged,
                ))
            # Phase 1: stage every rewritten leaf next to the live one.
            for _leaf, entry, data, _merged in staged:
                atomic_write(
                    os.path.join(self.directory, entry["file"] + STAGED_SUFFIX),
                    lambda handle, data=data: handle.write(data),
                    binary=True,
                )
            new_entries = {leaf: entry for leaf, entry, _data, _merged in staged}
            manifest = self._manifest_dict(
                self.dims, self.leaves, new_entries,
                generation=self.generation + 1,
                total_rows=self.total_rows + len(relation),
                total_measure=self.total_measure + sum(relation.measures),
                shard=self.shard,
            )
            # Commit point: after this journal lands, the new generation
            # is durable; before it, the staged files are mere debris.
            journal = {"format": JOURNAL_FORMAT,
                       "generation": manifest["generation"],
                       "manifest": manifest}
            atomic_write(
                os.path.join(self.directory, JOURNAL),
                lambda handle: json.dump(journal, handle, indent=2,
                                         sort_keys=True),
            )
            obs.event("store.journal_commit",
                      generation=manifest["generation"])
            # Phase 2: swing the leaves, rewrite the manifest, drop the
            # journal.  Any crash in here is rolled forward on open.
            for _leaf, entry, _data, _merged in staged:
                path = os.path.join(self.directory, entry["file"])
                os.replace(path + STAGED_SUFFIX, path)
            atomic_write(
                os.path.join(self.directory, MANIFEST),
                lambda handle: json.dump(manifest, handle, indent=2,
                                         sort_keys=True),
            )
            os.unlink(os.path.join(self.directory, JOURNAL))
            for leaf, entry, _data, merged in staged:
                self._entries[leaf] = entry
                self._items[leaf] = merged
            self.total_rows = manifest["total_rows"]
            self.total_measure = manifest["total_measure"]
            self.generation = manifest["generation"]

    @staticmethod
    def _manifest_dict(dims, leaves, entries, generation, total_rows,
                       total_measure, shard=None):
        return {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "dims": list(dims),
            "generation": generation,
            "total_rows": total_rows,
            "total_measure": total_measure,
            "shard": ({"index": shard[0], "of": shard[1]}
                      if shard is not None else None),
            "leaves": [
                {
                    "cuboid": list(leaf),
                    "file": entries[leaf]["file"],
                    "cells": entries[leaf]["cells"],
                    "bytes": entries[leaf]["bytes"],
                    "sha256": entries[leaf]["sha256"],
                    "index": {
                        str(k): list(v)
                        for k, v in entries[leaf]["index"].items()
                    },
                }
                for leaf in leaves
            ],
        }

    def _write_manifest(self):
        manifest = self._manifest_dict(
            self.dims, self.leaves, self._entries,
            generation=self.generation,
            total_rows=self.total_rows,
            total_measure=self.total_measure,
            shard=self.shard,
        )
        atomic_write(
            os.path.join(self.directory, MANIFEST),
            lambda handle: json.dump(manifest, handle, indent=2, sort_keys=True),
        )

    def __repr__(self):
        shard = (", shard=%d/%d" % self.shard) if self.shard else ""
        return "CubeStore(dims=%r, leaves=%d, rows=%d, generation=%d%s)" % (
            self.dims,
            len(self.leaves),
            self.total_rows,
            self.generation,
            shard,
        )

"""Apriori-style candidate hash tree (Section 3.5.1).

The thesis' first hash-based cube attempt transplanted the Apriori
association-rule-mining machinery: candidate group-by cells are treated
as itemsets over a global item universe (one item per ``(attribute,
value)`` pair) and stored in a hash tree — interior nodes hash on the
item at their depth, leaves hold candidate lists and split when they
overflow.  Counting supports is the classic recursive *subset operation*
over each transaction (tuple).

The thesis found the approach infeasible: breadth-first candidate
generation over an item universe the size of the *sum of all attribute
cardinalities* "quickly consumes all available memory".  To reproduce
that failure honestly, every node and candidate is charged against a
:class:`MemoryMeter`, which raises
:class:`~repro.errors.MemoryBudgetExceeded` when the configured budget is
crossed.
"""

from ..errors import MemoryBudgetExceeded

#: Approximate bookkeeping sizes, in bytes, used by the memory meter.
NODE_BYTES = 120
ENTRY_BASE_BYTES = 56
ENTRY_ITEM_BYTES = 8


class MemoryMeter:
    """Tracks approximate bytes in use against an optional hard budget."""

    def __init__(self, budget_bytes=None):
        self.budget_bytes = budget_bytes
        self.used_bytes = 0
        self.peak_bytes = 0

    def add(self, nbytes):
        """Charge ``nbytes``; raises when the hard budget is crossed."""
        self.used_bytes += nbytes
        if self.used_bytes > self.peak_bytes:
            self.peak_bytes = self.used_bytes
        if self.budget_bytes is not None and self.used_bytes > self.budget_bytes:
            raise MemoryBudgetExceeded(
                self.used_bytes, self.budget_bytes, "hash tree outgrew its memory budget"
            )

    def release(self, nbytes):
        """Return ``nbytes`` to the budget (peak is unaffected)."""
        self.used_bytes = max(0, self.used_bytes - nbytes)


class _Leaf:
    __slots__ = ("entries",)

    def __init__(self):
        self.entries = []


class _Interior:
    __slots__ = ("children",)

    def __init__(self):
        self.children = {}


class HashTree:
    """A hash tree over fixed-length ``k`` itemsets (sorted item tuples)."""

    def __init__(self, k, hash_mod=8, leaf_capacity=8, meter=None):
        if k < 1:
            raise ValueError("k must be >= 1, got %d" % k)
        self.k = k
        self.hash_mod = hash_mod
        self.leaf_capacity = leaf_capacity
        self.meter = meter if meter is not None else MemoryMeter()
        self._root = _Leaf()
        self.meter.add(NODE_BYTES)
        self._length = 0
        # Operation counters for the cost model.
        self.node_visits = 0

    def __len__(self):
        return self._length

    def _hash(self, item):
        return item % self.hash_mod

    def insert(self, itemset, count=0, value=0.0):
        """Add a candidate ``k``-itemset (a sorted tuple of item ids)."""
        if len(itemset) != self.k:
            raise ValueError("expected a %d-itemset, got %r" % (self.k, itemset))
        entry = [itemset, count, value]
        self.meter.add(ENTRY_BASE_BYTES + ENTRY_ITEM_BYTES * self.k)
        node = self._root
        depth = 0
        parent = None
        parent_key = None
        while isinstance(node, _Interior):
            key = self._hash(itemset[depth])
            parent, parent_key = node, key
            child = node.children.get(key)
            if child is None:
                child = _Leaf()
                self.meter.add(NODE_BYTES)
                node.children[key] = child
            node = child
            depth += 1
        node.entries.append(entry)
        self._length += 1
        if len(node.entries) > self.leaf_capacity and depth < self.k:
            self._split(node, depth, parent, parent_key)

    def _split(self, leaf, depth, parent, parent_key):
        """Turn an overflowing leaf into an interior node of sub-leaves."""
        interior = _Interior()
        self.meter.add(NODE_BYTES)
        for entry in leaf.entries:
            key = self._hash(entry[0][depth])
            child = interior.children.get(key)
            if child is None:
                child = _Leaf()
                self.meter.add(NODE_BYTES)
                interior.children[key] = child
            child.entries.append(entry)
        if parent is None:
            self._root = interior
        else:
            parent.children[parent_key] = interior
        self.meter.release(NODE_BYTES)  # the old leaf
        # Recursively split any sub-leaf that is still too big.
        if depth + 1 < self.k:
            for key, child in list(interior.children.items()):
                if len(child.entries) > self.leaf_capacity:
                    self._split(child, depth + 1, interior, key)

    def get(self, itemset):
        """Return the ``[itemset, count, value]`` entry or ``None``."""
        node = self._root
        depth = 0
        while isinstance(node, _Interior):
            node = node.children.get(self._hash(itemset[depth]))
            if node is None:
                return None
            depth += 1
        for entry in node.entries:
            if entry[0] == itemset:
                return entry
        return None

    def count_subsets(self, transaction, measure=0.0):
        """The Apriori *subset operation* (Figure 3.12).

        ``transaction`` is a sorted tuple of item ids (one per attribute
        of the tuple being counted).  Every stored candidate that is a
        subset of the transaction gets its count incremented by one and
        its value incremented by ``measure``.
        """
        self._count(self._root, transaction, 0, measure)

    def _count(self, node, transaction, start, measure):
        self.node_visits += 1
        if isinstance(node, _Leaf):
            for entry in node.entries:
                if _is_subset(entry[0], transaction):
                    entry[1] += 1
                    entry[2] += measure
            return
        seen = set()
        for i in range(start, len(transaction)):
            key = self._hash(transaction[i])
            if key in seen:
                continue
            seen.add(key)
            child = node.children.get(key)
            if child is not None:
                self._count(child, transaction, i + 1, measure)

    def items(self):
        """All ``(itemset, count, value)`` triples, in unspecified order."""
        out = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                out.extend((e[0], e[1], e[2]) for e in node.entries)
            else:
                stack.extend(node.children.values())
        return out


def _is_subset(candidate, transaction):
    """Merge-test that sorted ``candidate`` is a subset of sorted ``transaction``."""
    ti = 0
    n = len(transaction)
    for item in candidate:
        while ti < n and transaction[ti] < item:
            ti += 1
        if ti >= n or transaction[ti] != item:
            return False
        ti += 1
    return True

"""Pugh skip lists — ASL's and POL's cuboid container (Section 3.3.1).

The thesis keeps the cells of each cuboid in a skip list because it (a)
behaves like a balanced tree for search/insert while staying simple, (b)
has small per-node overhead, and (c) keeps cells sorted *incrementally*,
so a cuboid can be built one tuple at a time and written out in order —
which is also what makes it the right structure for online aggregation.

This implementation is deterministic: level draws come from a seeded
``random.Random``, capped at ``MAX_LEVEL`` = 16 forward links per node as
in the thesis ("we allow no more than 16 forward links in each node").

Cost accounting: the structure counts key comparisons and node visits so
the simulated-cluster cost model can charge CPU time for them.  The per
-comparison cost grows with key length at the call site (Figure 4.4's
finding that ASL degrades with dimensionality comes from exactly this).
"""

import random

MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "count", "value", "forward")

    def __init__(self, key, count, value, level):
        self.key = key
        self.count = count
        self.value = value
        self.forward = [None] * level


class SkipList:
    """A sorted map from cell keys (tuples) to ``(count, value)`` aggregates.

    ``insert(key, measure)`` accumulates: the node's support count grows
    by ``weight`` and its value by ``measure`` (SUM semantics, matching
    the thesis' prototypical iceberg query).
    """

    def __init__(self, seed=0):
        self._head = _Node(None, 0, 0.0, MAX_LEVEL)
        self._level = 1
        self._length = 0
        self._rng = random.Random(seed)
        # Operation counters for the cost model.
        self.comparisons = 0
        self.node_visits = 0

    def __len__(self):
        return self._length

    def __iter__(self):
        """Yield ``(key, count, value)`` in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.count, node.value
            node = node.forward[0]

    def __contains__(self, key):
        return self.get(key) is not None

    def _random_level(self):
        level = 1
        while level < MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_update(self, key):
        """Walk towards ``key``, returning the per-level predecessors."""
        update = [self._head] * MAX_LEVEL
        node = self._head
        visits = 0
        comparisons = 0
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None:
                comparisons += 1
                if nxt.key < key:
                    node = nxt
                    visits += 1
                    nxt = node.forward[level]
                else:
                    break
            update[level] = node
        self.comparisons += comparisons
        self.node_visits += visits
        return update

    def insert(self, key, measure=0.0, count=1):
        """Accumulate ``(count, measure)`` into the cell ``key``.

        Returns ``True`` when a new node was created, ``False`` when an
        existing cell was updated.
        """
        update = self._find_update(key)
        candidate = update[0].forward[0]
        if candidate is not None:
            self.comparisons += 1
            if candidate.key == key:
                candidate.count += count
                candidate.value += measure
                return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, count, measure, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._length += 1
        return True

    def get(self, key):
        """Return ``(count, value)`` for ``key`` or ``None`` if absent."""
        update = self._find_update(key)
        candidate = update[0].forward[0]
        if candidate is not None:
            self.comparisons += 1
            if candidate.key == key:
                return candidate.count, candidate.value
        return None

    def items(self):
        """All ``(key, count, value)`` triples as a list, in key order."""
        return list(self)

    # ------------------------------------------------------------------
    # cuboid operations used by ASL / POL
    # ------------------------------------------------------------------
    def aggregate_prefix(self, prefix_length):
        """Prefix-reuse (subroutine ``prefix-reuse`` in Figure 3.8).

        Because cells are sorted lexicographically, all cells sharing the
        first ``prefix_length`` coordinates are contiguous; one ordered
        scan aggregates them without building a new structure.  Yields
        ``(prefix_key, count, value)`` in order.
        """
        current_key = None
        count = 0
        value = 0.0
        for key, node_count, node_value in self:
            prefix = key[:prefix_length]
            if prefix != current_key:
                if current_key is not None:
                    yield current_key, count, value
                current_key = prefix
                count = 0
                value = 0.0
            count += node_count
            value += node_value
        if current_key is not None:
            yield current_key, count, value

    def project(self, positions, seed=0):
        """Subset-create (subroutine ``subset-create`` in Figure 3.8).

        Builds a new skip list whose keys keep only the coordinates at
        ``positions``; counts and values of collapsed cells accumulate.
        """
        result = SkipList(seed=seed)
        for key, count, value in self:
            result.insert(tuple(key[i] for i in positions), measure=value, count=count)
        return result

    def split_ranges(self, boundaries):
        """Keys partitioned by ``boundaries`` (POL's skip-list partitioning).

        ``boundaries`` is an ascending list of keys; range ``i`` holds
        cells ``< boundaries[i]`` (the last range is unbounded).  Returns
        a list of ``len(boundaries) + 1`` item lists.
        """
        ranges = [[] for _ in range(len(boundaries) + 1)]
        index = 0
        for item in self:
            key = item[0]
            while index < len(boundaries) and key >= boundaries[index]:
                index += 1
            ranges[index].append(item)
        return ranges

    def merge(self, items):
        """Insert pre-aggregated ``(key, count, value)`` triples.

        POL workers that offloaded a task build a private skip list and
        hand it to the owning processor, which merges it here.
        """
        for key, count, value in items:
            self.insert(key, measure=value, count=count)

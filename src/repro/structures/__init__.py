"""Core data structures: skip lists, collapsible hash tables, hash trees."""

from .collapsible_hash import CollapsibleHashTable
from .hash_tree import HashTree, MemoryMeter
from .skiplist import MAX_LEVEL, SkipList

__all__ = ["SkipList", "MAX_LEVEL", "CollapsibleHashTable", "HashTree", "MemoryMeter"]

"""AHT's bit-sliced, collapsible hash table (Section 3.5.2).

Each cube attribute is assigned a number of index bits; concatenating the
per-attribute bit fields of a cell's coordinates yields its bucket index.
Ideally attribute ``X`` gets ``ceil(log2(card(X)))`` bits, but the total
index is capped so the table stays near the size of the input relation —
the thesis' "trade off memory occupation with run time".  The cap is what
introduces bucket collisions, and collisions are what destroy AHT on
sparse, high-dimensional cubes (Figures 4.4 and 4.6).

``collapse(keep_positions)`` implements subset affinity: when a new task's
GROUP BY attributes are a subset of the previous task's, the buckets whose
indices differ only in the dropped attributes' bits are merged, so no new
table has to be built from the raw data.

The hash is the thesis' "naive MOD hash function": an attribute with
``b`` bits contributes ``code mod 2**b``.
"""

import math


MOD_HASH = "mod"
MULTIPLICATIVE_HASH = "multiplicative"

#: Knuth's multiplicative constant (2^32 / golden ratio), used by the
#: improved per-field hash the thesis suggests in Section 4.9.2.
_FIBONACCI = 2654435761


class CollapsibleHashTable:
    """A hash table over cube cells keyed by bit-sliced coordinates."""

    def __init__(self, cardinalities, max_buckets, hash_mode=MOD_HASH):
        """``cardinalities``: per-attribute distinct-value counts (in key
        order).  ``max_buckets`` caps the table size; per-attribute bits
        shrink from their ideal ``ceil(log2(card))`` until the index fits.

        ``hash_mode`` selects the per-field hash: ``"mod"`` is the
        thesis' naive MOD function (low bits of the code); the thesis'
        Section 4.9.2 suggests "a more sophisticated hash function" —
        ``"multiplicative"`` provides one (per-field Fibonacci hashing),
        still field-separable so :meth:`collapse` keeps working.
        """
        if max_buckets < 2:
            max_buckets = 2
        if hash_mode not in (MOD_HASH, MULTIPLICATIVE_HASH):
            raise ValueError("unknown hash_mode %r" % (hash_mode,))
        self.hash_mode = hash_mode
        self.cardinalities = tuple(int(c) for c in cardinalities)
        self.bits = [max(1, math.ceil(math.log2(max(2, c)))) for c in self.cardinalities]
        max_bits = max(1, int(math.floor(math.log2(max_buckets))))
        self._shrink_bits(max_bits)
        self.index_bits = sum(self.bits)
        self.n_buckets = 1 << self.index_bits
        self._buckets = [None] * self.n_buckets
        self._length = 0
        # Operation counters for the cost model.
        self.probes = 0
        self.collisions = 0

    def _shrink_bits(self, max_bits):
        """Repeatedly take a bit from the widest attribute until we fit."""
        while sum(self.bits) > max_bits and any(b > 1 for b in self.bits):
            widest = max(range(len(self.bits)), key=lambda i: self.bits[i])
            self.bits[widest] -= 1
        # With many attributes even 1 bit each may exceed the cap; the
        # thesis' implementation lives with that (the table is at least
        # 2**n_attrs buckets for an n-attribute cuboid).

    def __len__(self):
        return self._length

    def __iter__(self):
        """Yield ``(key, count, value)`` in unspecified (bucket) order."""
        for bucket in self._buckets:
            if bucket:
                for entry in bucket:
                    yield entry[0], entry[1], entry[2]

    def _field_hash(self, code, bits):
        """Hash one coordinate into ``bits`` bits, per ``hash_mode``."""
        if self.hash_mode == MOD_HASH:
            return code & ((1 << bits) - 1)
        return ((code * _FIBONACCI) & 0xFFFFFFFF) >> (32 - bits)

    def bucket_index(self, key):
        """Bit-sliced bucket index of a cell key (one field per slice)."""
        index = 0
        for code, b in zip(key, self.bits):
            index = (index << b) | self._field_hash(code, b)
        return index

    def insert(self, key, measure=0.0, count=1):
        """Accumulate ``(count, measure)`` into cell ``key``.

        Returns ``True`` when a new cell was created.  Chained entries in
        a bucket are scanned linearly; every extra entry walked past is
        counted as a collision.
        """
        index = self.bucket_index(key)
        bucket = self._buckets[index]
        self.probes += 1
        if bucket is None:
            self._buckets[index] = [[key, count, measure]]
            self._length += 1
            return True
        for entry in bucket:
            if entry[0] == key:
                entry[1] += count
                entry[2] += measure
                return False
            self.collisions += 1
        bucket.append([key, count, measure])
        self._length += 1
        return True

    def get(self, key):
        """Return ``(count, value)`` for ``key`` or ``None``."""
        bucket = self._buckets[self.bucket_index(key)]
        self.probes += 1
        if bucket is None:
            return None
        for entry in bucket:
            if entry[0] == key:
                return entry[1], entry[2]
            self.collisions += 1
        return None

    def items_sorted(self):
        """Cells in ascending key order (AHT's *post-sorting* of output)."""
        return sorted(self, key=lambda item: item[0])

    def max_chain_length(self):
        """Length of the worst bucket chain (a collision diagnostic)."""
        return max((len(b) for b in self._buckets if b), default=0)

    def collapse(self, keep_positions):
        """Subset-collapse (subroutine ``subset-collapse`` in Figure 3.13).

        Returns a new table over only the attributes at ``keep_positions``
        (in the given order); cells that agree on those coordinates merge.
        The new table keeps the corresponding attributes' bit widths, so
        the operation is a pure regrouping of buckets — no raw data scan.
        """
        keep_positions = tuple(keep_positions)
        new = CollapsibleHashTable.__new__(CollapsibleHashTable)
        new.hash_mode = self.hash_mode
        new.cardinalities = tuple(self.cardinalities[i] for i in keep_positions)
        new.bits = [self.bits[i] for i in keep_positions]
        new.index_bits = sum(new.bits)
        new.n_buckets = 1 << new.index_bits
        new._buckets = [None] * new.n_buckets
        new._length = 0
        new.probes = 0
        new.collisions = 0
        for key, count, value in self:
            new.insert(tuple(key[i] for i in keep_positions), measure=value, count=count)
        return new

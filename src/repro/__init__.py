"""repro — iceberg-cube computation with (simulated) PC clusters.

A from-scratch reproduction of *Iceberg-cube Computation with PC
Cluster* (Yu Yin, UBC, 2001; the SIGMOD 2001 line of work with Ng and
Wagner): the parallel CUBE algorithms RP, BPP, ASL, PT and AHT, the
parallel online-aggregation algorithm POL, the sequential baselines they
build on (BUC, PipeSort, PipeHash, PartitionedCube/MemoryCube, the
Apriori hash-tree cube), and a deterministic simulated PC cluster that
stands in for the paper's physical testbed.

Quickstart::

    from repro import weather_relation, iceberg_cube, cluster1

    relation = weather_relation(20_000)
    run = iceberg_cube(relation, minsup=2, algorithm="pt",
                       cluster_spec=cluster1(8))
    print(run.result.total_cells(), "cells in", run.makespan, "simulated s")
"""

from .cluster import (
    CostModel,
    ClusterSpec,
    cluster1,
    cluster2,
    cluster3,
    homogeneous,
    paper_cluster,
)
from .core import (
    AndThreshold,
    CountThreshold,
    CubeResult,
    SumThreshold,
    Threshold,
    buc_iceberg_cube,
    naive_iceberg_cube,
)
from .data import (
    Relation,
    dense_relation,
    from_raw_rows,
    load_csv,
    save_csv,
    uniform_relation,
    weather_relation,
    zipf_relation,
)
from .errors import MemoryBudgetExceeded, ReproError
from .online import POL, LeafMaterialization
from .parallel import AHT, ASL, BPP, PT, RP, features_table
from .queries import IcebergQuery, iceberg_cube, iceberg_query
from .recipe import Workload, recommend, recommend_for, recipe_table
from .serve import CubeServer, CubeStore, QueryCache, ServerTelemetry

__version__ = "1.0.0"

__all__ = [
    "Relation",
    "from_raw_rows",
    "load_csv",
    "save_csv",
    "uniform_relation",
    "zipf_relation",
    "dense_relation",
    "weather_relation",
    "CubeResult",
    "naive_iceberg_cube",
    "buc_iceberg_cube",
    "Threshold",
    "CountThreshold",
    "SumThreshold",
    "AndThreshold",
    "RP",
    "BPP",
    "ASL",
    "PT",
    "AHT",
    "POL",
    "LeafMaterialization",
    "CubeStore",
    "QueryCache",
    "CubeServer",
    "ServerTelemetry",
    "features_table",
    "IcebergQuery",
    "iceberg_cube",
    "iceberg_query",
    "Workload",
    "recommend",
    "recommend_for",
    "recipe_table",
    "ClusterSpec",
    "CostModel",
    "cluster1",
    "cluster2",
    "cluster3",
    "homogeneous",
    "paper_cluster",
    "ReproError",
    "MemoryBudgetExceeded",
    "__version__",
]

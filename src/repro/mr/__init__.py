"""One-round MapReduce cube materialization with a spill-to-disk shuffle.

The scale backend: every other real backend in the library holds the
relation *and* all intermediate cells in RAM; this one streams row
splits through mapper processes, externalizes the shuffle into sorted
run files under a memory budget, and lets reducers merge-stream their
lattice regions straight into a :class:`~repro.serve.store.CubeStore`
— so input size and cube size are bounded by disk, not memory.

The round structure follows Sundararajan & Yan ("A Simple and
Efficient MapReduce Algorithm for Data Cube Materialization"): one map
phase, one shuffle, one reduce phase — no cascading rounds.  Reducer
regions are assigned by order-k marginal batching in the spirit of
Afrati et al. ("Computing Marginals Using MapReduce"): marginals
(cuboids) of the same order are batched together and dealt greedily by
estimated size, bounding each reducer's input share.

Entry points:

* :func:`~repro.mr.engine.mapreduce_materialize` — ``store build
  --backend mapreduce``: write leaf cuboids (minsup 1) into a store,
  optionally sharded;
* :func:`~repro.mr.engine.mapreduce_iceberg_cube` — ``cube --backend
  mapreduce``: a full in-memory :class:`~repro.core.result.CubeResult`
  at an iceberg threshold (verification-scale; the store path is the
  one that scales).

Both run on :func:`repro.parallel.local.supervised_map`, so worker
crashes and hangs (including injected ``--faults``) are retried from
the durable spill files rather than restarting the job.
"""

from .engine import (
    DEFAULT_MEMORY_BUDGET,
    MIN_MEMORY_BUDGET,
    MRStats,
    mapreduce_iceberg_cube,
    mapreduce_materialize,
)
from .planner import MRPlan, plan_mapreduce

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "MIN_MEMORY_BUDGET",
    "MRPlan",
    "MRStats",
    "mapreduce_iceberg_cube",
    "mapreduce_materialize",
    "plan_mapreduce",
]

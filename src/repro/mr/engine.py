"""Driver, mapper and reducer of the one-round MapReduce backend.

Execution shape (one shuffle round, as in Sundararajan & Yan):

1. **Map** — every input split becomes one map task.  The mapper
   streams the split's chunks, packs each row's codes into one 63-bit
   key, and for every leaf cuboid of the BUC processing tree combines
   ``(leaf, masked key) -> (count, sum)`` into a bounded hash table.
   Crossing the memory budget spills the table as sorted, hash
   -partitioned run files (see :mod:`repro.mr.shuffle`).
2. **Shuffle** — nothing moves: runs are already partitioned on the
   shared filesystem.  The driver records each task's winning attempt
   and sweeps orphaned attempt directories left by killed workers.
3. **Reduce** — reducer ``p`` merge-streams the sorted runs of
   partition ``p``.  In *store* mode each leaf streams through a
   :class:`~repro.serve.store.LeafWriter` (atomic per-leaf commit) at
   minsup 1; in *cube* mode cells pass the iceberg threshold and each
   leaf's immediate prefix cuboid is aggregated from the same sorted
   stream, so the two phases together cover the entire lattice
   (every non-leaf cuboid is some leaf minus its last dimension, and
   the apex comes from the map-phase totals).

Both phases run under :func:`repro.parallel.local.supervised_map`:
killed or hung workers (including ``--faults`` injection) are retried,
and because run files are durable and attempt-scoped, a re-executed
task reproduces its output byte-for-byte.
"""

import math
import os
import shutil
import signal
import tempfile
import time

from .. import obs
from ..core.result import CubeResult
from ..core.thresholds import as_threshold
from ..data.stream import RelationStream, stream_from_relation
from ..errors import PlanError
from ..parallel.local import _HANG_SECONDS, SupervisorLog, supervised_map
from ..serve.cluster import stable_shard_hash
from ..serve.store import CubeStore, LeafWriter
from .planner import plan_mapreduce
from .shuffle import ENTRY_BYTES, attempt_dir, merge_runs, spill

#: Default combiner budget per mapper (bytes of estimated table
#: footprint before a spill).
DEFAULT_MEMORY_BUDGET = 64 << 20

#: Floor on the budget: below this the combiner cannot hold even a few
#: thousand entries and the run explodes into tiny spills.
MIN_MEMORY_BUDGET = 64 << 10


class MRStats:
    """Aggregated per-phase telemetry of one MapReduce run.

    Assembled by the driver from the stats each worker returns (the
    obs runtime is not installed in child processes, so workers report
    and the driver records).
    """

    __slots__ = ("map_tasks", "reduce_tasks", "rows", "spills", "runs",
                 "spill_bytes", "spill_records", "orphan_files_swept",
                 "runs_merged", "records_reduced", "cells_written",
                 "map_seconds", "reduce_seconds", "map_recovery",
                 "reduce_recovery")

    def __init__(self):
        self.map_tasks = 0
        self.reduce_tasks = 0
        self.rows = 0
        self.spills = 0
        self.runs = 0
        self.spill_bytes = 0
        self.spill_records = 0
        self.orphan_files_swept = 0
        self.runs_merged = 0
        self.records_reduced = 0
        self.cells_written = 0
        self.map_seconds = 0.0
        self.reduce_seconds = 0.0
        self.map_recovery = SupervisorLog()
        self.reduce_recovery = SupervisorLog()

    def __repr__(self):
        return ("MRStats(maps=%d, reduces=%d, rows=%d, spills=%d, "
                "spill_bytes=%d, cells=%d)"
                % (self.map_tasks, self.reduce_tasks, self.rows, self.spills,
                   self.spill_bytes, self.cells_written))


# ----------------------------------------------------------------------
# map side (runs in worker processes)
# ----------------------------------------------------------------------

_MAP_STATE = None


def _init_map_worker(plan, shuffle_dir, memory_budget, row_positions,
                     require_nonnegative, fault_plan):
    global _MAP_STATE
    _MAP_STATE = (plan, shuffle_dir, memory_budget, row_positions,
                  require_nonnegative, fault_plan)


def _map_task(job):
    """Stream one split into combined, partitioned, sorted spill runs.

    Returns ``(task_id, stats)`` where stats carries the winning
    attempt, the run files written (paths relative to the shuffle
    directory) and the split's row/measure totals.
    """
    task_id, attempt, split, traceparent = job
    with obs.activate(traceparent):
        return _map_task_impl(task_id, attempt, split)


def _map_task_impl(task_id, attempt, split):
    (plan, shuffle_dir, memory_budget, row_positions,
     require_nonnegative, fault_plan) = _MAP_STATE
    directive = (fault_plan.local_fault(task_id, attempt)
                 if fault_plan is not None else None)
    if directive == "hang":
        time.sleep(_HANG_SECONDS)
    kill_pending = directive == "kill"

    directory = attempt_dir(shuffle_dir, task_id, attempt)
    os.makedirs(directory, exist_ok=True)
    max_entries = max(1024, memory_budget // ENTRY_BYTES)
    pack = plan.packing.pack
    mask_pairs = plan.mask_pairs()
    partition_of_leaf = plan.partition_of_leaf
    n_partitions = plan.n_reducers

    acc = {}
    runs = []
    spill_no = 0
    rows_total = 0
    measure_total = 0.0
    emitted = 0

    def flush():
        nonlocal spill_no
        written = spill(acc, partition_of_leaf, directory, spill_no,
                        n_partitions)
        spill_no += 1
        acc.clear()
        for partition, path, nbytes, records in written:
            runs.append((partition,
                         os.path.relpath(path, shuffle_dir),
                         nbytes, records))
        if kill_pending:
            # The injected crash fires only after the spill's run files
            # are durable — re-execution must recover from disk state a
            # real mid-task SIGKILL would leave behind.
            os.kill(os.getpid(), signal.SIGKILL)

    for rows, measures in split.iter_chunks():
        if require_nonnegative and measures and min(measures) < 0:
            raise PlanError(
                "threshold requires non-negative measures; split %d "
                "contains a negative measure" % split.split_id)
        if row_positions is None:
            for row, measure in zip(rows, measures):
                key = pack(row)
                for shifted_id, mask in mask_pairs:
                    composite = shifted_id | (key & mask)
                    entry = acc.get(composite)
                    if entry is None:
                        acc[composite] = [1, measure]
                    else:
                        entry[0] += 1
                        entry[1] += measure
        else:
            for row, measure in zip(rows, measures):
                key = pack([row[p] for p in row_positions])
                for shifted_id, mask in mask_pairs:
                    composite = shifted_id | (key & mask)
                    entry = acc.get(composite)
                    if entry is None:
                        acc[composite] = [1, measure]
                    else:
                        entry[0] += 1
                        entry[1] += measure
        rows_total += len(rows)
        measure_total += math.fsum(measures)
        emitted += len(rows) * len(mask_pairs)
        # Budget check at chunk boundaries: the table can overshoot by
        # at most one chunk's worth of new entries (documented in
        # DESIGN 6.11).
        if len(acc) >= max_entries:
            flush()

    if acc or not runs:
        flush()
    elif kill_pending:
        os.kill(os.getpid(), signal.SIGKILL)

    return task_id, {
        "attempt": attempt,
        "rows": rows_total,
        "measure": measure_total,
        "emitted": emitted,
        "spills": spill_no,
        "runs": runs,
    }


# ----------------------------------------------------------------------
# reduce side (runs in worker processes)
# ----------------------------------------------------------------------

_REDUCE_STATE = None


def _init_reduce_worker(plan, shuffle_dir, mode, out_dir, shards, threshold,
                        n_map_tasks, fault_plan):
    global _REDUCE_STATE
    _REDUCE_STATE = (plan, shuffle_dir, mode, out_dir, shards, threshold,
                     n_map_tasks, fault_plan)


def _leaf_directory(out_dir, shards, leaf):
    if shards is None:
        return out_dir, None
    shard_index = stable_shard_hash(leaf) % shards
    return os.path.join(out_dir, "shard-%d" % shard_index), shard_index


def _reduce_task(job):
    """Merge one partition's runs and emit its leaves.

    Store mode returns ``{leaf: (shard_index, manifest_entry)}`` after
    committing each leaf file atomically; cube mode returns the
    qualifying cells of every cuboid the partition owns (each leaf plus
    its immediate prefix).
    """
    reduce_id, attempt, payload, traceparent = job
    with obs.activate(traceparent):
        return _reduce_task_impl(reduce_id, attempt, payload)


def _reduce_task_impl(reduce_id, attempt, payload):
    partition, run_relpaths = payload
    (plan, shuffle_dir, mode, out_dir, shards, threshold,
     n_map_tasks, fault_plan) = _REDUCE_STATE
    directive = (fault_plan.local_fault(reduce_id, attempt)
                 if fault_plan is not None else None)
    if directive == "hang":
        time.sleep(_HANG_SECONDS)
    kill_pending = directive == "kill"

    paths = [os.path.join(shuffle_dir, rel) for rel in run_relpaths]
    merged = merge_runs(paths)
    stats = {"attempt": attempt, "runs_merged": len(paths),
             "records": 0, "cells": 0}

    if mode == "store":
        entries = {}
        writer = None
        current_leaf_id = None
        committed = 0

        def commit():
            nonlocal writer, committed
            leaf = plan.leaves[current_leaf_id]
            _dir, shard_index = _leaf_directory(out_dir, shards, leaf)
            entries[leaf] = (shard_index, writer.commit())
            writer = None
            committed += 1
            if kill_pending and committed == 1:
                # Die only after the first leaf is durably committed:
                # re-execution must overwrite it byte-identically and
                # finish the rest.
                os.kill(os.getpid(), signal.SIGKILL)

        for leaf_id, key, count, total in merged:
            stats["records"] += 1
            if leaf_id != current_leaf_id:
                if writer is not None:
                    commit()
                current_leaf_id = leaf_id
                leaf = plan.leaves[leaf_id]
                directory, _shard = _leaf_directory(out_dir, shards, leaf)
                os.makedirs(directory, exist_ok=True)
                writer = LeafWriter(directory, leaf)
            cell = plan.packing.unpack(key, plan.leaf_positions[leaf_id])
            writer.add(cell, count, total)
            stats["cells"] += 1
        if writer is not None:
            commit()
        if kill_pending:
            os.kill(os.getpid(), signal.SIGKILL)
        return reduce_id, {"stats": stats, "entries": entries}

    # cube mode: threshold the leaf cells, and fold each leaf's sorted
    # stream into its immediate prefix cuboid as groups close.
    cells_out = []
    current_leaf_id = None
    leaf_cells = prefix_cells = None
    prefix_mask = prefix_positions = positions = None
    prefix_key = None
    prefix_agg = None

    def close_prefix():
        if prefix_positions and prefix_agg is not None:
            if threshold.qualifies(prefix_agg[0], prefix_agg[1]):
                prefix_cells.append(
                    (plan.packing.unpack(prefix_key, prefix_positions),
                     prefix_agg[0], prefix_agg[1]))

    def close_leaf():
        close_prefix()
        leaf = plan.leaves[current_leaf_id]
        if leaf_cells:
            cells_out.append((leaf, leaf_cells))
        if prefix_positions and prefix_cells:
            cells_out.append((leaf[:-1], prefix_cells))

    for leaf_id, key, count, total in merged:
        stats["records"] += 1
        if leaf_id != current_leaf_id:
            if current_leaf_id is not None:
                close_leaf()
            current_leaf_id = leaf_id
            positions = plan.leaf_positions[leaf_id]
            prefix_positions = positions[:-1]
            prefix_mask = plan.packing.mask_for(prefix_positions)
            leaf_cells = []
            prefix_cells = []
            prefix_key = None
            prefix_agg = None
        if threshold.qualifies(count, total):
            leaf_cells.append(
                (plan.packing.unpack(key, positions), count, total))
            stats["cells"] += 1
        if prefix_positions:
            group = key & prefix_mask
            if group != prefix_key:
                close_prefix()
                prefix_key = group
                prefix_agg = [count, total]
            else:
                prefix_agg[0] += count
                prefix_agg[1] += total
    if current_leaf_id is not None:
        close_leaf()
    if kill_pending:
        os.kill(os.getpid(), signal.SIGKILL)
    return reduce_id, {"stats": stats, "cells": cells_out}


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def _as_stream(source, dims):
    """Accept a Relation or a RelationStream; return (stream, dims)."""
    if isinstance(source, RelationStream):
        stream = source
        dims = tuple(dims) if dims is not None else stream.dims
        missing = [d for d in dims if d not in stream.dims]
        if missing:
            raise PlanError(
                "dims %r not in stream schema %r" % (missing, stream.dims))
        return stream, dims
    stream = stream_from_relation(source, dims=dims)
    return stream, stream.dims


def _sweep_orphans(shuffle_dir, winning):
    """Remove attempt directories that lost to a re-execution.

    ``winning`` maps task id to its winning attempt.  Returns the
    number of orphaned files (runs and torn temps) deleted.
    """
    removed = 0
    try:
        names = sorted(os.listdir(shuffle_dir))
    except OSError:
        return 0
    for name in names:
        if not name.startswith("map-"):
            continue
        try:
            task_part, attempt_part = name.split("-a", 1)
            task_id = int(task_part[len("map-"):])
            attempt = int(attempt_part)
        except ValueError:
            continue
        if winning.get(task_id) == attempt:
            continue
        path = os.path.join(shuffle_dir, name)
        removed += len(os.listdir(path))
        shutil.rmtree(path, ignore_errors=True)
    return removed


def _run_phases(stream, dims, mode, out_dir, shards, threshold, workers,
                reducers, memory_budget, fault_plan, batch_timeout,
                shuffle_dir, keep_shuffle):
    """The shared map -> sweep -> reduce pipeline; returns
    ``(plan, totals, reduce_results, stats)``."""
    if memory_budget is None:
        memory_budget = DEFAULT_MEMORY_BUDGET
    if memory_budget < MIN_MEMORY_BUDGET:
        raise PlanError(
            "--mr-memory-budget must be >= %d bytes, got %d"
            % (MIN_MEMORY_BUDGET, memory_budget))
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    if reducers is None:
        reducers = max(1, workers)

    cards = stream.cardinality_list(dims)
    plan = plan_mapreduce(dims, cards, reducers, n_rows=stream.n_rows)
    row_positions = None
    if dims != stream.dims:
        index_of = {name: i for i, name in enumerate(stream.dims)}
        row_positions = [index_of[name] for name in dims]
    require_nonnegative = (threshold is not None
                           and threshold.requires_nonnegative_measures)

    own_shuffle = shuffle_dir is None
    if own_shuffle:
        shuffle_dir = tempfile.mkdtemp(prefix="repro-mr-")
    else:
        os.makedirs(shuffle_dir, exist_ok=True)

    stats = MRStats()
    active = obs.current()
    try:
        # ---- map phase -------------------------------------------------
        map_jobs = {i: split for i, split in enumerate(stream.splits)}
        started = time.perf_counter()
        with obs.span("mr.map", tasks=len(map_jobs)) as span:
            map_results = supervised_map(
                map_jobs, workers, _map_task, _init_map_worker,
                (plan, shuffle_dir, memory_budget, row_positions,
                 require_nonnegative, fault_plan),
                fault_plan=fault_plan, batch_timeout=batch_timeout,
                log=stats.map_recovery, name="mr_map",
            )
            stats.map_seconds = time.perf_counter() - started
            stats.map_tasks = len(map_results)
            for result in map_results.values():
                stats.rows += result["rows"]
                stats.spills += result["spills"]
                stats.runs += len(result["runs"])
                for _p, _rel, nbytes, records in result["runs"]:
                    stats.spill_bytes += nbytes
                    stats.spill_records += records
            if span:
                span.set(rows=stats.rows, spills=stats.spills,
                         spill_bytes=stats.spill_bytes,
                         seconds=round(stats.map_seconds, 6))
        totals = (
            sum(map_results[t]["rows"] for t in sorted(map_results)),
            math.fsum(map_results[t]["measure"] for t in sorted(map_results)),
        )

        # ---- sweep orphaned attempts ----------------------------------
        winning = {t: r["attempt"] for t, r in map_results.items()}
        stats.orphan_files_swept = _sweep_orphans(shuffle_dir, winning)
        if stats.orphan_files_swept:
            obs.event("mr.orphan_sweep", files=stats.orphan_files_swept)
        if active is not None:
            active.registry.counter(
                "repro_mr_spill_bytes_total",
                "Bytes written to shuffle run files.").inc(stats.spill_bytes)
            active.registry.counter(
                "repro_mr_orphan_files_total",
                "Orphaned spill files swept after the map phase.",
            ).inc(stats.orphan_files_swept)

        # ---- reduce phase ----------------------------------------------
        by_partition = {}
        for task_id in sorted(map_results):
            for partition, rel, _b, _r in map_results[task_id]["runs"]:
                by_partition.setdefault(partition, []).append(rel)
        n_map_tasks = len(map_jobs)
        reduce_jobs = {
            n_map_tasks + partition: (partition, sorted(relpaths))
            for partition, relpaths in by_partition.items()
        }
        started = time.perf_counter()
        with obs.span("mr.reduce", tasks=len(reduce_jobs)) as span:
            reduce_results = supervised_map(
                reduce_jobs, workers, _reduce_task, _init_reduce_worker,
                (plan, shuffle_dir, mode, out_dir, shards, threshold,
                 n_map_tasks, fault_plan),
                fault_plan=fault_plan, batch_timeout=batch_timeout,
                log=stats.reduce_recovery, name="mr_reduce",
            ) if reduce_jobs else {}
            stats.reduce_seconds = time.perf_counter() - started
            stats.reduce_tasks = len(reduce_results)
            for result in reduce_results.values():
                stats.runs_merged += result["stats"]["runs_merged"]
                stats.records_reduced += result["stats"]["records"]
                stats.cells_written += result["stats"]["cells"]
            if span:
                span.set(runs_merged=stats.runs_merged,
                         cells=stats.cells_written,
                         seconds=round(stats.reduce_seconds, 6))
        if active is not None:
            active.registry.counter(
                "repro_mr_runs_merged_total",
                "Shuffle runs merged by reducers.").inc(stats.runs_merged)
            active.registry.counter(
                "repro_mr_cells_total",
                "Cells emitted by reducers.").inc(stats.cells_written)

        # A reducer killed mid-leaf leaves its LeafWriter's ``.tmp.<pid>``
        # file behind in the output directory; the winning attempt wrote
        # its own temp under a different pid, so the orphan survives the
        # commit.  Sweep them before the store is assembled.
        if out_dir is not None:
            torn = 0
            for dirpath, _dirnames, filenames in os.walk(out_dir):
                for filename in filenames:
                    if ".tmp." in filename:
                        os.unlink(os.path.join(dirpath, filename))
                        torn += 1
            if torn:
                stats.orphan_files_swept += torn
                obs.event("mr.torn_leaf_sweep", files=torn)
        return plan, totals, reduce_results, stats
    finally:
        if own_shuffle and not keep_shuffle:
            shutil.rmtree(shuffle_dir, ignore_errors=True)


def mapreduce_materialize(source, directory, dims=None, workers=None,
                          reducers=None, memory_budget=None, shards=None,
                          fault_plan=None, batch_timeout=None,
                          shuffle_dir=None, keep_shuffle=False):
    """``store build --backend mapreduce``: leaves straight to disk.

    ``source`` is a :class:`~repro.data.relation.Relation` or (the
    point of this backend) a :class:`~repro.data.stream.RelationStream`
    whose rows never fit in memory.  Leaves are written at minsup 1 —
    the store's usual contract, so any later threshold is answerable.

    With ``shards=N`` a single pass routes each leaf into
    ``directory/shard-<i>`` by the stable covering-leaf hash and one
    manifest is assembled per shard (same placement and totals as N
    separate ``CubeStore.build(shard=(i, N))`` runs).  Returns the open
    :class:`~repro.serve.store.CubeStore` — or the list of per-shard
    stores — with the run's :class:`MRStats` attached as ``.mr_stats``.
    """
    stream, dims = _as_stream(source, dims)
    if shards is not None and shards < 1:
        raise PlanError("shards must be >= 1, got %r" % (shards,))
    directory = str(directory)
    plan, totals, reduce_results, stats = _run_phases(
        stream, dims, "store", directory, shards, None, workers, reducers,
        memory_budget, fault_plan, batch_timeout, shuffle_dir, keep_shuffle)

    entries = {}
    for result in reduce_results.values():
        entries.update(result["entries"])
    # A leaf receives no record only when the input is empty; the store
    # contract still wants every leaf present.
    for leaf in plan.leaves:
        if leaf not in entries:
            leaf_dir, shard_index = _leaf_directory(directory, shards, leaf)
            os.makedirs(leaf_dir, exist_ok=True)
            entries[leaf] = (shard_index, LeafWriter(leaf_dir, leaf).commit())

    total_rows, total_measure = totals
    if shards is None:
        store = CubeStore.assemble(
            directory, dims, {leaf: entry for leaf, (_s, entry) in
                              entries.items()},
            total_rows=total_rows, total_measure=total_measure)
        store.mr_stats = stats
        return store
    stores = []
    for index in range(shards):
        shard_entries = {leaf: entry for leaf, (s, entry) in entries.items()
                         if s == index}
        store = CubeStore.assemble(
            os.path.join(directory, "shard-%d" % index), dims, shard_entries,
            total_rows=total_rows, total_measure=total_measure,
            shard=(index, shards))
        store.mr_stats = stats
        stores.append(store)
    return stores


def mapreduce_iceberg_cube(source, dims=None, minsup=1, workers=None,
                           reducers=None, memory_budget=None,
                           fault_plan=None, batch_timeout=None,
                           shuffle_dir=None, keep_shuffle=False):
    """``cube --backend mapreduce``: a full iceberg CubeResult.

    Collects every qualifying cell in memory, so this is the
    verification-scale entry point; use :func:`mapreduce_materialize`
    when the *output* is also bigger than RAM.  The returned result has
    the run's :class:`MRStats` as ``.mr_stats`` and the supervisor's
    recovery log as ``.recovery`` (matching the local backend).
    """
    stream, dims = _as_stream(source, dims)
    threshold = as_threshold(minsup)
    plan, totals, reduce_results, stats = _run_phases(
        stream, dims, "cube", None, None, threshold, workers, reducers,
        memory_budget, fault_plan, batch_timeout, shuffle_dir, keep_shuffle)

    result = CubeResult(dims)
    for reduce_id in sorted(reduce_results):
        for cuboid, cells in reduce_results[reduce_id]["cells"]:
            for cell, count, total in cells:
                result.add_cell(cuboid, cell, count, total)
    total_rows, total_measure = totals
    if total_rows and threshold.qualifies(total_rows, total_measure):
        result.add_cell((), (), total_rows, total_measure)
    result.mr_stats = stats
    result.recovery = stats.map_recovery
    return result

"""The external shuffle: sorted spill runs on disk, k-way merged.

Mappers combine emissions in a bounded hash table; when the table's
estimated footprint crosses the memory budget it is *spilled*: sorted
once by composite key (leaf id, then packed cell key), partitioned by
the plan's leaf-to-reducer assignment, and written as one sorted run
file per touched partition.  Reducers later :func:`merge_runs` their
partition's runs in a single heap pass.

Durability protocol (what makes crash recovery work):

* every run is written to a ``.tmp`` name and ``os.replace``d into its
  final ``.run`` name — a SIGKILLed writer can leave ``.tmp`` debris
  but never a short ``.run`` file;
* runs live in *attempt-scoped* directories
  (``map-<task>-a<attempt>/``), so a re-executed map task can never
  mix its output with its dead predecessor's;
* the driver records the winning attempt per task and sweeps every
  other attempt directory before the reduce phase starts.

Record format is fixed 28-byte little-endian structs
(``leaf_id:i32, key:i64, count:i64, sum:f64``) — seek-free sequential
reads, no parsing, byte-stable across re-executions.

Merge determinism: :func:`merge_runs` keys the heap on
``(leaf_id, key)`` only, and ``heapq.merge`` breaks ties by iterator
position — so as long as callers pass run paths in sorted order (they
do), equal keys always fold in the same order and float sums are
bit-identical run to run.
"""

import heapq
import os
import struct
from operator import itemgetter

from .planner import KEY_MASK, LEAF_ID_SHIFT

#: One shuffle record: leaf id, packed cell key, count, measure sum.
RECORD = struct.Struct("<iqqd")
RECORD_SIZE = RECORD.size

#: Estimated resident bytes per combiner entry (int key + [count, sum]
#: list + dict slot overhead, CPython 3.x); the budget divides by this.
ENTRY_BYTES = 110

#: Records read/written per batch (keeps I/O syscall-sized without
#: holding a whole run in memory).
_IO_BATCH = 4_096


def attempt_dir(shuffle_dir, task_id, attempt):
    """The attempt-scoped directory one map task writes its runs into."""
    return os.path.join(shuffle_dir, "map-%05d-a%d" % (task_id, attempt))


def run_name(partition, spill_no):
    return "part-%03d-run-%04d.run" % (partition, spill_no)


def write_run(path, records):
    """Write sorted records durably; returns the byte size.

    The ``.tmp`` + ``os.replace`` dance means a crash mid-write leaves
    no ``.run`` file at all — readers never see a torn run.
    """
    pack = RECORD.pack
    tmp = "%s.tmp.%d" % (path, os.getpid())
    nbytes = 0
    with open(tmp, "wb") as handle:
        batch = []
        for record in records:
            batch.append(pack(*record))
            if len(batch) >= _IO_BATCH:
                nbytes += handle.write(b"".join(batch))
                batch = []
        if batch:
            nbytes += handle.write(b"".join(batch))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return nbytes


def iter_run(path):
    """Yield ``(leaf_id, key, count, sum)`` records from one run file."""
    unpack_from = RECORD.unpack_from
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(RECORD_SIZE * _IO_BATCH)
            if not chunk:
                return
            for offset in range(0, len(chunk), RECORD_SIZE):
                yield unpack_from(chunk, offset)


def merge_runs(paths):
    """Merge sorted runs, summing aggregates on equal (leaf_id, key).

    Yields aggregated ``(leaf_id, key, count, sum)`` in global sorted
    order.  Pass ``paths`` in sorted order for deterministic float
    accumulation (see module docstring).
    """
    streams = [iter_run(path) for path in paths]
    merged = heapq.merge(*streams, key=itemgetter(0, 1))
    current = None
    for leaf_id, key, count, total in merged:
        if current is None:
            current = [leaf_id, key, count, total]
        elif current[0] == leaf_id and current[1] == key:
            current[2] += count
            current[3] += total
        else:
            yield tuple(current)
            current = [leaf_id, key, count, total]
    if current is not None:
        yield tuple(current)


def spill(acc, partition_of_leaf, directory, spill_no, n_partitions):
    """Externalize one combiner table as per-partition sorted runs.

    ``acc`` maps composite keys to ``[count, sum]``.  Returns
    ``[(partition, path, bytes, records), ...]`` for the runs written
    (empty partitions write nothing).  The caller clears ``acc``.
    """
    buckets = [[] for _ in range(n_partitions)]
    for composite in sorted(acc):
        entry = acc[composite]
        leaf_id = composite >> LEAF_ID_SHIFT
        buckets[partition_of_leaf[leaf_id]].append(
            (leaf_id, composite & KEY_MASK, entry[0], entry[1]))
    written = []
    for partition, records in enumerate(buckets):
        if not records:
            continue
        path = os.path.join(directory, run_name(partition, spill_no))
        nbytes = write_run(path, records)
        written.append((partition, path, nbytes, len(records)))
    return written

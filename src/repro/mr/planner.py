"""Key layout and reducer-region assignment for the MapReduce backend.

A plan fixes, before any row is read:

* the 63-bit packed-key layout over the input's declared code bounds
  (:class:`~repro.core.columnar.KeyPacking` — MSB-first in dimension
  order, so masking a key down to any dimension subset preserves the
  subset's lexicographic order);
* the leaf cuboids of the BUC processing tree (every cuboid ending in
  the last dimension) with stable integer ids;
* which reducer partition owns each leaf — *order-k marginal batching*
  (Afrati et al.): marginals of the same order ``k`` are considered
  together, largest estimated size first, each placed on the currently
  least-loaded reducer.  Batching by order keeps reducers' input
  shares comparable (same-order marginals have similar row coverage),
  and greedy-by-size within an order bounds the spread.

Everything in the plan is small and picklable: it ships to every
mapper and reducer through the pool initializer.
"""

from ..core.columnar import MAX_KEY_BITS, KeyPacking, bits_for
from ..errors import PlanError
from ..online.materialize import leaf_cuboids

#: Bit position separating the leaf id from the packed cell key in the
#: combiner's composite int key (packed keys use at most 63 bits).
LEAF_ID_SHIFT = MAX_KEY_BITS

#: Mask recovering the packed cell key from a composite key.
KEY_MASK = (1 << LEAF_ID_SHIFT) - 1


class MRPlan:
    """Immutable layout shared by the driver, mappers and reducers."""

    __slots__ = ("dims", "cardinalities", "packing", "leaves",
                 "leaf_positions", "leaf_masks", "partition_of_leaf",
                 "n_reducers")

    def __init__(self, dims, cardinalities, packing, leaves, leaf_positions,
                 leaf_masks, partition_of_leaf, n_reducers):
        self.dims = dims
        self.cardinalities = cardinalities
        self.packing = packing
        self.leaves = leaves
        self.leaf_positions = leaf_positions
        self.leaf_masks = leaf_masks
        self.partition_of_leaf = partition_of_leaf
        self.n_reducers = n_reducers

    def mask_pairs(self):
        """``(leaf_id << LEAF_ID_SHIFT, mask)`` pairs for the mapper's
        inner loop: composite key = ``shifted_id | (row_key & mask)``."""
        return [(leaf_id << LEAF_ID_SHIFT, mask)
                for leaf_id, mask in enumerate(self.leaf_masks)]

    def __repr__(self):
        return "MRPlan(dims=%d, leaves=%d, reducers=%d, key_bits=%d)" % (
            len(self.dims), len(self.leaves), self.n_reducers,
            self.packing.total_bits)


def _estimate_cells(positions, cardinalities, n_rows):
    """Upper bound on a cuboid's cell count: min(rows, product of
    bounds).  Crude but monotone in order ``k``, which is all the
    batching needs."""
    product = 1
    for p in positions:
        product *= max(1, cardinalities[p])
        if n_rows is not None and product >= n_rows:
            return n_rows
    return product


def plan_mapreduce(dims, cardinalities, n_reducers, n_rows=None):
    """Build the :class:`MRPlan` for one MapReduce run.

    ``cardinalities`` are per-dimension *code bounds* (every code
    strictly below its bound), aligned with ``dims``.  Raises
    :class:`~repro.errors.PlanError` when the bounds overflow the
    63-bit packed-key budget — the MapReduce backend has no unpacked
    fallback, so the error says exactly how far over budget the input
    is.
    """
    dims = tuple(dims)
    cardinalities = [int(c) for c in cardinalities]
    if len(cardinalities) != len(dims):
        raise PlanError(
            "got %d cardinalities for %d dimensions"
            % (len(cardinalities), len(dims)))
    if n_reducers < 1:
        raise PlanError("n_reducers must be >= 1, got %r" % (n_reducers,))
    packing = KeyPacking.plan(cardinalities)
    if packing is None:
        need = sum(bits_for(card) for card in cardinalities)
        raise PlanError(
            "mapreduce backend cannot pack %d dimensions into %d-bit keys "
            "(%d bits needed); drop dimensions or reduce cardinalities"
            % (len(dims), MAX_KEY_BITS, need))

    position_of = {name: i for i, name in enumerate(dims)}
    leaves = sorted(leaf_cuboids(dims))
    leaf_positions = [tuple(position_of[name] for name in leaf)
                      for leaf in leaves]
    leaf_masks = [packing.mask_for(positions) for positions in leaf_positions]

    # Order-k batching: orders descending (high-order marginals are the
    # big ones), size-descending within an order, always onto the
    # least-loaded partition.  Ties break on partition id, so the
    # assignment is deterministic.
    loads = [0] * n_reducers
    partition_of_leaf = [0] * len(leaves)
    by_order = {}
    for leaf_id, positions in enumerate(leaf_positions):
        by_order.setdefault(len(positions), []).append(leaf_id)
    for order in sorted(by_order, reverse=True):
        batch = sorted(
            by_order[order],
            key=lambda lid: (-_estimate_cells(leaf_positions[lid],
                                              cardinalities, n_rows),
                             leaves[lid]),
        )
        for leaf_id in batch:
            partition = min(range(n_reducers), key=lambda p: (loads[p], p))
            partition_of_leaf[leaf_id] = partition
            loads[partition] += _estimate_cells(
                leaf_positions[leaf_id], cardinalities, n_rows)

    return MRPlan(dims, cardinalities, packing, leaves, leaf_positions,
                  leaf_masks, partition_of_leaf, n_reducers)

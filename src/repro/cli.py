"""Command-line interface: ``repro-cube``.

Six subcommands cover the library's everyday uses:

* ``cube``    — compute an iceberg cube from a CSV (or a synthetic
  weather workload) with any of the five parallel algorithms, print a
  summary and optionally export the cells; ``compute`` is an alias,
  and ``--backend local`` swaps the simulated cluster for a real
  process pool over the columnar kernel with a shared-memory data
  plane (``--workers``, ``--batch-size``/``--calibrate``,
  ``--no-shm``, ``--self-test``);
* ``query``   — answer one iceberg group-by and print its cells;
* ``recipe``  — print the Figure 4.7 recommendation for a workload;
* ``bench``   — run one of the paper's experiments by name (or list
  them) and print the thesis-style table;
* ``store``   — ``store build`` precomputes the leaf cuboids into a
  persistent on-disk :class:`~repro.serve.store.CubeStore`;
  ``--shards N`` splits the leaves across N shard stores
  (``DIR/shard-0`` .. ``DIR/shard-N-1``) by stable covering-leaf hash;
* ``serve``   — serve iceberg queries from a built store over HTTP
  (cache + telemetry included); ``--shard i/N`` declares which shard
  this replica serves (refused if the store disagrees);
* ``router``  — front N shards x R replicas as one logical cube:
  failover across replicas, generation-pinned fan-out, structured 503
  when a whole shard is down.

Examples::

    repro-cube cube --csv sales.csv --minsup 5 --algorithm pt --processors 8
    repro-cube cube --weather 20000 --dims 7 --minsup 2 --export out/
    repro-cube compute --weather 50000 --dims 8 --minsup 5 --backend local \
        --workers 4 --batch-size 4 --self-test
    repro-cube query --csv sales.csv --group-by city,item --min-sum 1000
    repro-cube bench fig_4_2_scalability
    repro-cube store build --weather 20000 --dims 6 --out /tmp/cube-store
    repro-cube store build --weather 20000 --dims 6 --out /tmp/cluster --shards 3
    repro-cube serve --store /tmp/cube-store --port 8642
    repro-cube serve --store /tmp/cube-store --wal --compact-after 8
    repro-cube store compact --store /tmp/cube-store
    repro-cube serve --store /tmp/cluster/shard-0 --shard 0/3 --port 9001
    repro-cube router --shard http://h1:9001,http://h2:9001 \
        --shard http://h3:9002,http://h4:9002 --port 8642

``cube``, ``store build`` and ``serve`` all accept ``--trace-out FILE``
(write a Chrome ``trace_event`` JSON of the run, viewable in
``chrome://tracing`` or Perfetto) and ``--metrics`` (print Prometheus
text-format metrics on exit); ``serve`` additionally exposes the live
registry at ``GET /metrics``::

    repro-cube cube --weather 5000 --dims 5 --minsup 4 --trace-out t.json
"""

import argparse
import sys

from .backends import backend_names, resolve_backend
from .cluster.spec import cluster1, cluster2, cluster3, paper_cluster
from .core.export import save_cube
from .core.thresholds import AndThreshold, CountThreshold, SumThreshold
from .data.io import load_csv
from .data.weather import baseline_dims, weather_relation
from .errors import ReproError
from .queries import iceberg_cube, iceberg_query
from .recipe import recommend_for

CLUSTERS = {
    "cluster1": cluster1,
    "cluster2": cluster2,
    "cluster3": cluster3,
    "paper": paper_cluster,
}


def build_parser():
    """The argparse tree for ``repro-cube``."""
    parser = argparse.ArgumentParser(
        prog="repro-cube",
        description="Iceberg-cube computation with a simulated PC cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cube = sub.add_parser("cube", aliases=["compute"],
                          help="compute a full iceberg cube")
    _add_input_options(cube)
    _add_threshold_options(cube)
    cube.add_argument("--backend", default="simulated", metavar="NAME",
                      help="compute backend: %s (default: simulated; "
                           "unknown names fail listing the choices)"
                           % ", ".join(backend_names("cube")))
    cube.add_argument("--algorithm", default="pt",
                      choices=["rp", "bpp", "asl", "pt", "aht"],
                      help="parallel algorithm (default: pt, the recipe's default)")
    cube.add_argument("--processors", type=int, default=8)
    cube.add_argument("--cluster", default="cluster1", choices=sorted(CLUSTERS))
    cube.add_argument("--workers", type=int, default=None,
                      help="local backend: worker processes "
                           "(default: CPU count, capped at 8)")
    cube.add_argument("--batch-size", type=int, default=None,
                      help="local backend: fixed subtree tasks per pool "
                           "batch (default: auto — a calibration pass "
                           "packs cost-balanced batches)")
    cube.add_argument("--calibrate", action="store_true",
                      help="local backend: force auto-calibrated batching "
                           "even when --batch-size is given")
    cube.add_argument("--no-shm", action="store_true",
                      help="local backend: disable the shared-memory data "
                           "plane (frame and results ride the pool pipe "
                           "as pickles)")
    cube.add_argument("--kernel", default="auto",
                      choices=["auto", "columnar", "numpy"],
                      help="local backend: refinement kernel (default auto)")
    cube.add_argument("--self-test", action="store_true",
                      help="validate the result against the naive oracle "
                           "before printing the summary")
    cube.add_argument("--export", metavar="DIR",
                      help="write the result cells under DIR (one CSV per cuboid)")
    cube.add_argument("--faults", metavar="SPEC",
                      help="inject faults into the run; SPEC is "
                           "comma-separated directives: 'crash:P@T' (processor "
                           "P dies at T seconds), 'slow:PxF' or 'slow:PxF@T' "
                           "(P runs F times slower from T), 'rate=R' (transient "
                           "task-failure probability), 'retries=N', 'backoff=S', "
                           "'seed=N'.  On --backend local the same plan drives "
                           "REAL worker processes: crash directives SIGKILL the "
                           "worker holding that batch, slow directives hang it "
                           "past --batch-timeout, and the supervisor recovers. "
                           "Example: --faults crash:0@0.05,slow:1x4,rate=0.1,seed=7")
    cube.add_argument("--batch-timeout", type=float, default=None,
                      metavar="SECONDS",
                      help="local backend: declare a batch hung after this many "
                           "seconds without any pool progress and retry it "
                           "elsewhere (default 300)")
    _add_mr_options(cube)
    _add_obs_options(cube)

    query = sub.add_parser("query", help="answer one iceberg group-by")
    _add_input_options(query)
    _add_threshold_options(query)
    query.add_argument("--group-by", required=True,
                       help="comma-separated dimension names")
    query.add_argument("--aggregate", default="sum",
                       choices=["count", "sum", "avg", "min", "max", "median"])
    query.add_argument("--limit", type=int, default=20,
                       help="print at most this many cells (default 20)")

    recipe = sub.add_parser("recipe", help="recommend an algorithm (Figure 4.7)")
    _add_input_options(recipe)

    bench = sub.add_parser("bench", help="run one paper experiment by name")
    bench.add_argument("experiment", nargs="?",
                       help="experiment function name; omit to list them")

    store = sub.add_parser("store", help="manage a persistent cube store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    build = store_sub.add_parser(
        "build", help="precompute leaf cuboids into an on-disk store")
    _add_input_options(build)
    build.add_argument("--out", required=True, metavar="DIR",
                       help="directory to write the store under")
    build.add_argument("--backend", default="local", metavar="NAME",
                       help="leaf precompute backend: %s (default: local; "
                            "'mapreduce' streams splits through a "
                            "spill-to-disk shuffle for inputs larger than "
                            "RAM)" % ", ".join(backend_names("store-build")))
    build.add_argument("--workers", type=int, default=None,
                       help="worker processes: mapreduce backend defaults "
                            "to CPU count (capped at 8); the local backend "
                            "aggregates in-process unless this (or "
                            "--calibrate) asks for the pool")
    build.add_argument("--calibrate", action="store_true",
                       help="local backend: aggregate the leaves on the "
                            "auto-tuned process pool (implies --workers = "
                            "CPU count when --workers is not given)")
    build.add_argument("--no-shm", action="store_true",
                       help="local backend: keep the pool but ship the "
                            "frame and results as pickles instead of "
                            "shared-memory segments")
    _add_mr_options(build)
    build.add_argument("--processors", type=int, default=8)
    build.add_argument("--cluster", default="cluster1", choices=sorted(CLUSTERS))
    build.add_argument("--shards", type=int, default=None, metavar="N",
                       help="split the leaf cuboids across N shard stores "
                            "(written under OUT/shard-0 .. OUT/shard-N-1, "
                            "placement by stable covering-leaf hash) instead "
                            "of one monolithic store")
    _add_obs_options(build)
    compact = store_sub.add_parser(
        "compact", help="fold a WAL-enabled store's pending delta batches "
                        "into its sorted leaf runs")
    compact.add_argument("--store", required=True, metavar="DIR",
                         help="directory written by 'store build'")
    compact.add_argument("--verify", default="quick",
                         choices=["off", "quick", "full"],
                         help="store integrity check on open (default quick)")
    _add_obs_options(compact)

    serve = sub.add_parser("serve",
                           help="serve iceberg queries from a store over HTTP")
    serve.add_argument("--store", required=True, metavar="DIR",
                       help="directory written by 'store build'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 picks a free one; default 8642)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="LRU query-cache capacity (0 disables)")
    serve.add_argument("--threads", type=int, default=8,
                       help="query worker threads (default 8)")
    serve.add_argument("--max-pending", type=int, default=None, metavar="N",
                       help="admitted-but-unfinished query bound; past it the "
                            "server sheds with HTTP 429 (default 16*threads, "
                            "min 64)")
    serve.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                       help="default per-query deadline in milliseconds; past "
                            "it the query fails with HTTP 504 (default: none)")
    serve.add_argument("--breaker-failures", type=int, default=5, metavar="N",
                       help="consecutive recompute failures that trip the "
                            "fallback circuit breaker open (default 5)")
    serve.add_argument("--breaker-reset", type=float, default=5.0,
                       metavar="SECONDS",
                       help="breaker cool-down before half-open probes "
                            "(default 5)")
    serve.add_argument("--verify", default="quick",
                       choices=["off", "quick", "full"],
                       help="store integrity check on open: 'quick' compares "
                            "leaf sizes, 'full' re-hashes every leaf "
                            "(default quick)")
    serve.add_argument("--self-test", type=int, metavar="N", default=None,
                       help="fire N HTTP queries at the served store, print "
                            "the stats and exit (smoke mode)")
    serve.add_argument("--shard", default=None, metavar="I/N",
                       help="serve as shard I of an N-shard cluster; refused "
                            "unless the store was built as exactly that shard "
                            "(e.g. --shard 0/3)")
    serve.add_argument("--wal", action="store_true",
                       help="open the store with the write-ahead log: "
                            "appends become durable, idempotent "
                            "(batch_id-deduplicated) delta batches, "
                            "compacted in the background")
    serve.add_argument("--compact-after", type=int, default=None, metavar="N",
                       help="WAL batches buffered before a background "
                            "compaction folds them into the sorted leaf "
                            "runs (default 8; requires --wal)")
    _add_obs_options(serve)

    router = sub.add_parser(
        "router", help="front sharded replica servers as one logical cube")
    router.add_argument("--shard", action="append", required=True,
                        metavar="URL[,URL...]", dest="shards",
                        help="one shard's replica base URLs, comma-separated; "
                             "repeat the flag once per shard, in shard order")
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one; default 8642)")
    router.add_argument("--timeout", type=float, default=10.0,
                        metavar="SECONDS",
                        help="per-replica request timeout (default 10)")
    router.add_argument("--health-interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="background /healthz sweep period; 0 disables "
                             "(default 2)")
    router.add_argument("--breaker-failures", type=int, default=3, metavar="N",
                        help="consecutive replica failures that trip its "
                             "breaker open (default 3)")
    router.add_argument("--breaker-reset", type=float, default=2.0,
                        metavar="SECONDS",
                        help="replica breaker cool-down before half-open "
                             "probes (default 2)")
    router.add_argument("--generation-attempts", type=int, default=4,
                        metavar="N",
                        help="fan-out rounds allowed to pin one store "
                             "generation before answering 503 (default 4)")
    router.add_argument("--append-retries", type=int, default=3, metavar="N",
                        help="delivery attempts per replica per append "
                             "(retries only run against WAL-enabled "
                             "replicas, where idempotence keys make them "
                             "safe; default 3)")
    router.add_argument("--append-backoff", type=float, default=0.05,
                        metavar="SECONDS",
                        help="base of the capped full-jitter backoff "
                             "between append retries (default 0.05)")
    router.add_argument("--append-backoff-cap", type=float, default=1.0,
                        metavar="SECONDS",
                        help="backoff ceiling between append retries "
                             "(default 1)")
    router.add_argument("--append-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for one append fan-out, "
                             "retries included (default: none)")
    router.add_argument("--no-anti-entropy", action="store_true",
                        help="disable the health sweep's anti-entropy "
                             "repair (re-delivering missing WAL batches "
                             "to generation-lagging replicas)")
    router.add_argument("--self-test", type=int, metavar="N", default=None,
                        help="fire N queries through the router, print its "
                             "health and stats, and exit (smoke mode)")
    router.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log routed requests slower than MS with an "
                             "exemplar trace id (GET /stats, slow_queries)")
    _add_obs_options(router)
    return parser


def _add_obs_options(parser):
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="record tracing spans and write a Chrome "
                             "trace_event JSON to FILE on exit (open in "
                             "chrome://tracing or ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        help="print Prometheus text-format metrics on exit")


def _setup_obs(args):
    """Install the observability layer when the run asked for it."""
    if not (args.trace_out or args.metrics):
        return None
    from . import obs

    return obs.install()


def _finish_obs(args, active, out):
    """Export what ``_setup_obs`` collected, then switch back off."""
    if active is None:
        return
    from . import obs

    try:
        if args.trace_out:
            active.tracer.export_chrome(args.trace_out)
            dropped = active.tracer.dropped
            print("trace written    : %s (%d spans%s)"
                  % (args.trace_out, len(active.tracer),
                     ", %d dropped" % dropped if dropped else ""), file=out)
        if args.metrics:
            out.write(active.registry.to_prometheus())
    finally:
        obs.uninstall()


def _add_input_options(parser):
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", metavar="PATH",
                        help="input relation (last column is the measure)")
    source.add_argument("--weather", type=int, metavar="N",
                        help="synthetic weather workload with N tuples")
    parser.add_argument("--dims", default=None,
                        help="comma-separated dimension names, or a count for "
                             "--weather (default: all)")


def _add_threshold_options(parser):
    parser.add_argument("--minsup", type=int, default=1,
                        help="HAVING COUNT(*) >= N (default 1)")
    parser.add_argument("--min-sum", type=float, default=None,
                        help="HAVING SUM(measure) >= S (combines with --minsup)")


def _add_mr_options(parser):
    parser.add_argument("--mr-reducers", type=int, default=None, metavar="N",
                        help="mapreduce backend: reducer partitions owning "
                             "lattice regions (default: the worker count)")
    parser.add_argument("--mr-memory-budget", default=None, metavar="BYTES",
                        help="mapreduce backend: per-mapper combine-table "
                             "budget before spilling sorted runs to disk; "
                             "accepts k/m/g suffixes, e.g. 64m (default 64m)")


def parse_bytes(text):
    """Parse a byte count like ``64m``, ``1g`` or ``65536``."""
    body = str(text).strip().lower()
    multiplier = 1
    if body and body[-1] in "kmg":
        multiplier = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}[body[-1]]
        body = body[:-1]
    try:
        return int(float(body) * multiplier)
    except ValueError:
        raise ReproError(
            "bad byte count %r; expected e.g. 65536, 64m or 1g" % (text,)
        ) from None


def _load_relation(args):
    if args.csv:
        relation = load_csv(args.csv)
        dims = tuple(args.dims.split(",")) if args.dims else None
        return relation, dims
    if args.dims and args.dims.isdigit():
        dims = baseline_dims(int(args.dims))
    elif args.dims:
        dims = tuple(args.dims.split(","))
    else:
        dims = None
    return weather_relation(args.weather, dims=dims), None


def _load_stream(args):
    """Streaming input for the mapreduce backend.

    Weather and synthetic inputs come as regenerable row splits that
    never materialize the relation; CSV inputs are loaded (they are on
    disk already) and wrapped split by split.
    """
    from .data.stream import stream_from_relation, weather_stream

    if args.csv:
        relation = load_csv(args.csv)
        dims = tuple(args.dims.split(",")) if args.dims else None
        return stream_from_relation(relation, dims=dims)
    if args.dims and args.dims.isdigit():
        dims = baseline_dims(int(args.dims))
    elif args.dims:
        dims = tuple(args.dims.split(","))
    else:
        dims = None
    return weather_stream(args.weather, dims=dims)


def parse_fault_spec(spec):
    """Parse a ``--faults`` directive string into a :class:`FaultPlan`."""
    from .cluster.faults import FaultPlan, NodeCrash, Slowdown
    from .errors import ClusterError

    crashes, slowdowns, options = [], [], {}
    for token in filter(None, (t.strip() for t in spec.split(","))):
        try:
            if token.startswith("crash:"):
                proc, at = token[len("crash:"):].split("@")
                crashes.append(NodeCrash(int(proc), float(at)))
            elif token.startswith("slow:"):
                body = token[len("slow:"):]
                when = 0.0
                if "@" in body:
                    body, at = body.split("@")
                    when = float(at)
                proc, factor = body.split("x")
                slowdowns.append(Slowdown(int(proc), float(factor), start=when))
            elif "=" in token:
                key, value = token.split("=", 1)
                mapped = {"rate": ("failure_rate", float),
                          "retries": ("max_retries", int),
                          "backoff": ("backoff_s", float),
                          "seed": ("seed", int)}.get(key)
                if mapped is None:
                    raise ValueError("unknown option %r" % key)
                options[mapped[0]] = mapped[1](value)
            else:
                raise ValueError("unknown directive")
        except (ValueError, IndexError) as exc:
            raise ClusterError(
                "bad --faults directive %r (%s); expected crash:P@T, slow:PxF[@T], "
                "rate=R, retries=N, backoff=S or seed=N" % (token, exc)
            ) from None
    return FaultPlan(crashes=crashes, slowdowns=slowdowns, **options)


def _threshold(args):
    conditions = []
    if args.minsup > 1 or args.min_sum is None:
        conditions.append(CountThreshold(max(1, args.minsup)))
    if args.min_sum is not None:
        conditions.append(SumThreshold(args.min_sum))
    if len(conditions) == 1:
        return conditions[0]
    return AndThreshold(*conditions)


def _decode_cell(relation, dims, cell):
    if relation.encoder is not None:
        return relation.encoder.decode_cell(dims, cell)
    return cell


def cmd_cube(args, out):
    """Compute a full iceberg cube and print a summary (optionally export)."""
    resolve_backend(args.backend, require={"cube"})
    threshold = _threshold(args)
    active = _setup_obs(args)
    try:
        if args.backend == "mapreduce":
            return _cmd_cube_mapreduce(args, threshold, out)
        relation, dims = _load_relation(args)
        if args.backend == "local":
            return _cmd_cube_local(args, relation, dims, threshold, out)
        return _cmd_cube_simulated(args, relation, dims, threshold, out)
    finally:
        _finish_obs(args, active, out)


def _cmd_cube_simulated(args, relation, dims, threshold, out):
    """The default path: the paper's simulated PC cluster."""
    cluster = CLUSTERS[args.cluster](args.processors)
    fault_plan = parse_fault_spec(args.faults) if args.faults else None
    run = iceberg_cube(relation, dims=dims, minsup=threshold,
                       algorithm=args.algorithm, cluster_spec=cluster,
                       fault_plan=fault_plan)
    if args.self_test:
        _oracle_check(relation, dims, threshold, run.result, out)
    print("algorithm        : %s" % run.algorithm, file=out)
    print("input            : %d tuples, dims %s"
          % (len(relation), ", ".join(run.result.dims)), file=out)
    print("threshold        : HAVING %s" % threshold.describe(), file=out)
    print("qualifying cells : %d in %d cuboids"
          % (run.result.total_cells(), len(run.result.cuboids)), file=out)
    print("output volume    : %.1f KB" % (run.result.output_bytes() / 1024), file=out)
    print("simulated wall   : %.3f s on %d x %s (%s)"
          % (run.makespan, len(cluster), cluster.machines[0].name,
             cluster.network.name), file=out)
    print("load imbalance   : %.2f" % run.simulation.load_imbalance(), file=out)
    if fault_plan is not None:
        sim = run.simulation
        print("recovery         : %d retries, %d reassignments, %.3f s work lost"
              % (sim.retries, sim.reassignments, sim.lost_work_seconds), file=out)
        failed = sim.failed_processors
        print("failed nodes     : %s (survivors finished at %.3f s)"
              % (list(failed) if failed else "none", sim.degraded_makespan),
              file=out)
    if args.export:
        manifest = save_cube(run.result, args.export)
        print("exported         : %d cuboid files under %s"
              % (len(manifest["cuboids"]), args.export), file=out)
    return 0


def _cmd_cube_local(args, relation, dims, threshold, out):
    """The ``--backend local`` path: a real process pool, real seconds."""
    import time as _time

    from .parallel.local import multiprocess_iceberg_cube

    fault_plan = parse_fault_spec(args.faults) if args.faults else None
    batch_size = None if args.calibrate else args.batch_size
    started = _time.perf_counter()
    result = multiprocess_iceberg_cube(
        relation, dims=dims, minsup=threshold, workers=args.workers,
        batch_size=batch_size, kernel=args.kernel,
        fault_plan=fault_plan, batch_timeout=args.batch_timeout,
        use_shm=not args.no_shm,
    )
    elapsed = _time.perf_counter() - started
    if args.self_test:
        _oracle_check(relation, dims, threshold, result, out)
    print("backend          : local process pool (%s kernel)"
          % args.kernel, file=out)
    print("input            : %d tuples, dims %s"
          % (len(relation), ", ".join(result.dims)), file=out)
    print("threshold        : HAVING %s" % threshold.describe(), file=out)
    print("qualifying cells : %d in %d cuboids"
          % (result.total_cells(), len(result.cuboids)), file=out)
    print("output volume    : %.1f KB" % (result.output_bytes() / 1024), file=out)
    print("wall clock       : %.3f s (%s workers, batch size %s%s)"
          % (elapsed, args.workers if args.workers else "auto",
             batch_size if batch_size else "auto",
             ", no shm" if args.no_shm else ""), file=out)
    recovery = getattr(result, "recovery", None)
    if fault_plan is not None and recovery is not None:
        print("recovery         : %d retries, %d pool respawns, %d worker "
              "crashes, %d stalls, %d segments swept, %.3f s backoff"
              % (recovery.retries, recovery.respawns, recovery.worker_crashes,
                 recovery.stalls, recovery.segments_swept,
                 recovery.backoff_seconds), file=out)
    if args.export:
        manifest = save_cube(result, args.export)
        print("exported         : %d cuboid files under %s"
              % (len(manifest["cuboids"]), args.export), file=out)
    return 0


def _cmd_cube_mapreduce(args, threshold, out):
    """The ``--backend mapreduce`` path: one shuffle round, real disk."""
    from .mr import mapreduce_iceberg_cube

    stream = _load_stream(args)
    fault_plan = parse_fault_spec(args.faults) if args.faults else None
    budget = (parse_bytes(args.mr_memory_budget)
              if args.mr_memory_budget else None)
    result = mapreduce_iceberg_cube(
        stream, minsup=threshold, workers=args.workers,
        reducers=args.mr_reducers, memory_budget=budget,
        fault_plan=fault_plan, batch_timeout=args.batch_timeout,
    )
    if args.self_test:
        _oracle_check(stream.materialize(), None, threshold, result, out)
    stats = result.mr_stats
    print("backend          : mapreduce (one round, spill-to-disk shuffle)",
          file=out)
    print("input            : %d tuples in %d splits, dims %s"
          % (stream.n_rows, len(stream.splits), ", ".join(result.dims)),
          file=out)
    print("threshold        : HAVING %s" % threshold.describe(), file=out)
    print("map phase        : %d tasks, %d spills, %.1f KB shuffled in %.3f s"
          % (stats.map_tasks, stats.spills, stats.spill_bytes / 1024,
             stats.map_seconds), file=out)
    print("reduce phase     : %d tasks, %d runs merged in %.3f s"
          % (stats.reduce_tasks, stats.runs_merged, stats.reduce_seconds),
          file=out)
    print("qualifying cells : %d in %d cuboids"
          % (result.total_cells(), len(result.cuboids)), file=out)
    print("output volume    : %.1f KB" % (result.output_bytes() / 1024),
          file=out)
    if fault_plan is not None:
        for phase, recovery in (("map", stats.map_recovery),
                                ("reduce", stats.reduce_recovery)):
            print("%s recovery     %s: %d retries, %d pool respawns, %d worker "
                  "crashes, %d stalls"
                  % (phase, " " * (6 - len(phase)), recovery.retries,
                     recovery.respawns, recovery.worker_crashes,
                     recovery.stalls), file=out)
        print("orphans swept    : %d spill files" % stats.orphan_files_swept,
              file=out)
    if args.export:
        manifest = save_cube(result, args.export)
        print("exported         : %d cuboid files under %s"
              % (len(manifest["cuboids"]), args.export), file=out)
    return 0


def _oracle_check(relation, dims, threshold, result, out):
    """Validate ``result`` cell-for-cell against the naive oracle."""
    from .core.naive import naive_iceberg_cube

    expected = naive_iceberg_cube(relation, dims or relation.dims, threshold)
    problems = result.diff(expected, limit=3)
    if problems:
        raise ReproError(
            "self-test FAILED against the naive oracle: %s"
            % "; ".join(problems)
        )
    print("self-test        : PASSED (%d cells match the naive oracle)"
          % expected.total_cells(), file=out)


def cmd_query(args, out):
    """Answer one iceberg group-by and print its top cells."""
    relation, _dims = _load_relation(args)
    group_by = tuple(args.group_by.split(","))
    threshold = _threshold(args)
    cells = iceberg_query(relation, group_by, having=threshold,
                          aggregate=args.aggregate)
    print("SELECT %s, %s(measure) GROUP BY %s HAVING %s"
          % (", ".join(group_by), args.aggregate.upper(), ", ".join(group_by),
             threshold.describe()), file=out)
    ranked = sorted(cells.items(), key=lambda kv: (-(kv[1] or 0), kv[0]))
    for cell, value in ranked[: args.limit]:
        decoded = _decode_cell(relation, group_by, cell)
        print("  %-50s %s" % (" / ".join(map(str, decoded)), value), file=out)
    if len(ranked) > args.limit:
        print("  ... and %d more cells" % (len(ranked) - args.limit), file=out)
    print("%d qualifying cells" % len(cells), file=out)
    return 0


def cmd_recipe(args, out):
    """Print the Figure 4.7 recommendation for the workload."""
    relation, dims = _load_relation(args)
    picks = recommend_for(relation, dims)
    print("workload: %d tuples, %d dims, cardinality product %.2e"
          % (len(relation), len(dims or relation.dims),
             relation.cardinality_product(dims)), file=out)
    print("recommended: %s" % ", ".join(picks), file=out)
    return 0


def cmd_bench(args, out):
    """Run (or list) one of the paper's experiments."""
    from .bench import ALL_ABLATIONS, ALL_EXPERIMENTS, ALL_EXTENSIONS

    registry = {fn.__name__: fn for fn in
                ALL_EXPERIMENTS + ALL_ABLATIONS + ALL_EXTENSIONS}
    if not args.experiment:
        print("available experiments:", file=out)
        for name in registry:
            print("  %s" % name, file=out)
        return 0
    fn = registry.get(args.experiment)
    if fn is None:
        print("unknown experiment %r; run 'repro-cube bench' to list them"
              % args.experiment, file=out)
        return 2
    result = fn()
    print(result.format_table(), file=out)
    return 0 if result.passed else 1


def _store_workers(args):
    """``store build``'s local-backend worker count.

    ``--workers N`` is explicit; ``--calibrate`` alone asks for the
    auto-tuned pool at CPU count (capped like the cube backend); neither
    keeps the in-process leaf aggregation.
    """
    if args.workers is not None:
        return args.workers
    if args.calibrate:
        import os as _os
        return min(8, _os.cpu_count() or 1)
    return None


def cmd_store(args, out):
    """Build a persistent cube store from an input relation."""
    from .serve import CubeStore

    if args.store_command == "compact":
        active = _setup_obs(args)
        try:
            return _cmd_store_compact(args, out)
        finally:
            _finish_obs(args, active, out)
    resolve_backend(args.backend, require={"store-build"})
    active = _setup_obs(args)
    try:
        if args.backend == "mapreduce":
            return _cmd_store_mapreduce(args, out)
        relation, dims = _load_relation(args)
        cluster = CLUSTERS[args.cluster](args.processors)
        if args.shards is not None:
            return _cmd_store_sharded(args, relation, dims, cluster, out)
        store = CubeStore.build(relation, args.out, dims=dims,
                                cluster_spec=cluster, backend=args.backend,
                                workers=_store_workers(args),
                                use_shm=not args.no_shm)
        print("built cube store : %s (%s backend)" % (args.out, args.backend),
              file=out)
        print("input            : %d tuples, dims %s"
              % (len(relation), ", ".join(store.dims)), file=out)
        print("stored leaves    : %d (sorted, prefix-indexed), %d cells"
              % (len(store.leaves), store.total_cells()), file=out)
        print("generation       : %d" % store.generation, file=out)
        store.close()
        return 0
    finally:
        _finish_obs(args, active, out)


def _cmd_store_compact(args, out):
    """``store compact``: fold pending WAL batches into the leaf runs."""
    from .serve import CubeStore

    store = CubeStore.open(args.store, verify=args.verify, wal=True)
    try:
        stats = store.wal_stats()
        pending = stats["pending_batches"]
        print("store            : %s (generation %d)"
              % (args.store, store.generation), file=out)
        replayed = store.recovery.get("wal_replayed", 0)
        if replayed:
            print("wal recovery     : %d batch(es) replayed" % replayed,
                  file=out)
        compacted = store.compact()
        print("compacted        : %d pending batch(es) (%d were already "
              "folded)" % (compacted, pending - compacted
                           if pending >= compacted else 0), file=out)
        print("wal              : %d bytes across %d record(s) remain"
              % (store.wal.nbytes(), len(store.wal)), file=out)
    finally:
        store.close()
    return 0


def _cmd_store_mapreduce(args, out):
    """``store build --backend mapreduce``: one pass, streaming input.

    Sharded builds (``--shards N``) still run a *single* MapReduce
    round — reducers route each leaf file into its shard directory and
    one manifest is assembled per shard.
    """
    from .mr import mapreduce_materialize

    stream = _load_stream(args)
    if args.shards is not None and args.shards < 1:
        raise ReproError("--shards must be >= 1, got %d" % args.shards)
    budget = (parse_bytes(args.mr_memory_budget)
              if args.mr_memory_budget else None)
    built = mapreduce_materialize(
        stream, args.out, workers=args.workers, reducers=args.mr_reducers,
        memory_budget=budget, shards=args.shards,
    )
    stores = built if isinstance(built, list) else [built]
    stats = stores[0].mr_stats
    print("built cube store : %s (mapreduce backend)" % args.out, file=out)
    print("input            : %d tuples in %d splits, dims %s"
          % (stream.n_rows, len(stream.splits), ", ".join(stores[0].dims)),
          file=out)
    print("map phase        : %d tasks, %d spills, %.1f KB shuffled in %.3f s"
          % (stats.map_tasks, stats.spills, stats.spill_bytes / 1024,
             stats.map_seconds), file=out)
    print("reduce phase     : %d tasks, %d runs merged, %d cells in %.3f s"
          % (stats.reduce_tasks, stats.runs_merged, stats.cells_written,
             stats.reduce_seconds), file=out)
    if args.shards is None:
        print("stored leaves    : %d (sorted, prefix-indexed), %d cells"
              % (len(stores[0].leaves), stores[0].total_cells()), file=out)
    else:
        for index, store in enumerate(stores):
            print("  shard %d/%d      : %s — %d leaves, %d cells"
                  % (index, args.shards,
                     "%s/shard-%d" % (args.out, index),
                     len(store.leaves), store.total_cells()), file=out)
        print("serve each shard : repro-cube serve --store %s/shard-I "
              "--shard I/%d" % (args.out, args.shards), file=out)
    for store in stores:
        store.close()
    return 0


def _cmd_store_sharded(args, relation, dims, cluster, out):
    """Build one shard store per shard under ``OUT/shard-<i>``."""
    import os

    from .serve import CubeStore, ShardMap

    if args.shards < 1:
        raise ReproError("--shards must be >= 1, got %d" % args.shards)
    shard_map = ShardMap(dims or relation.dims, args.shards)
    print("sharded build    : %d shards over %d leaf cuboids (%s backend)"
          % (args.shards, len(shard_map.leaves), args.backend), file=out)
    for index in range(args.shards):
        directory = os.path.join(args.out, "shard-%d" % index)
        store = CubeStore.build(relation, directory, dims=dims,
                                cluster_spec=cluster, backend=args.backend,
                                shard=(index, args.shards),
                                workers=_store_workers(args),
                                use_shm=not args.no_shm)
        print("  shard %d/%d      : %s — %d leaves, %d cells"
              % (index, args.shards, directory, len(store.leaves),
                 store.total_cells()), file=out)
        store.close()
    print("serve each shard : repro-cube serve --store %s/shard-I --shard I/%d"
          % (args.out, args.shards), file=out)
    return 0


def cmd_serve(args, out):
    """Serve iceberg queries from a built store over HTTP."""
    active = _setup_obs(args)
    try:
        return _cmd_serve(args, out)
    finally:
        _finish_obs(args, active, out)


def _cmd_serve(args, out):
    from .serve import CircuitBreaker, CubeServer, CubeStore

    if args.compact_after is not None and not args.wal:
        raise ReproError("--compact-after requires --wal")
    if args.wal:
        kwargs = {"wal": True}
        if args.compact_after is not None:
            kwargs["compact_after"] = args.compact_after
        store = CubeStore.open(args.store, verify=args.verify, **kwargs)
    else:
        store = CubeStore.open(args.store, verify=args.verify)
    if args.shard is not None:
        from .serve import ShardMap

        try:
            index, of = (int(part) for part in args.shard.split("/"))
        except ValueError:
            raise ReproError(
                "--shard must look like I/N (e.g. 0/3), got %r" % args.shard
            ) from None
        ShardMap(store.dims, of).validate_store(store, index)
        print("shard            : %d/%d (placement validated)" % (index, of),
              file=out)
    recovery = getattr(store, "recovery", None)
    if recovery and (recovery.get("rolled_forward")
                     or recovery.get("orphans_removed")
                     or recovery.get("salvaged")):
        print("store recovery   : rolled_forward=%s, %d orphans removed, "
              "%d leaves salvaged"
              % (recovery["rolled_forward"], len(recovery["orphans_removed"]),
                 len(recovery["salvaged"])), file=out)
    if args.wal:
        stats = store.wal_stats()
        print("wal              : enabled (%d batch(es) replayed on open, "
              "compaction after %d)"
              % (recovery.get("wal_replayed", 0) if recovery else 0,
                 stats["compact_after"]), file=out)
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    server = CubeServer(store, cache_size=args.cache_size,
                        max_workers=args.threads,
                        max_pending=args.max_pending,
                        default_deadline_s=deadline_s,
                        breaker=CircuitBreaker(
                            failure_threshold=args.breaker_failures,
                            reset_after_s=args.breaker_reset))
    endpoint = server.serve_http(host=args.host, port=args.port)
    print("serving cube store %s" % args.store, file=out)
    print("dims   : %s" % ", ".join(store.dims), file=out)
    print("leaves : %d   rows : %d" % (len(store.leaves), store.total_rows),
          file=out)
    print("admission limit  : %d pending queries%s"
          % (server.gate.limit,
             ", %.0f ms default deadline" % args.deadline_ms
             if args.deadline_ms else ""), file=out)
    print("listening on %s (GET /query /point /stats /metrics /cuboids "
          "/healthz)" % endpoint.url, file=out)
    try:
        if args.self_test is not None:
            _serve_self_test(args.self_test, endpoint, store, out)
        else:
            endpoint.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.close()
        store.close()
    return 0


def _serve_self_test(n_queries, endpoint, store, out):
    """Fire queries at the live endpoint and print the resulting stats."""
    import json
    from urllib.request import urlopen

    if getattr(store, "shard", None) is not None:
        # A shard store answers only the cuboids whose covering leaf it
        # holds; anything else belongs to a sibling shard.
        cuboids = [c for c in store.owned_cuboids() if c]
    else:
        cuboids = [(dim,) for dim in store.dims] + [store.leaves[0]]
    answered = 0
    for i in range(max(1, n_queries)):
        cuboid = cuboids[i % len(cuboids)]
        url = "%s/query?cuboid=%s&minsup=%d" % (
            endpoint.url, ",".join(cuboid), 1 + (i % 2))
        with urlopen(url) as response:
            payload = json.loads(response.read())
        answered += 1
        if "error" in payload:
            print("self-test error: %s" % payload["error"], file=out)
            return
    with urlopen(endpoint.url + "/stats") as response:
        stats = json.loads(response.read())
    print("self-test        : %d HTTP queries answered" % answered, file=out)
    print("cache hit rate   : %.2f (%d hits, %d misses)"
          % (stats["cache"]["hit_rate"], stats["cache"]["hits"],
             stats["cache"]["misses"]), file=out)
    print("latency p50/p95  : %.3f / %.3f ms"
          % (stats["telemetry"]["p50_ms"], stats["telemetry"]["p95_ms"]),
          file=out)


def cmd_router(args, out):
    """Front sharded replica servers as one logical cube over HTTP."""
    active = _setup_obs(args)
    try:
        return _cmd_router(args, out)
    finally:
        _finish_obs(args, active, out)


def _cmd_router(args, out):
    from .serve import CircuitBreaker, CubeRouter

    shard_replicas = []
    for spec in args.shards:
        urls = [u.strip() for u in spec.split(",") if u.strip()]
        if not urls:
            raise ReproError("--shard needs at least one replica URL, got %r"
                             % spec)
        shard_replicas.append(urls)
    router = CubeRouter(
        shard_replicas, timeout_s=args.timeout,
        health_interval_s=args.health_interval,
        generation_attempts=args.generation_attempts,
        append_retries=args.append_retries,
        append_backoff_s=args.append_backoff,
        append_backoff_cap_s=args.append_backoff_cap,
        append_deadline_s=args.append_deadline,
        anti_entropy=not args.no_anti_entropy,
        slow_query_s=(args.slow_query_ms / 1000.0
                      if args.slow_query_ms is not None else None),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=args.breaker_failures,
            reset_after_s=args.breaker_reset))
    endpoint = router.serve_http(host=args.host, port=args.port)
    print("routing %d shard(s), replicas per shard: %s"
          % (router.n_shards, [len(r) for r in router.shards]), file=out)
    print("listening on %s (GET /query /point /cube /healthz /stats /metrics "
          "/trace /trace/cluster, POST /append)" % endpoint.url, file=out)
    try:
        if args.self_test is not None:
            _router_self_test(args.self_test, endpoint, router, out)
        else:
            endpoint.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        _export_router_obs(args, router, out)
        router.close()
    return 0


def _export_router_obs(args, router, out):
    """Cluster-level exports for the router's ``--trace-out``/``--metrics``.

    The router's exports cover the *cluster*, not just its own process:
    the trace file is the merged multi-node Chrome trace (one process
    track per replica) and the metrics page is the federated scrape.
    Successful exports null out the args so the generic
    :func:`_finish_obs` does not overwrite them with the local-only
    view; a failed scrape falls back to it instead of losing the run.
    """
    from . import obs

    if obs.current() is None:
        return
    if args.trace_out:
        try:
            merged = router.collect_trace(path=args.trace_out)
        except Exception as exc:
            print("cluster trace collection failed (%s); writing the "
                  "router-local trace instead" % exc, file=out)
        else:
            n_spans = sum(1 for event in merged["traceEvents"]
                          if event.get("ph") in ("X", "i"))
            dropped = merged["otherData"]["dropped_spans"]
            print("cluster trace    : %s (%d events%s)"
                  % (args.trace_out, n_spans,
                     ", %d dropped" % dropped if dropped else ""), file=out)
            args.trace_out = None
    if args.metrics:
        try:
            out.write(router.federated_metrics())
        except Exception as exc:
            print("metrics federation failed (%s); printing router-local "
                  "metrics instead" % exc, file=out)
        else:
            args.metrics = False


def _router_self_test(n_queries, endpoint, router, out):
    """Fire queries through the live router endpoint, print health/stats."""
    import json
    from urllib.request import urlopen

    dims = router._ensure_map().dims
    cuboids = [(dim,) for dim in dims] + [tuple(dims[-2:])]
    answered = failovers = 0
    for i in range(max(1, n_queries)):
        cuboid = cuboids[i % len(cuboids)]
        url = "%s/query?cuboid=%s&minsup=%d" % (
            endpoint.url, ",".join(cuboid), 1 + (i % 2))
        with urlopen(url) as response:
            payload = json.loads(response.read())
        answered += 1
        failovers += payload.get("failovers", 0)
    health = router.health()
    print("self-test        : %d routed queries answered (%d failovers)"
          % (answered, failovers), file=out)
    print("cluster health   : %s (%d shard(s), degraded: %s)"
          % (health["status"], health["n_shards"],
             health["degraded_shards"] or "none"), file=out)


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "cube": cmd_cube,
        "compute": cmd_cube,
        "query": cmd_query,
        "recipe": cmd_recipe,
        "bench": cmd_bench,
        "store": cmd_store,
        "serve": cmd_serve,
        "router": cmd_router,
    }
    try:
        return handlers[args.command](args, out)
    except ReproError as exc:
        print("error: %s" % exc, file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Shared plumbing for the five parallel iceberg-cube algorithms.

All algorithms follow the thesis' two-stage structure: a *planning*
stage that breaks the cube into tasks and decides assignment, and an
*execution* stage that runs tasks on (simulated) processors.  Each
algorithm subclasses :class:`ParallelCubeAlgorithm` and returns a
:class:`ParallelRunResult` carrying the merged cube plus the simulated
schedule, so the evaluation harness can read both answers and timing.
"""

from ..cluster.costmodel import CostModel
from ..cluster.simulator import Cluster
from ..core.result import CubeResult
from ..core.stats import key_compare_weight  # re-exported for the drivers
from ..core.thresholds import as_threshold, validate_measures
from ..data.io import relation_bytes
from ..errors import PlanError

__all__ = [
    "AlgorithmFeatures",
    "ParallelCubeAlgorithm",
    "ParallelRunResult",
    "merged_result",
    "committed_result",
    "add_all_node",
    "input_read_bytes",
    "key_compare_weight",
]


class AlgorithmFeatures:
    """One row of the thesis' Table 1.1."""

    __slots__ = ("writing", "load_balance", "relationship", "decomposition")

    def __init__(self, writing, load_balance, relationship, decomposition):
        self.writing = writing
        self.load_balance = load_balance
        self.relationship = relationship
        self.decomposition = decomposition

    def as_row(self):
        """The Table 1.1 row for this algorithm."""
        return (self.writing, self.load_balance, self.relationship, self.decomposition)


class ParallelRunResult:
    """Outcome of one parallel cube computation."""

    def __init__(self, algorithm, result, simulation, extras=None):
        self.algorithm = algorithm
        self.result = result
        self.simulation = simulation
        self.extras = extras or {}

    @property
    def makespan(self):
        """Simulated wall-clock seconds (the thesis' "wall clock" axis)."""
        return self.simulation.makespan

    def __repr__(self):
        return "ParallelRunResult(%s, %.2fs, %d cells)" % (
            self.algorithm,
            self.makespan,
            self.result.total_cells(),
        )


class ParallelCubeAlgorithm:
    """Base class: subclasses implement :meth:`_run` on a live cluster."""

    name = "?"
    features = None

    def run(self, relation, dims=None, minsup=1, cluster_spec=None, cost_model=None,
            fault_plan=None):
        """Compute the iceberg cube of ``relation`` over ``dims``.

        ``minsup`` may be an integer minimum support or any
        :class:`~repro.core.thresholds.Threshold` (e.g. ``SumThreshold``
        for ``HAVING SUM(measure) >= S``).  ``cluster_spec`` describes
        the (simulated) machines; defaults to the thesis' baseline eight
        PIII-500 nodes.  ``fault_plan`` (a
        :class:`~repro.cluster.faults.FaultPlan`) injects node crashes,
        transient task failures and stragglers; tasks are replayable, so
        the returned cube is exact regardless of the plan as long as one
        processor survives.  Returns a :class:`ParallelRunResult` whose
        ``result`` is exact (validated against the naive baseline in the
        test suite) and whose ``simulation`` holds the modeled timing
        plus, for faulted runs, the recovery telemetry.
        """
        if dims is None:
            dims = relation.dims
        dims = tuple(dims)
        if not dims:
            raise PlanError("need at least one cube dimension")
        minsup = as_threshold(minsup)
        validate_measures(minsup, relation)
        if cluster_spec is None:
            from ..cluster.spec import cluster1

            cluster_spec = cluster1()
        cluster = Cluster(cluster_spec, cost_model or CostModel())
        return self._run(relation, dims, minsup, cluster, fault_plan=fault_plan)

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        raise NotImplementedError


def merged_result(dims, writers):
    """Union the per-processor writers' results into one cube."""
    out = CubeResult(dims)
    for writer in writers:
        out.merge_from(writer.result)
    return out


def committed_result(dims, simulation):
    """Union the *committed* per-task outputs of a fault-tolerant run.

    Under a fault plan every attempt isolates its cells in
    ``TaskExecution.output``; only attempts the scheduler committed
    (exactly one per task) are merged here, which is what makes retried
    and reassigned tasks idempotent — a discarded attempt's cells never
    reach the cube.
    """
    out = CubeResult(dims)
    if simulation.recovery is not None:
        for execution in simulation.recovery.committed:
            if execution.output is not None:
                out.merge_from(execution.output)
    return out


def add_all_node(result, relation, minsup):
    """Record the ``all`` cell (handled outside the task set, as in the
    thesis)."""
    count = len(relation)
    total = sum(relation.measures)
    if as_threshold(minsup).qualifies(count, total):
        result.add_cell((), (), count, total)


def input_read_bytes(relation):
    """Bytes a processor reads to load (its copy/chunk of) the input."""
    return relation_bytes(relation)



"""Algorithm ASL — Affinity Skip List (Section 3.3, Figure 3.8).

ASL puts load balancing first: every cuboid of the lattice is its own
task, scheduled dynamically by a manager.  Cuboid cells live in skip
lists, which stay sorted while being built incrementally — so a worker's
previous skip list can be *reused* for its next task:

* **prefix affinity** — the new cuboid's dimensions are a prefix of the
  previous task's: one ordered scan over the existing skip list
  aggregates it (``prefix-reuse``), no new structure needed;
* **subset affinity** — the new cuboid's dimensions are a subset: the
  existing cells are projected into a fresh skip list
  (``subset-create``), skipping the raw-data scan;
* otherwise the worker scans the (replicated) relation from scratch and
  is handed the remaining cuboid with the most dimensions, to maximize
  future affinity.

Each worker keeps the first skip list it built (a high-dimensional one)
as a fallback affinity source.  ASL cannot prune: a cell below minsup
still contributes to coarser cuboids, so lists keep every cell and the
threshold is applied only when writing (Section 3.4 notes this as ASL's
weakness vs PT).
"""

from ..core.result import CubeResult
from ..core.stats import OpStats
from ..core.writer import ResultWriter
from ..cluster.simulator import TaskExecution, run_dynamic
from ..lattice.lattice import CubeLattice, is_prefix, subset_positions
from ..structures.skiplist import SkipList
from .base import (
    AlgorithmFeatures,
    key_compare_weight,
    ParallelCubeAlgorithm,
    ParallelRunResult,
    add_all_node,
    committed_result,
    input_read_bytes,
    merged_result,
)

SCRATCH = "scratch"
PREFIX_PREV = "prefix-prev"
PREFIX_FIRST = "prefix-first"
SUBSET_PREV = "subset-prev"
SUBSET_FIRST = "subset-first"


class _AslWorkerState:
    """A worker's containers: the first and the most recent skip list."""

    __slots__ = ("writer", "first_list", "first_dims", "prev_list", "prev_dims", "loaded",
                 "seed")

    def __init__(self, writer, seed):
        self.writer = writer
        self.first_list = None
        self.first_dims = None
        self.prev_list = None
        self.prev_dims = None
        self.loaded = False
        self.seed = seed


def choose_mode(task, state):
    """Which reuse path applies for ``task`` given the worker's state.

    Mirrors the manager's preference order in Section 3.3.2: prefix
    affinity first (previous task, then the first task's list), then
    subset affinity, then scratch.
    """
    if state is None:
        return SCRATCH
    if state.prev_dims is not None and is_prefix(task, state.prev_dims):
        return PREFIX_PREV
    if state.first_dims is not None and is_prefix(task, state.first_dims):
        return PREFIX_FIRST
    if state.prev_dims is not None and subset_positions(task, state.prev_dims) is not None:
        return SUBSET_PREV
    if state.first_dims is not None and subset_positions(task, state.first_dims) is not None:
        return SUBSET_FIRST
    return SCRATCH


class ASL(ParallelCubeAlgorithm):
    """Affinity Skip List."""

    name = "ASL"
    features = AlgorithmFeatures("breadth-first", "strong", "top-down", "replicated")

    def __init__(self, affinity=True, cuboids=None):
        """``affinity=False`` is an ablation knob: plain FIFO demand
        scheduling with every task built from scratch.  ``cuboids``
        restricts the task set to the given group-bys (selective
        materialization, Section 5.1, computes only the processing
        tree's leaf cuboids this way)."""
        self.affinity = affinity
        self.cuboids = cuboids

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        lattice = CubeLattice(dims)
        if self.cuboids is None:
            tasks = lattice.cuboids(include_all=False)  # top-down order
        else:
            tasks = [lattice.canonical(c) for c in self.cuboids]
            tasks.sort(key=len, reverse=True)
        writers = []
        read_bytes = input_read_bytes(relation)
        positions = {dim: i for i, dim in enumerate(dims)}
        row_positions = relation.dim_indices(dims)

        def select_task(processor, pending):
            state = processor.state
            if not self.affinity or state is None:
                return 0  # the remaining cuboid with most dimensions
            order = [PREFIX_PREV, PREFIX_FIRST, SUBSET_PREV, SUBSET_FIRST]
            best = None
            best_index = 0
            best_rank = len(order)
            for index, task in enumerate(pending):
                mode = choose_mode(task, state)
                if mode == SCRATCH:
                    continue
                rank = order.index(mode)
                if rank < best_rank or (
                    rank == best_rank and best is not None and len(task) > len(best)
                ):
                    best, best_index, best_rank = task, index, rank
                    if rank == 0:
                        break
            return best_index if best is not None else 0

        qualifies = minsup.qualifies

        def execute(processor, task):
            stats = OpStats()
            state = processor.state
            if state is None:
                writer = ResultWriter(dims)
                state = processor.state = _AslWorkerState(writer, seed=processor.index)
                writers.append(writer)
            mode = choose_mode(task, state) if self.affinity else SCRATCH
            key_len = max(1, len(task))
            if mode == PREFIX_PREV or mode == PREFIX_FIRST:
                source = state.prev_list if mode == PREFIX_PREV else state.first_list
                block = [
                    (cell, count, value)
                    for cell, count, value in source.aggregate_prefix(len(task))
                    if qualifies(count, value)
                ]
                stats.add_structure(len(source) * key_compare_weight(key_len))
                stats.add_groups(len(block))
            else:
                if mode == SUBSET_PREV or mode == SUBSET_FIRST:
                    source = state.prev_list if mode == SUBSET_PREV else state.first_list
                    source_dims = (
                        state.prev_dims if mode == SUBSET_PREV else state.first_dims
                    )
                    pos = subset_positions(task, source_dims)
                    new_list = SkipList(seed=state.seed)
                    for cell, count, value in source:
                        new_list.insert(
                            tuple(cell[i] for i in pos), measure=value, count=count
                        )
                    stats.add_structure(new_list.comparisons * key_compare_weight(key_len) + len(source))
                else:
                    # Scratch: scan the replicated relation into a new list.
                    if not state.loaded:
                        stats.read_tuples += len(relation)
                        state.loaded = True
                    new_list = SkipList(seed=state.seed)
                    task_positions = tuple(row_positions[positions[d]] for d in task)
                    rows = relation.rows
                    measures = relation.measures
                    for i, row in enumerate(rows):
                        new_list.insert(
                            tuple(row[p] for p in task_positions), measure=measures[i]
                        )
                    stats.add_scan(len(rows))
                    stats.add_structure(new_list.comparisons * key_compare_weight(key_len))
                block = [
                    (cell, count, value)
                    for cell, count, value in new_list
                    if qualifies(count, value)
                ]
                stats.add_structure(len(new_list))
                if state.first_list is None:
                    state.first_list = new_list
                    state.first_dims = task
                state.prev_list = new_list
                state.prev_dims = task
            if fault_plan is None:
                state.writer.write_block(task, block)
                output = None
            else:
                # Replayable task: the attempt's cuboid block is isolated
                # so a failed attempt can be discarded without
                # double-counting (the skip lists survive in memory).
                output = CubeResult(dims)
                for cell, count, value in block:
                    output.add_cell(task, cell, count, value)
            return TaskExecution(
                label="".join(task),
                stats=stats,
                cells=len(block),
                bytes_written=len(block) * (len(task) + 2) * 8,
                switches=1 if block else 0,
                read_bytes=read_bytes if mode == SCRATCH and stats.read_tuples else 0,
                output=output,
            )

        simulation = run_dynamic(cluster, tasks, select_task, execute,
                                 fault_plan=fault_plan)
        if fault_plan is not None:
            result = committed_result(dims, simulation)
        else:
            result = merged_result(dims, writers)
        add_all_node(result, relation, minsup)
        return ParallelRunResult(self.name, result, simulation)

"""Algorithm AHT — Affinity Hash Table (Section 3.5.2, Figure 3.13).

AHT is ASL with the skip list swapped for the bit-sliced
:class:`~repro.structures.collapsible_hash.CollapsibleHashTable`.  Tasks
are single cuboids, scheduled dynamically; when the new task's GROUP BY
attributes are a subset of the previous task's, the existing table is
*collapsed* — buckets differing only in the dropped attributes' bits are
merged — instead of re-scanning the raw data.  Prefix affinity is not
treated specially ("AHT does not process prefix affinity differently
from general subset affinity").

Because the index is capped near ``|R|`` buckets (the thesis fixes the
bucket count to the input tuple count), sparse and high-dimensional
cubes force long collision chains; the collision counts the table
reports are what make AHT blow up in Figures 4.4 and 4.6 — the same
failure mode the thesis observed.  Output is unsorted (the thesis
post-sorts on demand at query time), so no sort cost is charged when
writing.
"""

from ..core.result import CubeResult
from ..core.stats import OpStats
from ..core.writer import ResultWriter
from ..cluster.simulator import TaskExecution, run_dynamic
from ..lattice.lattice import CubeLattice, subset_positions
from ..structures.collapsible_hash import CollapsibleHashTable
from .base import (
    AlgorithmFeatures,
    key_compare_weight,
    ParallelCubeAlgorithm,
    ParallelRunResult,
    add_all_node,
    committed_result,
    input_read_bytes,
    merged_result,
)

SCRATCH = "scratch"
SUBSET_PREV = "subset-prev"
SUBSET_FIRST = "subset-first"


class _AhtWorkerState:
    __slots__ = ("writer", "first_table", "first_dims", "prev_table", "prev_dims", "loaded")

    def __init__(self, writer):
        self.writer = writer
        self.first_table = None
        self.first_dims = None
        self.prev_table = None
        self.prev_dims = None
        self.loaded = False


def choose_mode(task, state):
    """Subset affinity against the previous task's table, then the first's."""
    if state is None:
        return SCRATCH
    if state.prev_dims is not None and subset_positions(task, state.prev_dims) is not None:
        return SUBSET_PREV
    if state.first_dims is not None and subset_positions(task, state.first_dims) is not None:
        return SUBSET_FIRST
    return SCRATCH


class AHT(ParallelCubeAlgorithm):
    """Affinity Hash Table."""

    name = "AHT"
    features = AlgorithmFeatures("post-sort", "strong", "top-down", "replicated")

    def __init__(self, bucket_factor=1.0, hash_mode="mod"):
        """``bucket_factor``: hash-table buckets as a multiple of the
        input tuple count (the thesis uses 1.0, and notes that even 10x
        did not save the 13-dimension run).  ``hash_mode``: ``"mod"`` is
        the thesis' naive hash; ``"multiplicative"`` is the improved
        per-field hash its Section 4.9.2 proposes as future work."""
        self.bucket_factor = bucket_factor
        self.hash_mode = hash_mode

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        lattice = CubeLattice(dims)
        tasks = lattice.cuboids(include_all=False)
        writers = []
        read_bytes = input_read_bytes(relation)
        max_buckets = max(2, int(len(relation) * self.bucket_factor))
        cardinalities = relation.cardinalities()
        row_positions = {dim: relation.dim_index(dim) for dim in dims}

        def select_task(processor, pending):
            state = processor.state
            if state is None:
                return 0
            best = None
            best_index = 0
            best_rank = 2
            for index, task in enumerate(pending):
                mode = choose_mode(task, state)
                if mode == SCRATCH:
                    continue
                rank = 0 if mode == SUBSET_PREV else 1
                if rank < best_rank or (
                    rank == best_rank and best is not None and len(task) > len(best)
                ):
                    best, best_index, best_rank = task, index, rank
                    if rank == 0:
                        break
            return best_index if best is not None else 0

        qualifies = minsup.qualifies

        def execute(processor, task):
            stats = OpStats()
            state = processor.state
            if state is None:
                writer = ResultWriter(dims)
                state = processor.state = _AhtWorkerState(writer)
                writers.append(writer)
            mode = choose_mode(task, state)
            key_len = max(1, len(task))
            if mode == SCRATCH:
                if not state.loaded:
                    stats.read_tuples += len(relation)
                    state.loaded = True
                table = CollapsibleHashTable(
                    [cardinalities[d] for d in task], max_buckets,
                    hash_mode=self.hash_mode,
                )
                positions = tuple(row_positions[d] for d in task)
                rows = relation.rows
                measures = relation.measures
                for i, row in enumerate(rows):
                    table.insert(tuple(row[p] for p in positions), measure=measures[i])
                stats.add_scan(len(rows))
            else:
                source = state.prev_table if mode == SUBSET_PREV else state.first_table
                source_dims = state.prev_dims if mode == SUBSET_PREV else state.first_dims
                pos = subset_positions(task, source_dims)
                table = source.collapse(pos)
                stats.add_structure(len(source))
            # Probes cost one hash each; every collision walks one chained
            # entry, i.e. a full key comparison.
            stats.add_structure(table.probes + table.collisions * key_compare_weight(key_len))
            block = [
                (cell, count, value)
                for cell, count, value in table
                if qualifies(count, value)
            ]
            stats.add_structure(len(table))
            if state.first_table is None:
                state.first_table = table
                state.first_dims = task
            state.prev_table = table
            state.prev_dims = task
            if fault_plan is None:
                state.writer.write_block(task, block)
                output = None
            else:
                # Replayable task: isolate the attempt's cuboid block (the
                # hash tables survive in memory for affinity reuse).
                output = CubeResult(dims)
                for cell, count, value in block:
                    output.add_cell(task, cell, count, value)
            return TaskExecution(
                label="".join(task),
                stats=stats,
                cells=len(block),
                bytes_written=len(block) * (len(task) + 2) * 8,
                switches=1 if block else 0,
                read_bytes=read_bytes if mode == SCRATCH and stats.read_tuples else 0,
                output=output,
            )

        simulation = run_dynamic(cluster, tasks, select_task, execute,
                                 fault_plan=fault_plan)
        if fault_plan is not None:
            result = committed_result(dims, simulation)
        else:
            result = merged_result(dims, writers)
        add_all_node(result, relation, minsup)
        return ParallelRunResult(self.name, result, simulation)

"""Algorithm RP — Replicated Parallel BUC (Section 3.1, Figure 3.1).

The straightforward parallelization of BUC: the processing tree's ``m``
dimension-rooted subtrees are the tasks, assigned round-robin to the
processors; the dataset is replicated, each processor runs sequential
BUC (depth-first writing) over its subtrees and writes cuboids to its
local disk.

RP's two weaknesses — the coarse, uneven tasks (subtree ``T_A`` is far
bigger than ``T_C``) and the scattered depth-first writes — are exactly
what the simulation surfaces in Figures 4.1 and 3.6.
"""

from ..core.buc import BucEngine
from ..core.stats import OpStats
from ..core.writer import ResultWriter
from ..cluster.simulator import TaskExecution, run_static
from ..lattice.processing_tree import SubtreeTask
from .base import (
    AlgorithmFeatures,
    ParallelCubeAlgorithm,
    ParallelRunResult,
    add_all_node,
    committed_result,
    input_read_bytes,
    merged_result,
)


class _RpWorkerState:
    """Per-processor state: the replicated engine and local writer."""

    __slots__ = ("engine", "writer", "loaded")

    def __init__(self, engine, writer):
        self.engine = engine
        self.writer = writer
        self.loaded = False


class RP(ParallelCubeAlgorithm):
    """Replicated Parallel BUC."""

    name = "RP"
    features = AlgorithmFeatures("depth-first", "weak", "bottom-up", "replicated")

    def __init__(self, breadth_first=False):
        """``breadth_first=True`` is an ablation knob: RP with BPP's
        writing strategy (used to isolate the Figure 3.6 I/O effect)."""
        self.breadth_first = breadth_first

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        tasks = [SubtreeTask((dim,)) for dim in dims]
        n = len(cluster)
        assignments = [(i % n, task) for i, task in enumerate(tasks)]
        writers = []
        read_bytes = input_read_bytes(relation)

        def execute(processor, task):
            state = processor.state
            stats = OpStats()
            first_load = False
            if state is None:
                writer = ResultWriter(dims)
                engine = BucEngine(relation, dims, minsup, writer, stats)
                state = processor.state = _RpWorkerState(engine, writer)
                writers.append(writer)
                first_load = True
            else:
                state.engine.stats = stats
            if first_load and not state.loaded:
                stats.read_tuples += len(relation)
                state.loaded = True
            if fault_plan is not None:
                # Replayable task: isolate this attempt's cells so a
                # failed attempt can be discarded instead of double-counted.
                target = ResultWriter(dims)
                state.engine.writer = target
            else:
                target = state.writer
            before = target.snapshot()
            state.engine.run_task(task, breadth_first=self.breadth_first)
            cells, nbytes, switches = ResultWriter.delta(before, target.snapshot())
            return TaskExecution(
                label="T_%s" % task.root[0],
                stats=stats,
                cells=cells,
                bytes_written=nbytes,
                switches=switches,
                read_bytes=read_bytes if first_load else 0,
                output=target.result if fault_plan is not None else None,
            )

        simulation = run_static(cluster, assignments, execute, fault_plan=fault_plan)
        if fault_plan is not None:
            result = committed_result(dims, simulation)
        else:
            result = merged_result(dims, writers)
        add_all_node(result, relation, minsup)
        return ParallelRunResult(self.name, result, simulation)

"""Real multi-process cube computation (not simulated), supervised.

The simulated cluster reproduces the *paper's* measurements; this
module is for users who just want their cube faster on a multi-core
machine.  It parallelizes the way PT does — the BUC processing tree is
binary-divided into many subtree tasks (Section 3.4), dealt to a
process pool in demand-balanced batches — and each worker runs real
BUC over the task's subtree: threshold pruning cuts work exactly as in
the sequential algorithm, and a per-worker :class:`PrefixCache` shares
root-prefix sorts between consecutive tasks (PT's affinity idea, here
as a cache because the pool, not us, picks who runs what).

**Data plane.**  Both directions of worker traffic run over shared
memory (:mod:`repro.parallel.shm`), not pickled Python objects:

* *Input*: the :class:`~repro.core.columnar.ColumnarFrame` is written
  once into a run-scoped segment; workers map it read-only and build
  their kernels over zero-copy views.  Forked workers used to get this
  for free from copy-on-write, but spawn platforms re-pickled the frame
  per worker per pool respawn — now every platform ships one copy.
* *Results*: workers encode each batch's cells as bit-packed
  ``(packed_key, count, sum)`` arrays (the frame's 63-bit
  :class:`~repro.core.columnar.KeyPacking`; tuple-key relations take
  the exact one-``int64``-per-coordinate fallback) into a fresh
  segment and return only a ``(kind, name, nbytes)`` descriptor.  The
  parent attaches, decodes with numpy, merges, and unlinks — decoding
  overlaps the workers' remaining compute instead of serializing after
  it.

**Scheduling.**  Tasks are sorted largest-first and dealt through the
pool's shared call queue, which is demand-driven: an idle worker pulls
the next batch the moment it finishes, so fast workers drain the tail
that would otherwise wait on a straggler.  Batch granularity is
auto-tuned (``batch_size=None``): a calibration pass times the smallest
subtree tasks in-process to estimate per-node cost, then packs tasks
into variable-size batches of roughly :data:`TARGET_BATCH_SECONDS`
each — big subtrees ride alone, the long tail of tiny ones is grouped
so per-batch dispatch overhead stays amortized.  An explicit integer
``batch_size`` keeps the old fixed batching.

**Supervision.**  Real workers die (OOM killer, segfaulting C
extensions, an operator's stray ``kill -9``) and hang (NFS stalls, a
deadlocked import).  The dispatch loop is therefore a supervisor, not a
bare ``Pool.map``: every batch is tracked individually, a worker death
(``BrokenProcessPool``) or a stall longer than ``batch_timeout``
seconds tears the pool down, respawns it, and retries only the
unfinished batches — with full-jitter capped exponential backoff
(uniform in [0, cap], seeded by the fault plan) and a per-batch
retry budget whose exhaustion raises
:class:`~repro.errors.WorkerCrashError`.  Each respawn also sweeps the
run's shared-memory prefix: a worker SIGKILLed mid-write leaks its
half-written segment (its descriptor died with it), and the sweep
reclaims it before the batch re-executes.  Recovery is testable: a
seedable :class:`~repro.cluster.faults.FaultPlan` passed as
``fault_plan`` SIGKILLs and hangs *real* worker processes
(:meth:`~repro.cluster.faults.FaultPlan.local_fault`), and the fault-free
path produces exactly the cells it always did.

Results are exactly the library's usual cells and are validated against
the naive oracle in the test suite.  This backend intentionally has no
timing model: wall-clock here is your machine's, not the thesis'.
"""

import os
import random
import signal
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

from .. import obs
from ..core.buc import BucEngine, PrefixCache
from ..core.columnar import ColumnarFrame, aggregate_cuboid, kernel_from_frame
from ..core.result import CubeResult
from ..core.thresholds import as_threshold, validate_measures
from ..core.writer import ResultWriter
from ..errors import PlanError, WorkerCrashError
from ..lattice.processing_tree import ProcessingTree, binary_divide
from .shm import ShmTransport, decode_result, encode_result

#: Tasks per worker requested from binary division; enough granularity
#: for demand balancing without drowning in per-task root re-sorts
#: (every extra task re-refines part of its root path, and every
#: non-adjacent batch re-refines it cold — measured, halving this from
#: 16 cut 4-worker overhead by ~25% on the scaling workload).
TASKS_PER_WORKER = 8

#: Default per-batch stall window: if no batch completes for this many
#: seconds, the outstanding ones are declared hung and retried on a
#: fresh pool.  Generous — a legitimate batch is seconds, not minutes.
DEFAULT_BATCH_TIMEOUT = 300.0

#: Default per-batch retry budget when no fault plan supplies one.
DEFAULT_MAX_RETRIES = 3

#: Real-seconds ceiling on one exponential-backoff sleep.
BACKOFF_CAP_S = 2.0

#: How long an injected "hang" fault sleeps — far past any sane batch
#: timeout, so the stall detector (not luck) has to recover it.
_HANG_SECONDS = 3600.0

#: Calibrated batching aims for batches of roughly this much estimated
#: work each — long enough to amortize dispatch + transport, short
#: enough that the demand scheduler can rebalance around stragglers.
TARGET_BATCH_SECONDS = 0.05

#: Upper bound on batch size from the work-split side: however cheap
#: tasks look, keep at least this many batches per worker so the tail
#: cannot collapse into one straggler.  Kept low on purpose: a worker
#: pays a cold root-path re-refinement per non-adjacent batch, so more
#: batches buy balance at a real CPU price (LPT submission order makes
#: a few well-sized batches balance well already).
BATCHES_PER_WORKER = 4

#: At most this many of the smallest tasks are timed in-process by the
#: calibration pass (their results are kept, not thrown away).
PROBE_TASKS_MAX = 4

#: Chaos hook (tests only): SIGKILL the worker midway through writing
#: this batch id's result segment, attempt 0 — the exact half-written
#: leak the respawn sweep exists for.
CHAOS_KILL_ENV = "REPRO_SHM_CHAOS_KILL"

# Worker-process state, set once by the pool initializer.
_STATE = None


class _WorkerState:
    """Per-process state, reused for every batch this worker runs."""

    def __init__(self, frame_ship, threshold, kernel, fault_plan=None,
                 tasks=(), transport=None, mode="cube"):
        self.frame_segment = None
        if frame_ship[0] == "segment":
            _tag, meta, descriptor = frame_ship
            self.frame_segment = transport.attach(descriptor)
            frame = ColumnarFrame.from_buffers(meta, self.frame_segment.buf)
        else:
            frame = frame_ship[1]
        self.frame = frame
        self.dims = frame.dims
        self.threshold = threshold
        self.tasks = tasks
        self.transport = transport
        self.fault_plan = fault_plan
        self.engine = None
        self.cache = None
        if mode == "cube":
            self.engine = BucEngine(
                None, frame.dims, threshold, writer=ResultWriter(frame.dims),
                kernel=kernel_from_frame(kernel, frame),
            )
            self.cache = PrefixCache()


def _init_worker(frame_ship, threshold, kernel, fault_plan=None, tasks=(),
                 transport=None, mode="cube"):
    global _STATE
    _STATE = _WorkerState(frame_ship, threshold, kernel, fault_plan,
                          tasks, transport, mode)


def _inject_fault(state, batch_id, attempt):
    plan = state.fault_plan
    if plan is None:
        return
    action = plan.local_fault(batch_id, attempt)
    if action == "kill":
        # A real, uncatchable death — exactly what a segfault or the
        # OOM killer looks like from the supervisor's side.
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(_HANG_SECONDS)


def _ship_result(state, batch_id, attempt, items):
    """Send one batch's cuboid items back: segment descriptor or inline.

    With a transport, the items are encoded into a fresh shared-memory
    segment and only ``("seg", descriptor, n_cells)`` crosses the
    pipe; without one (``use_shm=False``, or the inline path) the items
    ride the pipe as ``("items", items)`` exactly as the old pickled
    protocol did.
    """
    if state.transport is None:
        return ("items", items)
    frame = state.frame
    payload = encode_result(items, frame.dims, frame.packing)
    segment = state.transport.create(len(payload), tag="b%d" % batch_id)
    if attempt == 0 and os.environ.get(CHAOS_KILL_ENV) == str(batch_id):
        # Chaos hook: die halfway through the segment write, leaving a
        # half-written leak for the supervisor's sweep to reclaim.
        half = len(payload) // 2
        segment.buf[:half] = payload[:half]
        os.kill(os.getpid(), signal.SIGKILL)
    if payload:
        segment.buf[:len(payload)] = payload
    descriptor = segment.descriptor
    n_cells = sum(len(cells) for _cuboid, cells in items)
    segment.close()
    return ("seg", descriptor, n_cells)


def _run_batch(job):
    """Run one batch of subtree tasks; returns ``(batch_id, shipped)``.

    ``job`` is ``(batch_id, attempt, (lo, hi), traceparent)`` where
    ``lo:hi`` is an index range into the task list shipped once at pool
    init; the id and attempt feed the fault injector so kills and hangs
    are deterministic per plan, and ``traceparent`` (or ``None``)
    carries the submitting run's trace context across the pool pipe.
    """
    batch_id, attempt, (lo, hi), traceparent = job
    state = _STATE
    _inject_fault(state, batch_id, attempt)
    with obs.activate(traceparent):
        writer = ResultWriter(state.dims)
        state.engine.writer = writer
        for task in state.tasks[lo:hi]:
            state.engine.run_task(task, breadth_first=True, cache=state.cache)
        items = list(writer.result.cuboids.items())
        return batch_id, _ship_result(state, batch_id, attempt, items)


def _run_leaf_batch(job):
    """Aggregate one batch of leaf cuboids (minsup-1 store precompute)."""
    batch_id, attempt, (lo, hi), traceparent = job
    state = _STATE
    _inject_fault(state, batch_id, attempt)
    with obs.activate(traceparent):
        items = [
            (leaf, aggregate_cuboid(state.frame, leaf))
            for leaf in state.tasks[lo:hi]
        ]
        return batch_id, _ship_result(state, batch_id, attempt, items)


def _batched(n_tasks, batch_size):
    """Yield consecutive ``(lo, hi)`` index ranges of ``batch_size``.

    Lazy on purpose: no sliced task lists are materialized up front —
    workers slice their own range out of the task list they already
    hold, and the ranges themselves are two ints each.
    """
    for lo in range(0, n_tasks, batch_size):
        yield (lo, min(lo + batch_size, n_tasks))


class SupervisorLog:
    """Recovery telemetry of one supervised local run.

    Attached to the returned :class:`CubeResult` as ``.recovery`` so the
    CLI (and tests) can report what the supervisor had to do.
    """

    __slots__ = ("retries", "respawns", "worker_crashes", "stalls",
                 "backoff_seconds", "segments_swept")

    def __init__(self):
        #: batch re-executions (any cause)
        self.retries = 0
        #: pool teardown + rebuild cycles
        self.respawns = 0
        #: rounds lost to a dead worker (BrokenProcessPool)
        self.worker_crashes = 0
        #: rounds lost to the stall detector (hung worker)
        self.stalls = 0
        #: real seconds slept in retry backoffs
        self.backoff_seconds = 0.0
        #: orphaned shared-memory segments reclaimed by respawn sweeps
        self.segments_swept = 0

    def __repr__(self):
        return ("SupervisorLog(retries=%d, respawns=%d, crashes=%d, "
                "stalls=%d, swept=%d)" % (self.retries, self.respawns,
                                          self.worker_crashes, self.stalls,
                                          self.segments_swept))


def _pool_context():
    # Prefer fork (cheap spawn; the input segment maps either way); fall
    # back to spawn, where initargs carry only the segment descriptor.
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def _abandon_pool(executor):
    """Tear down a broken or stalled pool without waiting on hung workers.

    A worker asleep in an injected hang (or a real NFS stall) never
    drains the call queue, so it must be reaped directly — otherwise the
    executor's management thread (and the interpreter's atexit hook)
    would join it forever.  ``_processes`` is the executor's
    pid -> Process map; it must be captured *before* ``shutdown``, which
    drops the reference even with ``wait=False``.
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, AttributeError):  # pragma: no cover - already dead
            pass
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=5.0)


def supervised_map(jobs, workers, task_fn, initializer, initargs,
                   fault_plan=None, batch_timeout=None, max_retries=None,
                   backoff_s=0.05, log=None, name="local", on_result=None,
                   on_respawn=None):
    """Run every job to completion on a supervised process pool.

    The generic supervisor behind both the local cube backend and the
    MapReduce engine (:mod:`repro.mr`).  ``jobs`` is a list of payloads
    (ids are their indices) or a ``{job_id: payload}`` mapping;
    ``task_fn`` is a module-level function invoked in the worker as
    ``task_fn((job_id, attempt, payload, traceparent))`` and must return
    ``(job_id, result)``; ``initializer``/``initargs`` set up per-worker
    state once per process.  The ``traceparent`` element (a header
    string or ``None``) carries the caller's distributed-trace context
    across the pool pipe — task functions re-activate it so any spans
    they record join the submitting request's trace.  Returns
    ``{job_id: result}``.

    ``on_result(job_id, raw)`` — when given — transforms each completed
    job's return value the moment its future resolves (the stored value
    is the callback's return).  The local backend decodes and merges
    result segments here, overlapped with the workers' remaining
    compute.  ``on_respawn()`` runs after every pool teardown, before
    the retry round — the hook where the shared-memory sweep reclaims
    segments of SIGKILLed writers.

    A pool whose worker dies (``BrokenProcessPool``) or that completes
    nothing for ``batch_timeout`` seconds is torn down and respawned;
    the unfinished jobs are retried with full-jitter capped exponential
    backoff.  A job that fails more than ``max_retries`` times raises
    :class:`~repro.errors.WorkerCrashError`.  ``name`` prefixes the obs
    spans/counters (``<name>.batch``, ``repro_<name>_batches_total``,
    ...) so each consumer's telemetry stays distinct.
    """
    if batch_timeout is None:
        batch_timeout = DEFAULT_BATCH_TIMEOUT
    if max_retries is None:
        max_retries = (fault_plan.max_retries if fault_plan is not None
                       else DEFAULT_MAX_RETRIES)
    if log is None:
        log = SupervisorLog()
    pending = dict(jobs) if isinstance(jobs, dict) else dict(enumerate(jobs))
    # The caller's trace position, captured once: every job ships it
    # over the pool pipe, and every <name>.batch span links to it.
    ctx = obs.context()
    traceparent = obs.inject()
    if workers == 1 and fault_plan is None:
        # Inline fast path: no fault injection means no supervision is
        # needed, so skip the pool and run in-process.
        initializer(*initargs)
        out = {}
        for bid, payload in sorted(pending.items()):
            raw = task_fn((bid, 0, payload, traceparent))[1]
            out[bid] = on_result(bid, raw) if on_result is not None else raw
        return out
    context = _pool_context()
    attempts = dict.fromkeys(pending, 0)
    results = {}
    active = obs.current()
    # Full-jitter backoff: sleeping uniform(0, capped-exponential) keeps
    # respawning supervisors from synchronizing into retry thundering
    # herds.  Seeded from the fault plan so injected-fault runs stay
    # reproducible; unseeded (wall-entropy) otherwise.
    jitter = random.Random(fault_plan.seed if fault_plan is not None else None)
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )
        broken = stalled = False
        try:
            futures = {
                executor.submit(
                    task_fn, (bid, attempts[bid], payload, traceparent)): bid
                for bid, payload in sorted(pending.items())
            }
            round_start = active.tracer.now() if active is not None else 0.0
            not_done = set(futures)
            while not_done and not broken:
                done, not_done = wait(not_done, timeout=batch_timeout,
                                      return_when=FIRST_COMPLETED)
                if not done:
                    # No batch finished inside the window: a worker is
                    # hung.  Everything still outstanding is retried.
                    stalled = True
                    break
                for future in done:
                    bid = futures[future]
                    try:
                        _bid, items = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    if on_result is not None:
                        items = on_result(bid, items)
                    results[bid] = items
                    del pending[bid]
                    if active is not None:
                        # Dispatch-to-completion on the supervisor's
                        # clock (batches run concurrently in workers).
                        active.tracer.add_span(
                            "%s.batch" % name, round_start,
                            active.tracer.now() - round_start, tid="pool",
                            attrs={"batch": bid, "attempt": attempts[bid]},
                            clock="wall",
                            trace_id=ctx.trace_id if ctx else None,
                            parent_id=ctx.span_id if ctx else None)
                        active.registry.counter(
                            "repro_%s_batches_total" % name,
                            "Supervised pool batches completed.",
                        ).inc()
        finally:
            if broken or stalled:
                _abandon_pool(executor)
            else:
                executor.shutdown(wait=True)
        if not pending:
            break
        # Crash or stall: charge an attempt to every unfinished batch,
        # enforce the budget, back off, respawn and go again.
        log.respawns += 1
        if broken:
            log.worker_crashes += 1
        if stalled:
            log.stalls += 1
        obs.event("%s.respawn" % name, cause="crash" if broken else "stall",
                  unfinished=len(pending))
        if on_respawn is not None:
            # The pool is fully torn down here — no writer is alive —
            # so leaked segments of dead workers can be swept safely.
            on_respawn()
        if active is not None:
            active.registry.counter(
                "repro_%s_respawns_total" % name,
                "Pool teardown + respawn cycles.", ("cause",)
            ).inc(cause="crash" if broken else "stall")
        worst = None
        for bid in pending:
            attempts[bid] += 1
            log.retries += 1
            if worst is None or attempts[bid] > attempts[worst]:
                worst = bid
        if active is not None:
            active.registry.counter(
                "repro_%s_retries_total" % name,
                "Batch re-executions after a crash or stall.",
            ).inc(len(pending))
        if attempts[worst] > max_retries:
            raise WorkerCrashError(
                worst, attempts[worst],
                "worker died or hung on every attempt")
        ceiling = min(BACKOFF_CAP_S, backoff_s * 2.0 ** (attempts[worst] - 1))
        pause = jitter.uniform(0.0, ceiling)
        if pause > 0:
            time.sleep(pause)
            log.backoff_seconds += pause
    return results


# ----------------------------------------------------------------------
# adaptive batching
# ----------------------------------------------------------------------
def _calibrate(tree, tasks, engine, cache, merge):
    """Time a few tail tasks in-process; returns ``(rate, n_probed)``.

    ``rate`` is estimated seconds per processing-tree node.  The probed
    tasks are really computed (their cells go through ``merge`` and are
    not dispatched again), so the probe is bounded twice: at most
    :data:`PROBE_TASKS_MAX` tasks *and* at most ~3% of the tree's
    nodes — calibration must stay a rounding error next to the work it
    schedules.  Returns a rate of ``None`` when there is nothing safe
    to probe.
    """
    if len(tasks) < 2:
        return None, 0
    budget = max(1, sum(task.size(tree) for task in tasks) // 32)
    n_probe = 0
    nodes = 0
    for task in reversed(tasks[1:]):
        size = task.size(tree)
        if n_probe and (nodes + size > budget or n_probe >= PROBE_TASKS_MAX):
            break
        nodes += size
        n_probe += 1
    probed = tasks[-n_probe:]
    writer = ResultWriter(engine.dims)
    engine.writer = writer
    started = time.perf_counter()
    for task in probed:
        engine.run_task(task, breadth_first=True, cache=cache)
    elapsed = time.perf_counter() - started
    merge(list(writer.result.cuboids.items()))
    # Clock noise floor: a probe faster than the timer can resolve
    # still yields a usable (tiny) rate; zero nodes cannot happen
    # (every task has >= 1 node).
    return max(elapsed, 1e-6) / nodes, n_probe


def _plan_batches(tree, tasks, workers, rate):
    """Pack consecutive tasks into ``(lo, hi)`` ranges of ~equal cost.

    Consecutive ranges keep each batch's tasks prefix-adjacent (the
    worker's :class:`PrefixCache` shares their root sorts); each range
    accumulates tasks until it reaches the target cost, so one big
    subtree rides alone while the long tail of tiny tasks is grouped —
    the estimated-seconds analogue of PT's fixed batch counts.

    The returned batches are ordered costliest-first.  The pool's call
    queue is demand-driven (idle workers pull the next batch), so
    costliest-first submission is longest-processing-time list
    scheduling: big batches start immediately and the cheap tail
    back-fills whichever worker frees up last.
    """
    costs = [task.size(tree) * rate for task in tasks]
    total = sum(costs)
    target = max(TARGET_BATCH_SECONDS,
                 total / max(1, workers * BATCHES_PER_WORKER))
    jobs = []
    lo = 0
    acc = 0.0
    for i, cost in enumerate(costs):
        acc += cost
        if acc >= target:
            jobs.append((acc, (lo, i + 1)))
            lo = i + 1
            acc = 0.0
    if lo < len(tasks):
        jobs.append((acc, (lo, len(tasks))))
    jobs.sort(key=lambda job: job[0], reverse=True)
    return [rng for _cost, rng in jobs]


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def multiprocess_iceberg_cube(relation, dims=None, minsup=1, workers=None,
                              batch_size=None, kernel="auto", fault_plan=None,
                              batch_timeout=None, max_retries=None,
                              backoff_s=0.05, use_shm=True):
    """Compute the iceberg cube with a supervised local process pool.

    ``workers`` defaults to the machine's CPU count (capped at 8).  The
    processing tree is divided into roughly ``TASKS_PER_WORKER`` subtree
    tasks per worker, sorted largest-first and dealt through the pool's
    demand-driven queue.  ``batch_size=None`` (the default) runs the
    calibration pass: the smallest tasks are timed in-process and
    batches are packed to ~:data:`TARGET_BATCH_SECONDS` of estimated
    work each; an integer keeps fixed-size batches.  ``kernel`` picks
    the refinement implementation (``"auto"``, ``"columnar"`` or
    ``"numpy"``).

    ``use_shm=False`` (CLI ``--no-shm``) disables the shared-memory
    data plane: the frame ships by fork/pickle and results return as
    pickled cells — slower, but free of any platform shm quirks.

    Robustness knobs: a worker death or a stall longer than
    ``batch_timeout`` seconds (default :data:`DEFAULT_BATCH_TIMEOUT`)
    becomes a retry on a respawned pool, each batch at most
    ``max_retries`` times (default: the fault plan's budget, else
    :data:`DEFAULT_MAX_RETRIES`) with full-jitter capped exponential
    backoff from ``backoff_s``.  ``fault_plan`` injects real kills and
    hangs for testing (see
    :meth:`~repro.cluster.faults.FaultPlan.local_fault`); every pool
    respawn sweeps the run's shared-memory segments so SIGKILLed
    writers leak nothing.

    Returns a :class:`~repro.core.result.CubeResult` whose ``.recovery``
    attribute is a :class:`SupervisorLog` (``None`` on the inline
    single-worker path).
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if not dims:
        raise PlanError("need at least one cube dimension")
    threshold = as_threshold(minsup)
    validate_measures(threshold, relation)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers < 1:
        raise PlanError("workers must be >= 1, got %r" % (workers,))
    if batch_size is not None and batch_size < 1:
        raise PlanError("batch_size must be >= 1, got %r" % (batch_size,))
    if batch_timeout is None:
        batch_timeout = DEFAULT_BATCH_TIMEOUT
    if batch_timeout <= 0:
        raise PlanError("batch_timeout must be > 0, got %r" % (batch_timeout,))
    if max_retries is None:
        max_retries = (fault_plan.max_retries if fault_plan is not None
                       else DEFAULT_MAX_RETRIES)
    if max_retries < 0:
        raise PlanError("max_retries must be >= 0, got %r" % (max_retries,))

    with obs.span("local.cube") as span:
        if span:
            span.set(rows=len(relation), dims=len(dims), workers=workers,
                     batch_size=batch_size or 0, kernel=str(kernel),
                     shm=bool(use_shm))
        frame = ColumnarFrame.from_relation(relation, dims)
        tree = ProcessingTree(dims)
        result = CubeResult(dims)
        result.recovery = None

        def merge(items):
            _merge_items(result, items)

        if workers == 1 and fault_plan is None:
            # Inline: sequential BUC over the columnar kernel, no pool,
            # no transport.
            _init_worker(("direct", frame), threshold, kernel,
                         tasks=binary_divide(tree, 1))
            _, shipped = _run_batch((0, 0, (0, 1), obs.inject()))
            merge(shipped[1])
        else:
            # Tasks stay in tree (DFS) order: consecutive tasks share
            # root prefixes, so each worker's PrefixCache keeps its
            # sorts warm.  Balance comes from cost-aware batch packing
            # plus demand dispatch, not from reordering.
            tasks = binary_divide(tree, workers * TASKS_PER_WORKER)
            log = SupervisorLog()
            result.recovery = log
            _pooled_cube(frame, tree, tasks, threshold, kernel, workers,
                         batch_size, fault_plan, batch_timeout, max_retries,
                         backoff_s, use_shm, log, merge, span)
            if span:
                span.set(retries=log.retries, respawns=log.respawns,
                         crashes=log.worker_crashes, stalls=log.stalls,
                         swept=log.segments_swept)

        count = frame.n_rows
        total = sum(frame.measures)
        if threshold.qualifies(count, total):
            result.add_cell((), (), count, total)
        if span:
            span.set(cells=result.total_cells())
        return result


def _pooled_cube(frame, tree, tasks, threshold, kernel, workers, batch_size,
                 fault_plan, batch_timeout, max_retries, backoff_s, use_shm,
                 log, merge, span):
    """The pool side of :func:`multiprocess_iceberg_cube`: calibrate,
    ship the frame, dispatch, decode-and-merge, clean up."""
    transport, frame_ship, frame_segment = _open_transport(frame, use_shm)
    try:
        if batch_size is None:
            engine = BucEngine(
                None, frame.dims, threshold, writer=ResultWriter(frame.dims),
                kernel=kernel_from_frame(kernel, frame),
            )
            with obs.span("local.calibrate") as cal_span:
                rate, n_probed = _calibrate(tree, tasks, engine,
                                            PrefixCache(), merge)
                if n_probed:
                    tasks = tasks[:-n_probed]
                if rate is None:
                    jobs = [(i, i + 1) for i in range(len(tasks))]
                else:
                    jobs = _plan_batches(tree, tasks, workers, rate)
                if cal_span:
                    cal_span.set(probed=n_probed, batches=len(jobs),
                                 node_seconds=rate or 0.0)
        else:
            jobs = list(_batched(len(tasks), batch_size))
        if not jobs:
            return
        on_result = _make_decoder(transport, frame, merge, log)
        initargs = (frame_ship, threshold, kernel, fault_plan, tasks,
                    transport, "cube")
        supervised_map(
            jobs, workers, _run_batch, _init_worker, initargs,
            fault_plan=fault_plan, batch_timeout=batch_timeout,
            max_retries=max_retries, backoff_s=backoff_s, log=log,
            on_result=on_result,
            on_respawn=_make_sweeper(transport, frame_segment, log),
        )
    finally:
        _close_transport(transport, frame_segment, log)


def _open_transport(frame, use_shm):
    """Set up the run's data plane.

    Returns ``(transport, frame_ship, frame_segment)``; all ``None`` /
    ``("direct", frame)`` when shared memory is disabled or the frame is
    empty (nothing worth a segment).
    """
    if not use_shm:
        return None, ("direct", frame), None
    run_id = uuid.uuid4().hex[:12]
    transport = ShmTransport.for_run(run_id)
    frame_segment = None
    frame_ship = ("direct", frame)
    nbytes = frame.buffer_nbytes()
    if nbytes:
        frame_segment = transport.create(nbytes, tag="frame")
        frame.write_buffers(frame_segment.buf)
        frame_ship = ("segment", frame.buffer_meta(),
                      frame_segment.descriptor)
    active = obs.current()
    if active is not None:
        active.registry.counter(
            "repro_local_shm_bytes_total",
            "Bytes shipped through shared-memory segments.", ("direction",)
        ).inc(nbytes, direction="input")
    return transport, frame_ship, frame_segment


def _make_decoder(transport, frame, merge, log):
    """Per-batch completion hook: attach, decode, merge, unlink."""
    active = obs.current()

    def on_result(bid, shipped):
        tag = shipped[0]
        if tag == "items":
            merge(shipped[1])
            return len(shipped[1])
        _tag, descriptor, n_cells = shipped
        with obs.span("local.decode") as span:
            segment = transport.attach(descriptor)
            try:
                items = decode_result(segment.buf, frame.dims, frame.packing)
            finally:
                segment.unlink()
            merge(items)
            if span:
                span.set(batch=bid, cells=n_cells,
                         bytes=descriptor[2])
        if active is not None:
            active.registry.counter(
                "repro_local_shm_bytes_total",
                "Bytes shipped through shared-memory segments.",
                ("direction",)
            ).inc(descriptor[2], direction="result")
        return n_cells

    return on_result


def _make_sweeper(transport, frame_segment, log):
    if transport is None:
        return None
    keep = (frame_segment.name,) if frame_segment is not None else ()

    def on_respawn():
        swept = transport.sweep(exclude=keep)
        log.segments_swept += swept
        if swept:
            obs.event("local.shm_sweep", segments=swept)
            active = obs.current()
            if active is not None:
                active.registry.counter(
                    "repro_local_segments_swept_total",
                    "Leaked result segments reclaimed after pool respawns.",
                ).inc(swept)

    return on_respawn


def _close_transport(transport, frame_segment, log):
    if transport is None:
        return
    if frame_segment is not None:
        frame_segment.unlink()
    leftover = transport.shutdown()
    if leftover:
        log.segments_swept += leftover


def _merge_items(result, items):
    """Merge one batch's ``(cuboid, cells)`` items into the result.

    Tree division partitions the cuboids across tasks, so the common
    case is a fresh cuboid (one dict assignment, zero per-cell work);
    the accumulate branch is defensive — correct either way.
    """
    for cuboid, cells in items:
        mine = result.cuboids.get(cuboid)
        if mine is None:
            result.cuboids[cuboid] = cells if isinstance(cells, dict) \
                else dict(cells)
        else:
            for cell, (count, value) in cells.items():
                existing = mine.get(cell)
                if existing is None:
                    mine[cell] = (count, value)
                else:
                    mine[cell] = (existing[0] + count, existing[1] + value)


def multiprocess_leaf_cells(relation, leaves, dims=None, workers=None,
                            kernel="auto", batch_size=None, fault_plan=None,
                            batch_timeout=None, max_retries=None,
                            backoff_s=0.05, use_shm=True):
    """Aggregate ``leaves`` (minsup-1, all cells kept) on the pool.

    The store-build analogue of :func:`multiprocess_iceberg_cube`: each
    worker maps the shared frame and computes whole leaf cuboids with
    :func:`~repro.core.columnar.aggregate_cuboid`; results return as
    packed segments.  Returns ``{leaf: {cell: (count, sum)}}``.

    ``workers=None`` or ``1`` aggregates inline (no pool).  Faults,
    retries and the respawn sweep behave exactly as in the cube path —
    it is the same supervisor.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers < 1:
        raise PlanError("workers must be >= 1, got %r" % (workers,))
    leaves = [tuple(leaf) for leaf in leaves]
    frame = ColumnarFrame.from_relation(relation, dims)
    with obs.span("local.leaves") as span:
        if span:
            span.set(rows=len(relation), leaves=len(leaves), workers=workers)
        if workers == 1 and fault_plan is None or not leaves:
            return {
                leaf: aggregate_cuboid(frame, leaf) for leaf in leaves
            }
        out = {}

        def merge(items):
            for leaf, cells in items:
                existing = out.get(leaf)
                if existing is None:
                    out[leaf] = cells if isinstance(cells, dict) \
                        else dict(cells)
                else:  # pragma: no cover - leaves never split
                    existing.update(cells)

        if batch_size is None:
            batch_size = max(1, len(leaves) //
                             max(1, workers * BATCHES_PER_WORKER))
        jobs = list(_batched(len(leaves), batch_size))
        log = SupervisorLog()
        transport, frame_ship, frame_segment = _open_transport(frame, use_shm)
        try:
            initargs = (frame_ship, as_threshold(1), kernel, fault_plan,
                        leaves, transport, "leaves")
            supervised_map(
                jobs, workers, _run_leaf_batch, _init_worker, initargs,
                fault_plan=fault_plan, batch_timeout=batch_timeout,
                max_retries=max_retries, backoff_s=backoff_s, log=log,
                name="local_leaves",
                on_result=_make_decoder(transport, frame, merge, log),
                on_respawn=_make_sweeper(transport, frame_segment, log),
            )
        finally:
            _close_transport(transport, frame_segment, log)
        if span:
            span.set(cells=sum(len(c) for c in out.values()),
                     respawns=log.respawns)
        return out

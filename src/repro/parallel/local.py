"""Real multi-process cube computation (not simulated), supervised.

The simulated cluster reproduces the *paper's* measurements; this
module is for users who just want their cube faster on a multi-core
machine.  It parallelizes the way PT does — the BUC processing tree is
binary-divided into many subtree tasks (Section 3.4), dealt to a
process pool in demand-balanced batches — and each worker runs real
BUC over the task's subtree: threshold pruning cuts work exactly as in
the sequential algorithm, and a per-worker :class:`PrefixCache` shares
root-prefix sorts between consecutive tasks (PT's affinity idea, here
as a cache because the pool, not us, picks who runs what).

The input ships as a :class:`~repro.core.columnar.ColumnarFrame` —
compact ``array`` buffers that forked workers inherit copy-on-write
(and that pickle cheaply under spawn).  Each worker builds one fast
columnar kernel over the shared buffers and keeps it for its whole
life.  Relations whose cardinalities overflow the 63-bit packed-key
budget still work: the refinement kernels read the column buffers
directly, so the frame simply carries no key buffer (the tuple-key
fallback only concerns single-cuboid group-bys).

**Supervision.**  Real workers die (OOM killer, segfaulting C
extensions, an operator's stray ``kill -9``) and hang (NFS stalls, a
deadlocked import).  The dispatch loop is therefore a supervisor, not a
bare ``Pool.map``: every batch is tracked individually, a worker death
(``BrokenProcessPool``) or a stall longer than ``batch_timeout``
seconds tears the pool down, respawns it, and retries only the
unfinished batches — with full-jitter capped exponential backoff
(uniform in [0, cap], seeded by the fault plan) and a per-batch
retry budget whose exhaustion raises
:class:`~repro.errors.WorkerCrashError`.  Recovery is testable: a
seedable :class:`~repro.cluster.faults.FaultPlan` passed as
``fault_plan`` SIGKILLs and hangs *real* worker processes
(:meth:`~repro.cluster.faults.FaultPlan.local_fault`), and the fault-free
path produces exactly the cells it always did.

Results are exactly the library's usual cells and are validated against
the naive oracle in the test suite.  This backend intentionally has no
timing model: wall-clock here is your machine's, not the thesis'.
"""

import os
import random
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

from .. import obs
from ..core.buc import BucEngine, PrefixCache
from ..core.columnar import ColumnarFrame, kernel_from_frame
from ..core.result import CubeResult
from ..core.thresholds import as_threshold, validate_measures
from ..core.writer import ResultWriter
from ..errors import PlanError, WorkerCrashError
from ..lattice.processing_tree import ProcessingTree, binary_divide

#: Tasks per worker requested from binary division; enough granularity
#: for demand balancing without drowning in per-task root re-sorts.
TASKS_PER_WORKER = 16

#: Default per-batch stall window: if no batch completes for this many
#: seconds, the outstanding ones are declared hung and retried on a
#: fresh pool.  Generous — a legitimate batch is seconds, not minutes.
DEFAULT_BATCH_TIMEOUT = 300.0

#: Default per-batch retry budget when no fault plan supplies one.
DEFAULT_MAX_RETRIES = 3

#: Real-seconds ceiling on one exponential-backoff sleep.
BACKOFF_CAP_S = 2.0

#: How long an injected "hang" fault sleeps — far past any sane batch
#: timeout, so the stall detector (not luck) has to recover it.
_HANG_SECONDS = 3600.0

# Worker-process state, set once by the pool initializer.
_STATE = None


class _WorkerState:
    """One engine + prefix cache, reused for every batch this worker runs."""

    def __init__(self, frame, threshold, kernel, fault_plan=None):
        self.dims = frame.dims
        self.threshold = threshold
        self.engine = BucEngine(
            None, frame.dims, threshold, writer=ResultWriter(frame.dims),
            kernel=kernel_from_frame(kernel, frame),
        )
        self.cache = PrefixCache()
        self.fault_plan = fault_plan


def _init_worker(frame, threshold, kernel, fault_plan=None):
    global _STATE
    _STATE = _WorkerState(frame, threshold, kernel, fault_plan)


def _run_batch(job):
    """Run one batch of subtree tasks; returns ``(batch_id, items)``.

    ``job`` is ``(batch_id, attempt, tasks)``; the id and attempt feed
    the fault injector so kills and hangs are deterministic per plan.
    """
    batch_id, attempt, tasks = job
    state = _STATE
    plan = state.fault_plan
    if plan is not None:
        action = plan.local_fault(batch_id, attempt)
        if action == "kill":
            # A real, uncatchable death — exactly what a segfault or the
            # OOM killer looks like from the supervisor's side.
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(_HANG_SECONDS)
    writer = ResultWriter(state.dims)
    state.engine.writer = writer
    for task in tasks:
        state.engine.run_task(task, breadth_first=True, cache=state.cache)
    return batch_id, list(writer.result.cuboids.items())


def _batched(tasks, batch_size):
    return [
        tasks[i : i + batch_size] for i in range(0, len(tasks), batch_size)
    ]


class SupervisorLog:
    """Recovery telemetry of one supervised local run.

    Attached to the returned :class:`CubeResult` as ``.recovery`` so the
    CLI (and tests) can report what the supervisor had to do.
    """

    __slots__ = ("retries", "respawns", "worker_crashes", "stalls",
                 "backoff_seconds")

    def __init__(self):
        #: batch re-executions (any cause)
        self.retries = 0
        #: pool teardown + rebuild cycles
        self.respawns = 0
        #: rounds lost to a dead worker (BrokenProcessPool)
        self.worker_crashes = 0
        #: rounds lost to the stall detector (hung worker)
        self.stalls = 0
        #: real seconds slept in retry backoffs
        self.backoff_seconds = 0.0

    def __repr__(self):
        return ("SupervisorLog(retries=%d, respawns=%d, crashes=%d, "
                "stalls=%d)" % (self.retries, self.respawns,
                                self.worker_crashes, self.stalls))


def _pool_context():
    # Prefer fork (copy-on-write input); fall back to spawn, where the
    # initializer pickles the frame once per worker.
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def _abandon_pool(executor):
    """Tear down a broken or stalled pool without waiting on hung workers.

    A worker asleep in an injected hang (or a real NFS stall) never
    drains the call queue, so it must be reaped directly — otherwise the
    executor's management thread (and the interpreter's atexit hook)
    would join it forever.  ``_processes`` is the executor's
    pid -> Process map; it must be captured *before* ``shutdown``, which
    drops the reference even with ``wait=False``.
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, AttributeError):  # pragma: no cover - already dead
            pass
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=5.0)


def supervised_map(jobs, workers, task_fn, initializer, initargs,
                   fault_plan=None, batch_timeout=None, max_retries=None,
                   backoff_s=0.05, log=None, name="local"):
    """Run every job to completion on a supervised process pool.

    The generic supervisor behind both the local cube backend and the
    MapReduce engine (:mod:`repro.mr`).  ``jobs`` is a list of payloads
    (ids are their indices) or a ``{job_id: payload}`` mapping;
    ``task_fn`` is a module-level function invoked in the worker as
    ``task_fn((job_id, attempt, payload))`` and must return
    ``(job_id, result)``; ``initializer``/``initargs`` set up per-worker
    state once per process.  Returns ``{job_id: result}``.

    A pool whose worker dies (``BrokenProcessPool``) or that completes
    nothing for ``batch_timeout`` seconds is torn down and respawned;
    the unfinished jobs are retried with full-jitter capped exponential
    backoff.  A job that fails more than ``max_retries`` times raises
    :class:`~repro.errors.WorkerCrashError`.  ``name`` prefixes the obs
    spans/counters (``<name>.batch``, ``repro_<name>_batches_total``,
    ...) so each consumer's telemetry stays distinct.
    """
    if batch_timeout is None:
        batch_timeout = DEFAULT_BATCH_TIMEOUT
    if max_retries is None:
        max_retries = (fault_plan.max_retries if fault_plan is not None
                       else DEFAULT_MAX_RETRIES)
    if log is None:
        log = SupervisorLog()
    pending = dict(jobs) if isinstance(jobs, dict) else dict(enumerate(jobs))
    if workers == 1 and fault_plan is None:
        # Inline fast path: no fault injection means no supervision is
        # needed, so skip the pool and run in-process.
        initializer(*initargs)
        return {bid: task_fn((bid, 0, payload))[1]
                for bid, payload in sorted(pending.items())}
    context = _pool_context()
    attempts = dict.fromkeys(pending, 0)
    results = {}
    active = obs.current()
    # Full-jitter backoff: sleeping uniform(0, capped-exponential) keeps
    # respawning supervisors from synchronizing into retry thundering
    # herds.  Seeded from the fault plan so injected-fault runs stay
    # reproducible; unseeded (wall-entropy) otherwise.
    jitter = random.Random(fault_plan.seed if fault_plan is not None else None)
    while pending:
        executor = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        )
        broken = stalled = False
        try:
            futures = {
                executor.submit(task_fn, (bid, attempts[bid], payload)): bid
                for bid, payload in sorted(pending.items())
            }
            round_start = active.tracer.now() if active is not None else 0.0
            not_done = set(futures)
            while not_done and not broken:
                done, not_done = wait(not_done, timeout=batch_timeout,
                                      return_when=FIRST_COMPLETED)
                if not done:
                    # No batch finished inside the window: a worker is
                    # hung.  Everything still outstanding is retried.
                    stalled = True
                    break
                for future in done:
                    bid = futures[future]
                    try:
                        _bid, items = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    results[bid] = items
                    del pending[bid]
                    if active is not None:
                        # Dispatch-to-completion on the supervisor's
                        # clock (batches run concurrently in workers).
                        active.tracer.add_span(
                            "%s.batch" % name, round_start,
                            active.tracer.now() - round_start, tid="pool",
                            attrs={"batch": bid, "attempt": attempts[bid]},
                            clock="wall")
                        active.registry.counter(
                            "repro_%s_batches_total" % name,
                            "Supervised pool batches completed.",
                        ).inc()
        finally:
            if broken or stalled:
                _abandon_pool(executor)
            else:
                executor.shutdown(wait=True)
        if not pending:
            break
        # Crash or stall: charge an attempt to every unfinished batch,
        # enforce the budget, back off, respawn and go again.
        log.respawns += 1
        if broken:
            log.worker_crashes += 1
        if stalled:
            log.stalls += 1
        obs.event("%s.respawn" % name, cause="crash" if broken else "stall",
                  unfinished=len(pending))
        if active is not None:
            active.registry.counter(
                "repro_%s_respawns_total" % name,
                "Pool teardown + respawn cycles.", ("cause",)
            ).inc(cause="crash" if broken else "stall")
        worst = None
        for bid in pending:
            attempts[bid] += 1
            log.retries += 1
            if worst is None or attempts[bid] > attempts[worst]:
                worst = bid
        if active is not None:
            active.registry.counter(
                "repro_%s_retries_total" % name,
                "Batch re-executions after a crash or stall.",
            ).inc(len(pending))
        if attempts[worst] > max_retries:
            raise WorkerCrashError(
                worst, attempts[worst],
                "worker died or hung on every attempt")
        ceiling = min(BACKOFF_CAP_S, backoff_s * 2.0 ** (attempts[worst] - 1))
        pause = jitter.uniform(0.0, ceiling)
        if pause > 0:
            time.sleep(pause)
            log.backoff_seconds += pause
    return results


def multiprocess_iceberg_cube(relation, dims=None, minsup=1, workers=None,
                              batch_size=4, kernel="auto", fault_plan=None,
                              batch_timeout=None, max_retries=None,
                              backoff_s=0.05):
    """Compute the iceberg cube with a supervised local process pool.

    ``workers`` defaults to the machine's CPU count (capped at 8).  The
    processing tree is divided into roughly ``TASKS_PER_WORKER`` subtree
    tasks per worker, sorted largest-first and dealt in batches of
    ``batch_size`` so the pool's demand scheduling keeps the cores busy
    while batches stay big enough to amortise result pickling.
    ``kernel`` picks the refinement implementation (``"auto"``,
    ``"columnar"`` or ``"numpy"``).

    Robustness knobs: a worker death or a stall longer than
    ``batch_timeout`` seconds (default :data:`DEFAULT_BATCH_TIMEOUT`)
    becomes a retry on a respawned pool, each batch at most
    ``max_retries`` times (default: the fault plan's budget, else
    :data:`DEFAULT_MAX_RETRIES`) with full-jitter capped exponential
    backoff from ``backoff_s``.  ``fault_plan`` injects real kills and hangs for
    testing (see :meth:`~repro.cluster.faults.FaultPlan.local_fault`).

    Returns a :class:`~repro.core.result.CubeResult` whose ``.recovery``
    attribute is a :class:`SupervisorLog` (``None`` on the inline
    single-worker path).
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if not dims:
        raise PlanError("need at least one cube dimension")
    threshold = as_threshold(minsup)
    validate_measures(threshold, relation)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers < 1:
        raise PlanError("workers must be >= 1, got %r" % (workers,))
    if batch_size < 1:
        raise PlanError("batch_size must be >= 1, got %r" % (batch_size,))
    if batch_timeout is None:
        batch_timeout = DEFAULT_BATCH_TIMEOUT
    if batch_timeout <= 0:
        raise PlanError("batch_timeout must be > 0, got %r" % (batch_timeout,))
    if max_retries is None:
        max_retries = (fault_plan.max_retries if fault_plan is not None
                       else DEFAULT_MAX_RETRIES)
    if max_retries < 0:
        raise PlanError("max_retries must be >= 0, got %r" % (max_retries,))

    with obs.span("local.cube") as span:
        if span:
            span.set(rows=len(relation), dims=len(dims), workers=workers,
                     batch_size=batch_size, kernel=str(kernel))
        frame = ColumnarFrame.from_relation(relation, dims)
        tree = ProcessingTree(dims)
        result = CubeResult(dims)
        result.recovery = None

        if workers == 1 and fault_plan is None:
            # Inline: sequential BUC over the columnar kernel, no pool.
            _init_worker(frame, threshold, kernel)
            batches = {
                bid: _run_batch((bid, 0, [task]))[1]
                for bid, task in enumerate(binary_divide(tree, 1))
            }
        else:
            tasks = binary_divide(tree, workers * TASKS_PER_WORKER)
            # Largest subtrees first: stragglers surface early and the
            # demand scheduler back-fills with the small tail tasks.
            tasks.sort(key=lambda t: t.size(tree), reverse=True)
            jobs = _batched(tasks, batch_size)
            log = SupervisorLog()
            batches = supervised_map(
                jobs, workers, _run_batch, _init_worker,
                (frame, threshold, kernel, fault_plan),
                fault_plan=fault_plan, batch_timeout=batch_timeout,
                max_retries=max_retries, backoff_s=backoff_s, log=log,
            )
            result.recovery = log
            if span:
                span.set(retries=log.retries, respawns=log.respawns,
                         crashes=log.worker_crashes, stalls=log.stalls)

        for bid in sorted(batches):
            for cuboid, cells in batches[bid]:
                # Tree division partitions the cuboids, so across-task
                # collisions only happen at shared roots of chopped
                # tasks; accumulate to stay correct either way.
                mine = result.cuboids.get(cuboid)
                if mine is None:
                    result.cuboids[cuboid] = cells
                else:
                    for cell, (count, value) in cells.items():
                        existing = mine.get(cell)
                        if existing is None:
                            mine[cell] = (count, value)
                        else:
                            mine[cell] = (existing[0] + count,
                                          existing[1] + value)

        count = frame.n_rows
        total = sum(frame.measures)
        if threshold.qualifies(count, total):
            result.add_cell((), (), count, total)
        if span:
            span.set(cells=result.total_cells())
        return result

"""Real multi-process cube computation (not simulated).

The simulated cluster reproduces the *paper's* measurements; this
module is for users who just want their cube faster on a multi-core
machine.  It parallelizes the way PT does — the BUC processing tree is
binary-divided into many subtree tasks (Section 3.4), dealt to a
process pool in demand-balanced batches — and each worker runs real
BUC over the task's subtree: threshold pruning cuts work exactly as in
the sequential algorithm, and a per-worker :class:`PrefixCache` shares
root-prefix sorts between consecutive tasks (PT's affinity idea, here
as a cache because the pool, not us, picks who runs what).

The input ships as a :class:`~repro.core.columnar.ColumnarFrame` —
compact ``array`` buffers that forked workers inherit copy-on-write
(and that pickle cheaply under spawn).  Each worker builds one fast
columnar kernel over the shared buffers and keeps it for its whole
life.  Relations whose cardinalities overflow the 63-bit packed-key
budget still work: the refinement kernels read the column buffers
directly, so the frame simply carries no key buffer (the tuple-key
fallback only concerns single-cuboid group-bys).

Results are exactly the library's usual cells and are validated against
the naive oracle in the test suite.  This backend intentionally has no
timing model: wall-clock here is your machine's, not the thesis'.
"""

import os
from multiprocessing import get_context

from ..core.buc import BucEngine, PrefixCache
from ..core.columnar import ColumnarFrame, kernel_from_frame
from ..core.result import CubeResult
from ..core.thresholds import as_threshold, validate_measures
from ..core.writer import ResultWriter
from ..errors import PlanError
from ..lattice.processing_tree import ProcessingTree, binary_divide

#: Tasks per worker requested from binary division; enough granularity
#: for demand balancing without drowning in per-task root re-sorts.
TASKS_PER_WORKER = 16

# Worker-process state, set once by the pool initializer.
_STATE = None


class _WorkerState:
    """One engine + prefix cache, reused for every batch this worker runs."""

    def __init__(self, frame, threshold, kernel):
        self.dims = frame.dims
        self.threshold = threshold
        self.engine = BucEngine(
            None, frame.dims, threshold, writer=ResultWriter(frame.dims),
            kernel=kernel_from_frame(kernel, frame),
        )
        self.cache = PrefixCache()


def _init_worker(frame, threshold, kernel):
    global _STATE
    _STATE = _WorkerState(frame, threshold, kernel)


def _run_batch(tasks):
    """Run a batch of subtree tasks; returns ``[(cuboid, cells), ...]``."""
    state = _STATE
    writer = ResultWriter(state.dims)
    state.engine.writer = writer
    for task in tasks:
        state.engine.run_task(task, breadth_first=True, cache=state.cache)
    return list(writer.result.cuboids.items())


def _batched(tasks, batch_size):
    return [
        tasks[i : i + batch_size] for i in range(0, len(tasks), batch_size)
    ]


def multiprocess_iceberg_cube(relation, dims=None, minsup=1, workers=None,
                              batch_size=4, kernel="auto"):
    """Compute the iceberg cube with a local process pool.

    ``workers`` defaults to the machine's CPU count (capped at 8).  The
    processing tree is divided into roughly ``TASKS_PER_WORKER`` subtree
    tasks per worker, sorted largest-first and dealt in batches of
    ``batch_size`` so the pool's demand scheduling keeps the cores busy
    while batches stay big enough to amortise result pickling.
    ``kernel`` picks the refinement implementation (``"auto"``,
    ``"columnar"`` or ``"numpy"``).  Returns a
    :class:`~repro.core.result.CubeResult`.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if not dims:
        raise PlanError("need at least one cube dimension")
    threshold = as_threshold(minsup)
    validate_measures(threshold, relation)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers < 1:
        raise PlanError("workers must be >= 1, got %r" % (workers,))
    if batch_size < 1:
        raise PlanError("batch_size must be >= 1, got %r" % (batch_size,))

    frame = ColumnarFrame.from_relation(relation, dims)
    tree = ProcessingTree(dims)
    result = CubeResult(dims)

    if workers == 1:
        # Inline: sequential BUC over the columnar kernel, no pool.
        _init_worker(frame, threshold, kernel)
        batches = [_run_batch([task]) for task in binary_divide(tree, 1)]
    else:
        tasks = binary_divide(tree, workers * TASKS_PER_WORKER)
        # Largest subtrees first: stragglers surface early and the
        # demand scheduler back-fills with the small tail tasks.
        tasks.sort(key=lambda t: t.size(tree), reverse=True)
        jobs = _batched(tasks, batch_size)
        # Prefer fork (copy-on-write input); fall back to spawn, where
        # the initializer pickles the frame once per worker.
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = get_context("spawn")
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(frame, threshold, kernel),
        ) as pool:
            batches = pool.imap_unordered(_run_batch, jobs)
            batches = list(batches)

    for batch in batches:
        for cuboid, cells in batch:
            # Tree division partitions the cuboids, so across-task
            # collisions only happen at shared roots of chopped tasks;
            # accumulate to stay correct either way.
            mine = result.cuboids.get(cuboid)
            if mine is None:
                result.cuboids[cuboid] = cells
            else:
                for cell, (count, value) in cells.items():
                    existing = mine.get(cell)
                    if existing is None:
                        mine[cell] = (count, value)
                    else:
                        mine[cell] = (existing[0] + count, existing[1] + value)

    count = frame.n_rows
    total = sum(frame.measures)
    if threshold.qualifies(count, total):
        result.add_cell((), (), count, total)
    return result

"""Real multi-process cube computation (not simulated).

The simulated cluster reproduces the *paper's* measurements; this
module is for users who just want their cube faster on a multi-core
machine.  It parallelizes the way ASL does — one task per cuboid,
demand-balanced across a process pool — with each worker hash
-aggregating its cuboids over a copy-on-write snapshot of the relation
(the pool is forked where the platform allows, so the input is not
re-pickled per task).

Results are exactly the library's usual cells and are validated against
the naive oracle in the test suite.  This backend intentionally has no
timing model: wall-clock here is your machine's, not the thesis'.
"""

import os
from multiprocessing import get_context

from ..core.result import CubeResult
from ..core.thresholds import as_threshold, validate_measures
from ..errors import PlanError
from ..lattice.lattice import CubeLattice

# Worker-process globals, set once by the pool initializer.
_ROWS = None
_MEASURES = None


def _init_worker(rows, measures):
    global _ROWS, _MEASURES
    _ROWS = rows
    _MEASURES = measures


def _compute_cuboids(job):
    """Aggregate a batch of cuboids; returns filtered cell dicts."""
    positions_by_cuboid, threshold = job
    out = []
    for cuboid, positions in positions_by_cuboid:
        cells = {}
        for row, measure in zip(_ROWS, _MEASURES):
            key = tuple(row[p] for p in positions)
            acc = cells.get(key)
            if acc is None:
                cells[key] = [1, measure]
            else:
                acc[0] += 1
                acc[1] += measure
        qualified = {
            cell: (count, value)
            for cell, (count, value) in cells.items()
            if threshold.qualifies(count, value)
        }
        out.append((cuboid, qualified))
    return out


def multiprocess_iceberg_cube(relation, dims=None, minsup=1, workers=None,
                              batch_size=4):
    """Compute the iceberg cube with a local process pool.

    ``workers`` defaults to the machine's CPU count (capped at 8).
    Cuboids are dealt to workers in batches of ``batch_size`` so the
    pool's demand scheduling keeps the cores busy, mirroring ASL's
    fine-grained task design.  Returns a
    :class:`~repro.core.result.CubeResult`.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    if not dims:
        raise PlanError("need at least one cube dimension")
    threshold = as_threshold(minsup)
    validate_measures(threshold, relation)
    if workers is None:
        workers = min(8, os.cpu_count() or 1)
    if workers < 1:
        raise PlanError("workers must be >= 1, got %r" % (workers,))

    lattice = CubeLattice(dims)
    cuboids = lattice.cuboids(include_all=False)
    positions = [
        (cuboid, relation.dim_indices(cuboid)) for cuboid in cuboids
    ]
    jobs = [
        (positions[i : i + batch_size], threshold)
        for i in range(0, len(positions), batch_size)
    ]

    result = CubeResult(dims)
    if workers == 1 or len(jobs) <= 1:
        _init_worker(relation.rows, relation.measures)
        batches = map(_compute_cuboids, jobs)
        for batch in batches:
            for cuboid, cells in batch:
                for cell, (count, value) in cells.items():
                    result.add_cell(cuboid, cell, count, value)
    else:
        # Prefer fork (copy-on-write input); fall back to spawn, where
        # the initializer pickles the input once per worker.
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = get_context("spawn")
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(relation.rows, relation.measures),
        ) as pool:
            for batch in pool.imap_unordered(_compute_cuboids, jobs):
                for cuboid, cells in batch:
                    for cell, (count, value) in cells.items():
                        result.add_cell(cuboid, cell, count, value)

    count = len(relation)
    total = sum(relation.measures)
    if threshold.qualifies(count, total):
        result.add_cell((), (), count, total)
    return result

"""Algorithm BPP — Breadth-first writing, Partitioned, Parallel BUC
(Section 3.2, Figures 3.3 and 3.5).

BPP differs from RP in two ways.  First, the dataset is range
-partitioned per attribute instead of replicated: for each of the ``m``
cube dimensions the relation is split into ``n`` contiguous code-range
chunks, and processor ``j`` owns chunk ``R_i(j)`` of every dimension
``i``.  Each chunk is one task: processor ``j`` computes the *partial*
cuboids of subtree ``T_{A_i}`` over ``R_i(j)``; unioning the ``n``
partial results completes the cuboids (cells never straddle chunks
because every cuboid in ``T_{A_i}`` contains ``A_i`` and chunks
partition ``A_i``'s code range).  Second, cuboids are written breadth
-first (BPP-BUC), which removes RP's scattering I/O.

Load balance still hinges on how evenly range partitioning splits the
data — with skewed dimensions the chunks, and hence the per-processor
work, vary badly (Figure 4.1).
"""

from ..core.buc import BucEngine
from ..core.stats import OpStats
from ..core.writer import ResultWriter
from ..cluster.simulator import TaskExecution, run_static
from ..data.io import relation_bytes
from ..lattice.processing_tree import SubtreeTask
from .base import (
    AlgorithmFeatures,
    ParallelCubeAlgorithm,
    ParallelRunResult,
    add_all_node,
    committed_result,
    merged_result,
)


class BPP(ParallelCubeAlgorithm):
    """Breadth-first writing, Partitioned, Parallel BUC."""

    name = "BPP"
    features = AlgorithmFeatures("breadth-first", "weak", "bottom-up", "partitioned")

    def __init__(self, include_partitioning_cost=False):
        """``include_partitioning_cost``: also charge the pre-processing
        range-partitioning pass (the thesis treats it as a separate
        pre-processing step, so the default excludes it)."""
        self.include_partitioning_cost = include_partitioning_cost

    def plan_chunks(self, relation, dims, n):
        """Range-partition the relation per dimension.

        Returns ``{dim: [chunk_0, ..., chunk_{n-1}]}`` — processor ``j``
        owns chunk ``j`` of every dimension.
        """
        return {dim: relation.range_partition(dim, n) for dim in dims}

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        n = len(cluster)
        chunks = self.plan_chunks(relation, dims, n)
        # Task (i, j): processor j processes its chunk of dimension i.
        assignments = []
        for j in range(n):
            for dim in dims:
                assignments.append((j, (dim, j)))
        writers = []

        def execute(processor, task):
            dim, j = task
            chunk = chunks[dim][j]
            stats = OpStats()
            if processor.state is None:
                writer = ResultWriter(dims)
                processor.state = writer
                writers.append(writer)
            writer = processor.state
            if fault_plan is not None:
                # Replayable task: each attempt's partial cuboids live in
                # their own writer, discarded unless the attempt commits.
                writer = ResultWriter(dims)
            before = writer.snapshot()
            read_bytes = 0
            if len(chunk):
                stats.read_tuples += len(chunk)
                read_bytes = relation_bytes(chunk)
                engine = BucEngine(chunk, dims, minsup, writer, stats)
                engine.run_task(SubtreeTask((dim,)), breadth_first=True)
            cells, nbytes, switches = ResultWriter.delta(before, writer.snapshot())
            return TaskExecution(
                label="T_%s@%d" % (dim, j),
                stats=stats,
                cells=cells,
                bytes_written=nbytes,
                switches=switches,
                read_bytes=read_bytes,
                output=writer.result if fault_plan is not None else None,
            )

        if self.include_partitioning_cost:
            self._charge_partitioning(relation, dims, cluster)
        simulation = run_static(cluster, assignments, execute, fault_plan=fault_plan)
        if fault_plan is not None:
            result = committed_result(dims, simulation)
        else:
            result = merged_result(dims, writers)
        add_all_node(result, relation, minsup)
        return ParallelRunResult(self.name, result, simulation, extras={"chunks": chunks})

    def _charge_partitioning(self, relation, dims, cluster):
        """Price the pre-processing step (Section 3.2.1).

        Processor ``i`` partitions attribute ``i``, ``i+n``, ... — one
        full scan plus a move per tuple per attribute it owns — and ships
        ``(n-1)/n`` of the data to the other processors' disks.
        """
        n = len(cluster)
        total_bytes = relation_bytes(relation)
        for i, processor in enumerate(cluster.processors):
            owned = [dim for k, dim in enumerate(dims) if k % n == i]
            if not owned:
                continue
            stats = OpStats()
            stats.read_tuples += len(relation) * len(owned)
            stats.partition_moves += len(relation) * len(owned)
            execution = TaskExecution(
                label="partition@%d" % i,
                stats=stats,
                read_bytes=total_bytes * len(owned),
                comm_bytes=int(total_bytes * len(owned) * (n - 1) / max(1, n)),
                comm_messages=(n - 1) * len(owned),
            )
            cluster.charge(processor, execution)

"""Shared-memory transport for the local multiprocess backend.

The old data plane returned every batch's cells as a pickled
``{cuboid: {cell: (count, sum)}}`` dict — megabytes of tuple soup
squeezed through the pool's result pipe, serialized in the worker and
deserialized in the parent, both at Python speed.  This module replaces
that with segments of bit-packed arrays:

* :func:`encode_result` / :func:`decode_result` — a compact columnar
  codec for cube results.  Cells re-use the
  :class:`~repro.core.columnar.KeyPacking` 63-bit layout (one ``int64``
  per cell) when the frame has one; relations whose cardinalities
  overflow the packed-key budget take the tuple-key fallback (one
  ``int64`` *per coordinate*, exact for any code an ``array('q')``
  column can hold).  Counts travel as ``int64`` and measure sums as
  ``float64``, so the round-trip is bit-exact in both directions.
* :class:`ShmTransport` — run-scoped segment management.  Workers
  create segments named ``rsm-<run_id>-...`` (POSIX shared memory via
  :mod:`multiprocessing.shared_memory`, or mmap'd files under a
  run-scoped temp directory when shared memory is unavailable or
  disabled) and return only a tiny ``(kind, name, nbytes)`` descriptor
  over the pipe; the parent attaches, decodes — with numpy when
  available — and unlinks.
* :meth:`ShmTransport.sweep` — crash hygiene.  A worker SIGKILLed
  mid-write leaks its half-written segment (the parent never sees the
  descriptor), so the supervisor sweeps every run-prefixed segment it
  is not about to read whenever it respawns the pool, and again when
  the run ends.  Deterministic names make the sweep exact: nothing
  outside this run's prefix is ever touched.

The codec is transport-independent: ``encode_result`` returns plain
``bytes``, so the pickle fallback path (``use_shm=False``) and the unit
tests exercise exactly the bytes the segments carry.
"""

import mmap
import os
import struct
import tempfile

from ..core.columnar import HAS_NUMPY

if HAS_NUMPY:  # optional fast encode/decode path
    import numpy as _np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - very old / exotic platforms
    _shared_memory = None

#: Codec magic ("RSM1") — first word of every encoded result payload.
MAGIC = 0x52534D31

#: Directory POSIX shared memory appears under on Linux; scanned by the
#: leak sweep (and by the chaos tests, from the outside).
DEV_SHM = "/dev/shm"

_HEADER = struct.Struct("<II")          # magic, n_cuboids
_CUBOID = struct.Struct("<HBxI")        # n_dims, mode, pad, n_cells
_MODE_PACKED = 0                        # one packed int64 key per cell
_MODE_COLUMNS = 1                       # one int64 per cell coordinate


def _align8(offset):
    return (offset + 7) & ~7


# ----------------------------------------------------------------------
# result codec
# ----------------------------------------------------------------------
def encode_result(items, dims, packing):
    """Encode ``[(cuboid, {cell: (count, sum)}), ...]`` to bytes.

    ``dims`` is the frame's dimension tuple (cuboid names are mapped to
    positions in it); ``packing`` the frame's
    :class:`~repro.core.columnar.KeyPacking`, or ``None`` to force the
    tuple-key fallback encoding for every cuboid.
    """
    index = {name: i for i, name in enumerate(dims)}
    chunks = [_HEADER.pack(MAGIC, len(items))]
    size = _HEADER.size
    for cuboid, cells in items:
        positions = [index[name] for name in cuboid]
        k = len(positions)
        n = len(cells)
        mode = _MODE_PACKED if (packing is not None and k) else _MODE_COLUMNS
        head = _CUBOID.pack(k, mode, n) + struct.pack("<%dH" % k, *positions)
        pad = _align8(size + len(head)) - (size + len(head))
        head += b"\x00" * pad
        chunks.append(head)
        size += len(head)
        if mode == _MODE_PACKED:
            body = _encode_packed(cells, positions, packing, n)
        else:
            body = _encode_columns(cells, k, n)
        for part in body:
            chunks.append(part)
            size += len(part)
    return b"".join(chunks)


def _encode_packed(cells, positions, packing, n):
    shifts = [packing.shifts[p] for p in positions]
    if HAS_NUMPY and n:
        mat = _np.array(list(cells.keys()), dtype=_np.int64)
        keys = _np.bitwise_or.reduce(
            mat << _np.asarray(shifts, dtype=_np.int64), axis=1)
        counts = _np.fromiter((v[0] for v in cells.values()),
                              dtype=_np.int64, count=n)
        sums = _np.fromiter((v[1] for v in cells.values()),
                            dtype=_np.float64, count=n)
        return [keys.tobytes(), counts.tobytes(), sums.tobytes()]
    from array import array
    keys = array("q", bytes(8 * n))
    counts = array("q", bytes(8 * n))
    sums = array("d", bytes(8 * n))
    for i, (cell, (count, total)) in enumerate(cells.items()):
        key = 0
        for code, shift in zip(cell, shifts):
            key |= code << shift
        keys[i] = key
        counts[i] = count
        sums[i] = total
    return [keys.tobytes(), counts.tobytes(), sums.tobytes()]


def _encode_columns(cells, k, n):
    from array import array
    cols = [array("q", bytes(8 * n)) for _ in range(k)]
    counts = array("q", bytes(8 * n))
    sums = array("d", bytes(8 * n))
    for i, (cell, (count, total)) in enumerate(cells.items()):
        for j in range(k):
            cols[j][i] = cell[j]
        counts[i] = count
        sums[i] = total
    return [col.tobytes() for col in cols] + [counts.tobytes(),
                                              sums.tobytes()]


def decode_result(buf, dims, packing):
    """Decode :func:`encode_result` bytes back to cuboid/cells items.

    Returns ``[(cuboid, {cell: (count, sum)}), ...]`` with Python ints
    and floats — bit-identical to what the worker's writer held.
    """
    view = memoryview(buf)
    magic, n_cuboids = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ValueError("bad result segment magic 0x%08x" % magic)
    offset = _HEADER.size
    out = []
    for _ in range(n_cuboids):
        k, mode, n = _CUBOID.unpack_from(view, offset)
        offset += _CUBOID.size
        positions = struct.unpack_from("<%dH" % k, view, offset)
        offset += 2 * k
        offset = _align8(offset)
        cuboid = tuple(dims[p] for p in positions)
        if mode == _MODE_PACKED:
            cells, offset = _decode_packed(view, offset, positions,
                                           packing, n)
        else:
            cells, offset = _decode_columns(view, offset, k, n)
        out.append((cuboid, cells))
    return out


def _int64_list(view, offset, n):
    if HAS_NUMPY:
        return _np.frombuffer(view, dtype=_np.int64, count=n,
                              offset=offset).tolist()
    return view[offset:offset + 8 * n].cast("q").tolist()


def _float64_list(view, offset, n):
    if HAS_NUMPY:
        return _np.frombuffer(view, dtype=_np.float64, count=n,
                              offset=offset).tolist()
    return view[offset:offset + 8 * n].cast("d").tolist()


def _decode_packed(view, offset, positions, packing, n):
    if packing is None:
        raise ValueError("packed-mode segment but the frame has no packing")
    if HAS_NUMPY:
        keys = _np.frombuffer(view, dtype=_np.int64, count=n, offset=offset)
        code_cols = [
            ((keys >> packing.shifts[p]) & packing.masks[p]).tolist()
            for p in positions
        ]
    else:
        raw = view[offset:offset + 8 * n].cast("q")
        code_cols = [
            [(key >> packing.shifts[p]) & packing.masks[p] for key in raw]
            for p in positions
        ]
    offset += 8 * n
    counts = _int64_list(view, offset, n)
    offset += 8 * n
    sums = _float64_list(view, offset, n)
    offset += 8 * n
    cells = dict(zip(zip(*code_cols), zip(counts, sums))) if code_cols else {}
    return cells, offset


def _decode_columns(view, offset, k, n):
    code_cols = []
    for _ in range(k):
        code_cols.append(_int64_list(view, offset, n))
        offset += 8 * n
    counts = _int64_list(view, offset, n)
    offset += 8 * n
    sums = _float64_list(view, offset, n)
    offset += 8 * n
    if k:
        cells = dict(zip(zip(*code_cols), zip(counts, sums)))
    else:
        # Zero-dimension cuboid (defensive): n is 0 or 1 cell at ().
        cells = {(): (counts[0], sums[0])} if n else {}
    return cells, offset


# ----------------------------------------------------------------------
# segments
# ----------------------------------------------------------------------
def _untrack(shm):
    """Detach a SharedMemory object from this process's resource tracker.

    Segment lifetime is owned by the run (creator writes, parent
    unlinks, the supervisor sweeps leaks), so the per-process tracker
    must not also try to unlink at interpreter exit — that produces
    spurious "leaked shared_memory" warnings for segments the parent
    already reclaimed.  Best-effort: the private registry moved across
    Python versions, and 3.13+ has ``track=False`` instead.
    """
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class Segment:
    """One attached or created segment: a writable buffer + descriptor."""

    __slots__ = ("kind", "name", "nbytes", "buf", "_shm", "_mmap", "_file")

    def __init__(self, kind, name, nbytes, buf, shm=None, mm=None, file=None):
        self.kind = kind
        self.name = name
        self.nbytes = nbytes
        self.buf = buf
        self._shm = shm
        self._mmap = mm
        self._file = file

    @property
    def descriptor(self):
        """The picklable ``(kind, name, nbytes)`` handle sent over the pipe."""
        return (self.kind, self.name, self.nbytes)

    def close(self):
        self.buf = None
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):  # pragma: no cover - still viewed
                # BufferError: a frame built over this segment still
                # holds memoryview casts (worker exit order is GC's
                # whim); the mapping dies with the process either way.
                pass
            self._shm = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def unlink(self):
        """Remove the backing object (close first if still attached)."""
        kind, name = self.kind, self.name
        self.close()
        _unlink_raw(kind, name)


def _unlink_raw(kind, name):
    if kind == "shm":
        if _shared_memory is None:  # pragma: no cover - guarded by create
            return
        try:
            seg = _shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            return
        # No _untrack here: on 3.11 this attach registered with the
        # tracker and unlink() below unregisters — they balance.
        try:
            seg.close()
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - racing
            pass
    elif kind == "file":
        try:
            os.unlink(name)
        except OSError:
            pass


class ShmTransport:
    """Run-scoped segment factory shared by the parent and its workers.

    Picklable (it rides in the pool initargs); each process creates and
    attaches segments independently — only names cross the pipe.

    ``mode`` is ``"shm"`` (POSIX shared memory) or ``"file"`` (mmap'd
    files under ``directory``, the fallback for platforms without
    ``multiprocessing.shared_memory`` and for ``--no-shm`` runs that
    still want spill-free transport).  Creation failures in shm mode
    (e.g. a full ``/dev/shm``) fall back to file mode per segment when a
    directory is available.
    """

    __slots__ = ("run_id", "mode", "directory", "_seq")

    def __init__(self, run_id, mode="shm", directory=None):
        if mode not in ("shm", "file"):
            raise ValueError("unknown transport mode %r" % (mode,))
        if mode == "shm" and _shared_memory is None:
            mode = "file"
        if mode == "file" and directory is None:
            raise ValueError("file transport needs a directory")
        self.run_id = run_id
        self.mode = mode
        self.directory = directory
        self._seq = 0

    @classmethod
    def for_run(cls, run_id, prefer_shm=True):
        """Build the transport for one run, picking the best mode.

        File mode always gets a run-scoped temp directory (even as a
        standby for shm-mode creation failures); the parent removes it
        in :meth:`shutdown`.
        """
        directory = tempfile.mkdtemp(prefix="rsm-%s-" % run_id)
        mode = "shm" if (prefer_shm and _shared_memory is not None) else "file"
        return cls(run_id, mode, directory)

    def __getstate__(self):
        return (self.run_id, self.mode, self.directory)

    def __setstate__(self, state):
        self.run_id, self.mode, self.directory = state
        self._seq = 0

    def _next_name(self, tag):
        self._seq += 1
        return "rsm-%s-%s-%d-%d" % (self.run_id, tag, os.getpid(), self._seq)

    @property
    def prefix(self):
        return "rsm-%s-" % self.run_id

    def create(self, nbytes, tag="seg"):
        """Create a writable segment of ``nbytes`` (run-prefixed name)."""
        if nbytes <= 0:
            return Segment("empty", "", 0, memoryview(b""))
        name = self._next_name(tag)
        if self.mode == "shm":
            try:
                shm = _shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes)
            except OSError:
                if self.directory is None:
                    raise
            else:
                _untrack(shm)
                return Segment("shm", shm.name, nbytes,
                               memoryview(shm.buf)[:nbytes], shm=shm)
        path = os.path.join(self.directory, name)
        handle = open(path, "w+b")
        try:
            handle.truncate(nbytes)
            mm = mmap.mmap(handle.fileno(), nbytes)
        except BaseException:
            handle.close()
            raise
        return Segment("file", path, nbytes, memoryview(mm), mm=mm,
                       file=handle)

    def attach(self, descriptor):
        """Attach a segment created in another process (read/write)."""
        kind, name, nbytes = descriptor
        if kind == "empty" or nbytes == 0:
            return Segment("empty", "", 0, memoryview(b""))
        if kind == "shm":
            shm = _shared_memory.SharedMemory(name=name)
            _untrack(shm)
            return Segment("shm", name, nbytes,
                           memoryview(shm.buf)[:nbytes], shm=shm)
        if kind == "file":
            handle = open(name, "r+b")
            try:
                mm = mmap.mmap(handle.fileno(), nbytes)
            except BaseException:
                handle.close()
                raise
            return Segment("file", name, nbytes, memoryview(mm), mm=mm,
                           file=handle)
        raise ValueError("unknown segment kind %r" % (kind,))

    # ------------------------------------------------------------------
    # crash hygiene
    # ------------------------------------------------------------------
    def leaked_segments(self, exclude=()):
        """Names of run-prefixed segments currently on the system.

        ``exclude`` lists descriptor names still legitimately alive
        (e.g. the input frame segment).
        """
        skip = {os.path.basename(name) for name in exclude}
        found = []
        if _shared_memory is not None and os.path.isdir(DEV_SHM):
            for entry in os.listdir(DEV_SHM):
                if entry.startswith(self.prefix) and entry not in skip:
                    found.append(("shm", entry))
        if self.directory and os.path.isdir(self.directory):
            for entry in os.listdir(self.directory):
                if entry.startswith(self.prefix) and entry not in skip:
                    found.append(("file", os.path.join(self.directory, entry)))
        return found

    def sweep(self, exclude=()):
        """Unlink every leaked run-prefixed segment; returns the count.

        Called by the supervisor after a pool teardown (no writer can be
        alive then — every worker has been terminated) and at run end,
        so segments whose descriptors died with a SIGKILLed worker are
        reclaimed instead of leaking in ``/dev/shm``.
        """
        leaked = self.leaked_segments(exclude=exclude)
        for kind, name in leaked:
            _unlink_raw(kind, name)
        return len(leaked)

    def shutdown(self, exclude=()):
        """Final sweep plus removal of the run's temp directory."""
        count = self.sweep(exclude=exclude)
        if self.directory and os.path.isdir(self.directory):
            try:
                os.rmdir(self.directory)
            except OSError:  # pragma: no cover - stray files remain
                pass
        return count

"""Algorithm PT — Partitioned Tree (Section 3.4, Figures 3.9 and 3.10).

PT is the thesis' hybrid and its recommended default.  The BUC
processing tree is recursively *binary divided* — each cut removes the
farthest-left edge, splitting a (sub)tree into two halves of equal node
count — until there are ``ratio * n`` tasks (the thesis uses 32n).  The
resulting full/chopped subtrees are scheduled dynamically with prefix
affinity on their roots (top-down), while each task's interior is
computed bottom-up by BPP-BUC with minsup pruning and breadth-first
writing.

The division ratio is the explicit knob trading load balance (more,
finer tasks) against pruning/sort-sharing (fewer, deeper subtrees) —
the dotted line in Figure 3.9 — and is exposed for the ablation bench.
"""

from ..core.buc import BucEngine, PrefixCache
from ..core.stats import OpStats
from ..core.writer import ResultWriter
from ..cluster.simulator import TaskExecution, run_dynamic
from ..lattice.lattice import common_prefix_length
from ..lattice.processing_tree import ProcessingTree, binary_divide
from .base import (
    AlgorithmFeatures,
    ParallelCubeAlgorithm,
    ParallelRunResult,
    add_all_node,
    committed_result,
    input_read_bytes,
    merged_result,
)

DEFAULT_TASK_RATIO = 32


class _PtWorkerState:
    __slots__ = ("engine", "writer", "cache", "loaded", "prev_root")

    def __init__(self, engine, writer):
        self.engine = engine
        self.writer = writer
        self.cache = PrefixCache()
        self.loaded = False
        self.prev_root = None


class PT(ParallelCubeAlgorithm):
    """Partitioned Tree."""

    name = "PT"
    features = AlgorithmFeatures("breadth-first", "strong", "hybrid", "replicated")

    def __init__(self, task_ratio=DEFAULT_TASK_RATIO, affinity=True):
        """``task_ratio``: tasks per processor from binary division (32
        in the thesis).  ``affinity=False`` disables prefix-affinity
        scheduling (ablation)."""
        self.task_ratio = task_ratio
        self.affinity = affinity

    def plan_tasks(self, dims, n_processors):
        """Binary-divide the processing tree into ``ratio * n`` tasks."""
        tree = ProcessingTree(dims)
        return tree, binary_divide(tree, max(1, self.task_ratio * n_processors))

    def _run(self, relation, dims, minsup, cluster, fault_plan=None):
        tree, tasks = self.plan_tasks(dims, len(cluster))
        # Demand-schedule the biggest tasks first so stragglers stay small.
        tasks = sorted(tasks, key=lambda t: (-t.size(tree), t.root))
        writers = []
        read_bytes = input_read_bytes(relation)

        def select_task(processor, pending):
            state = processor.state
            if not self.affinity or state is None or state.prev_root is None:
                return 0
            best_index = 0
            best_key = (-1, 0)
            for index, task in enumerate(pending):
                shared = common_prefix_length(task.root, state.prev_root)
                key = (shared, task.size(tree))
                if key > best_key:
                    best_index, best_key = index, key
            return best_index

        def execute(processor, task):
            stats = OpStats()
            state = processor.state
            if state is None:
                writer = ResultWriter(dims)
                engine = BucEngine(relation, dims, minsup, writer, stats)
                state = processor.state = _PtWorkerState(engine, writer)
                writers.append(writer)
            else:
                state.engine.stats = stats
            first_load = not state.loaded
            if first_load:
                stats.read_tuples += len(relation)
                state.loaded = True
            if fault_plan is not None:
                # Replayable task: isolate the attempt's cells (the prefix
                # cache survives — a failed attempt's sort work stays
                # valid, only its output is discarded).
                target = ResultWriter(dims)
                state.engine.writer = target
            else:
                target = state.writer
            before = target.snapshot()
            cache = state.cache if self.affinity else None
            state.engine.run_task(task, breadth_first=True, cache=cache)
            state.prev_root = task.root
            cells, nbytes, switches = ResultWriter.delta(before, target.snapshot())
            return TaskExecution(
                label="T[%s]" % ("".join(task.root) or "all"),
                stats=stats,
                cells=cells,
                bytes_written=nbytes,
                switches=switches,
                read_bytes=read_bytes if first_load else 0,
                output=target.result if fault_plan is not None else None,
            )

        simulation = run_dynamic(cluster, tasks, select_task, execute,
                                 fault_plan=fault_plan)
        if fault_plan is not None:
            result = committed_result(dims, simulation)
        else:
            result = merged_result(dims, writers)
        add_all_node(result, relation, minsup)
        return ParallelRunResult(self.name, result, simulation, extras={"n_tasks": len(tasks)})

"""The five parallel iceberg-cube algorithms of the thesis."""

from .aht import AHT
from .asl import ASL
from .base import AlgorithmFeatures, ParallelCubeAlgorithm, ParallelRunResult
from .bpp import BPP
from .local import multiprocess_iceberg_cube, multiprocess_leaf_cells
from .pt import PT
from .rp import RP

#: Table 1.1 of the thesis, generated from the implementations.
ALGORITHMS = (RP, BPP, ASL, PT, AHT)


def features_table():
    """Rows of Table 1.1: (name, writing, load balance, relationship,
    data decomposition)."""
    return [(cls.name,) + cls.features.as_row() for cls in ALGORITHMS]


__all__ = [
    "RP",
    "BPP",
    "ASL",
    "PT",
    "AHT",
    "ALGORITHMS",
    "features_table",
    "multiprocess_iceberg_cube",
    "multiprocess_leaf_cells",
    "AlgorithmFeatures",
    "ParallelCubeAlgorithm",
    "ParallelRunResult",
]

"""Benchmark harness reproducing every table and figure of the thesis,
plus the design-choice ablations and future-work extensions."""

from .ablations import ALL_ABLATIONS
from .experiments import ALL_EXPERIMENTS
from .extensions import ALL_EXTENSIONS
from .harness import Check, ExperimentResult, bench_scale, scaled

__all__ = [
    "ALL_EXPERIMENTS",
    "ALL_ABLATIONS",
    "ALL_EXTENSIONS",
    "ExperimentResult",
    "Check",
    "bench_scale",
    "scaled",
]

"""Extension M: the MapReduce backend vs PT-style subtree tasks.

Both real backends parallelize the same iceberg cube, but they cut the
work differently: the local backend deals BUC *subtree tasks* (the
paper's PT shape) to a process pool with everything resident, while
the MapReduce backend streams row splits through a combine/spill/merge
round with bounded memory.  This bench runs both over one weather
workload (real wall-clock) and answers the question the ISSUE poses:
what does the out-of-core path cost when the input *would* have fit —
and does a starved memory budget change the answer (it must not: the
cube is checked cell-identical across all three runs, and the starved
run must actually spill).
"""

import time

from ..data.stream import weather_stream
from ..data.weather import baseline_dims
from ..mr import MIN_MEMORY_BUDGET, mapreduce_iceberg_cube
from ..parallel.local import multiprocess_iceberg_cube
from .harness import ExperimentResult, scaled

#: Starved combiner budget: the engine's floor, small enough that every
#: mapper is forced through mid-split disk spills.
STARVED_BUDGET = MIN_MEMORY_BUDGET

#: Paper-scale tuple count for this bench (scaled by REPRO_BENCH_SCALE).
FULL_TUPLES = 200_000


def ext_mapreduce(n_tuples=None, n_dims=6, minsup=5, workers=2, seed=2001):
    """Extension M: one-round MapReduce vs the PT-style process pool."""
    n_tuples = n_tuples or scaled(FULL_TUPLES, minimum=10000)
    # Splits sized to span several combiner chunks, so the starved
    # budget below has mid-split spill points to hit.
    stream = weather_stream(n_tuples, dims=baseline_dims(n_dims), seed=seed,
                            split_rows=max(8192, n_tuples // workers))
    relation = stream.materialize()

    t0 = time.perf_counter()
    pt_result = multiprocess_iceberg_cube(relation, minsup=minsup,
                                          workers=workers)
    pt_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    mr_result = mapreduce_iceberg_cube(stream, minsup=minsup,
                                       workers=workers)
    mr_seconds = time.perf_counter() - t0
    mr_stats = mr_result.mr_stats

    t0 = time.perf_counter()
    starved_result = mapreduce_iceberg_cube(
        stream, minsup=minsup, workers=workers,
        memory_budget=STARVED_BUDGET)
    starved_seconds = time.perf_counter() - t0
    starved_stats = starved_result.mr_stats

    rows = [
        ["pt subtree pool", round(pt_seconds, 3), pt_result.total_cells(),
         "-", "-", "-"],
        ["mapreduce (default budget)", round(mr_seconds, 3),
         mr_result.total_cells(), mr_stats.spills,
         round(mr_stats.spill_bytes / 1024, 1), mr_stats.runs_merged],
        ["mapreduce (%d KB budget)" % (STARVED_BUDGET >> 10),
         round(starved_seconds, 3), starved_result.total_cells(),
         starved_stats.spills,
         round(starved_stats.spill_bytes / 1024, 1),
         starved_stats.runs_merged],
    ]
    result = ExperimentResult(
        "Extension M",
        "one-round MapReduce vs PT-style subtree tasks: %d weather tuples, "
        "%d dims, minsup %d, %d workers (real wall-clock)"
        % (n_tuples, n_dims, minsup, workers),
        ["backend", "wall (s)", "cells", "spills", "spill KB",
         "runs merged"],
        rows,
        notes="the spill columns are the price of bounded memory: the "
              "starved run externalizes its shuffle yet must produce the "
              "identical cube",
    )
    mr_diff = mr_result.diff(pt_result, tolerance=1e-6, limit=3)
    result.check(
        "mapreduce cube is cell-identical to the PT-style pool",
        not mr_diff, "; ".join(mr_diff) or
        "%d cells match" % mr_result.total_cells(),
    )
    starved_diff = starved_result.diff(mr_result, tolerance=0.0, limit=3)
    result.check(
        "starved-budget run reproduces the default-budget cube exactly",
        not starved_diff, "; ".join(starved_diff) or
        "%d cells, %d spills" % (starved_result.total_cells(),
                                 starved_stats.spills),
    )
    result.check(
        "starved budget actually spills to disk",
        starved_stats.spills > mr_stats.spills
        and starved_stats.spill_bytes > 0,
        "%d spills / %.1f KB vs %d at the default budget"
        % (starved_stats.spills, starved_stats.spill_bytes / 1024,
           mr_stats.spills),
    )
    result.check(
        "every map split was consumed",
        mr_stats.rows == n_tuples,
        "%d rows through %d map tasks" % (mr_stats.rows, mr_stats.map_tasks),
    )
    return result

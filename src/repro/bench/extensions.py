"""Extension experiments: the thesis' future-work items, implemented.

Section 4.9.2 proposes two improvements the thesis never built — a more
sophisticated hash function for AHT and broader sort-overlap reuse —
and the testbed itself was a 16-node *heterogeneous* cluster that the
main experiments only used homogeneously.  These experiments measure
all three:

* :func:`ext_aht_hash_function` — MOD vs multiplicative per-field
  hashing in AHT (the Section 4.9.2 suggestion);
* :func:`ext_overlap_baseline` — the Overlap algorithm (reviewed in
  Section 2.4.1) against PipeSort/PipeHash, checking the literature's
  claim that it beats them via partitioned sub-sorts;
* :func:`ext_heterogeneous_cluster` — the full fast+slow testbed:
  demand scheduling adapts, static assignment straggles;
* :func:`ext_view_selection` — HRU greedy materialized-view selection,
  Section 5.1's "more intelligent materialization strategies";
* :func:`ext_correlation` — correlated attributes, the conclusion's
  other named future-work direction;
* :func:`ext_fault_tolerance` — injected node loss on the simulated
  cluster: the thesis' load-balancing recipe (RP weak/static vs PT
  strong/dynamic) also predicts failure resilience;
* :func:`ext_serving` — the Section 5.1 punchline turned into a
  service: cold-compute vs persistent-store scan vs cache hit under a
  Zipf-skewed query workload (real wall-clock, not simulated);
* :func:`ext_ingest` — streaming micro-batch appends: the WAL's
  durable delta path against the legacy full-leaf rewrite, exactly-once
  dedup of re-sent batch ids, and sustained ingest under a concurrent
  query flood (real wall-clock);
* :func:`~repro.bench.kernelbench.ext_kernel_throughput` — the
  columnar/numpy compute kernels and the multiprocess backend against
  the seed engine and the naive rescan (real wall-clock rows/sec;
  lives in :mod:`repro.bench.kernelbench`, emits ``BENCH_kernel.json``).
"""

from ..cluster.costmodel import CostModel
from ..cluster.faults import FaultPlan, NodeCrash
from ..cluster.spec import ClusterSpec, PII_266, PIII_500, cluster1
from ..core.naive import naive_iceberg_cube
from ..core.overlap import overlap_iceberg_cube
from ..core.pipehash import pipehash_iceberg_cube
from ..core.pipesort import pipesort_iceberg_cube
from ..data.weather import PAPER_CUBE_TUPLES, baseline_dims, dims_by_cardinality, weather_relation
from ..parallel import AHT, ASL, BPP, PT, RP
from .harness import ExperimentResult, scaled
from .kernelbench import ext_kernel_throughput
from .mrbench import ext_mapreduce


def _default_tuples(minimum=3000):
    return scaled(PAPER_CUBE_TUPLES, minimum=minimum)


def ext_aht_hash_function(n_tuples=None, minsup=2, n_processors=8, seed=2001):
    """Testing Section 4.9.2's suggestion: a better hash for AHT.

    The thesis hopes "a more sophisticated hash function may relieve
    AHT's struggling performance" on sparse, high-dimensional cubes.
    Measured on the sparse 9-largest-cardinality cube, the suggestion
    turns out to be a *negative result*: with frequency-ranked
    dictionary codes, the naive MOD hash already keeps the hot values in
    distinct buckets, and once the bit budget is exhausted collisions
    are pigeonhole-bound — no hash can avoid them.  What actually
    relieves AHT is a bigger index (more buckets), measured alongside.
    """
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=dims_by_cardinality("largest", 9),
                                seed=seed)
    rows = []
    runs = {}
    for label, algo in (
        ("mod, 1x buckets", AHT(hash_mode="mod")),
        ("multiplicative, 1x buckets", AHT(hash_mode="multiplicative")),
        ("mod, 16x buckets", AHT(hash_mode="mod", bucket_factor=16.0)),
    ):
        run = algo.run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
        runs[label] = run
        rows.append([label, round(run.makespan, 3)])
    result = ExperimentResult(
        "Extension H",
        "AHT hash function vs index size on a sparse cube (%d tuples, 9 large dims)"
        % n_tuples,
        ["configuration", "wall (s)"],
        rows,
        notes="Section 4.9.2's hoped-for hash improvement does not materialize: "
              "the bottleneck is index size, not hash quality",
    )
    result.check(
        "results identical under every configuration",
        runs["mod, 1x buckets"].result.equals(
            runs["multiplicative, 1x buckets"].result
        )
        and runs["mod, 1x buckets"].result.equals(runs["mod, 16x buckets"].result),
    )
    mod = runs["mod, 1x buckets"].makespan
    mult = runs["multiplicative, 1x buckets"].makespan
    big = runs["mod, 16x buckets"].makespan
    result.check(
        "hash quality is not the bottleneck (swapping it moves < 15%)",
        abs(mult - mod) < 0.15 * mod,
        "mod %.2f vs multiplicative %.2f" % (mod, mult),
    )
    result.check(
        "a larger index relieves AHT far more than a better hash",
        big < 0.8 * min(mod, mult),
        "16x buckets: %.2f vs best 1x hash: %.2f" % (big, min(mod, mult)),
    )
    return result


def ext_overlap_baseline(n_tuples=None, n_dims=7, minsup=2, seed=2001):
    """Overlap vs PipeSort/PipeHash (sequential, priced on one PIII-500)."""
    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2000) // 2
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    model = CostModel()
    rows = []
    seconds = {}
    oracle = naive_iceberg_cube(relation, minsup=minsup)
    exact = True
    for name, runner in (
        ("Overlap", overlap_iceberg_cube),
        ("PipeSort", pipesort_iceberg_cube),
        ("PipeHash", pipehash_iceberg_cube),
    ):
        cube, stats, _plan = runner(relation, minsup=minsup)
        exact = exact and cube.equals(oracle)
        seconds[name] = model.cpu_seconds(stats, PIII_500)
        rows.append([name, round(seconds[name], 3), stats.peak_items])
    result = ExperimentResult(
        "Extension O",
        "Overlap vs the pipe algorithms (%d tuples, %d dims, minsup %d)"
        % (n_tuples, n_dims, minsup),
        ["algorithm", "cpu (s)", "peak in-memory items"],
        rows,
        notes="the thesis reviews the literature's finding that 'Overlap "
              "performs consistently better than PipeSort and PipeHash'",
    )
    result.check("all three agree with the oracle", exact)
    result.check(
        "Overlap's partitioned sub-sorts beat PipeSort's re-sorts",
        seconds["Overlap"] < seconds["PipeSort"],
        "%.2f vs %.2f" % (seconds["Overlap"], seconds["PipeSort"]),
    )
    return result


def ext_heterogeneous_cluster(n_tuples=None, n_dims=7, minsup=2, seed=2001,
                              n_fast=4, n_slow=4):
    """The thesis' actual testbed shape: fast PIII-500s plus slow PII-266s.

    Demand scheduling (ASL/PT/AHT) naturally gives the fast nodes more
    tasks; static assignment (RP/BPP) waits on the slow stragglers.
    """
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    hetero = ClusterSpec([PIII_500] * n_fast + [PII_266] * n_slow,
                         name="heterogeneous")
    n_total = n_fast + n_slow
    rows = []
    ratios = {}
    degradation = {}
    utilization = {}
    for algo_cls in (RP, BPP, ASL, PT, AHT):
        all_fast = algo_cls().run(relation, minsup=minsup,
                                  cluster_spec=cluster1(n_total))
        mixed = algo_cls().run(relation, minsup=minsup, cluster_spec=hetero)
        name = algo_cls.name
        degradation[name] = mixed.makespan / all_fast.makespan
        fast_tasks = sum(p.tasks_run for p in mixed.simulation.processors[:n_fast])
        slow_tasks = sum(p.tasks_run for p in mixed.simulation.processors[n_fast:])
        ratios[name] = fast_tasks / max(1, slow_tasks)
        utilization[name] = 1.0 / mixed.simulation.load_imbalance()
        rows.append([name, round(all_fast.makespan, 3), round(mixed.makespan, 3),
                     round(degradation[name], 2), fast_tasks, slow_tasks,
                     round(utilization[name], 2)])
    # Replacing half the nodes with 0.53x-speed ones leaves the cluster
    # with (n_fast + 0.53*n_slow)/n_total of its capacity; a perfectly
    # adaptive scheduler degrades by only the inverse of that.
    capacity = (n_fast * PIII_500.speed + n_slow * PII_266.speed) / n_total
    ideal = 1.0 / capacity
    slow_bound = PIII_500.speed / PII_266.speed
    result = ExperimentResult(
        "Extension X",
        "Heterogeneous cluster: %d fast + %d slow nodes vs %d fast "
        "(%d tuples, %d dims; adaptive ideal %.2fx, straggler bound %.2fx)"
        % (n_fast, n_slow, n_total, n_tuples, n_dims, ideal, slow_bound),
        ["algorithm", "all-fast (s)", "mixed (s)", "degradation",
         "fast-node tasks", "slow-node tasks", "utilization"],
        rows,
    )
    result.check(
        "demand scheduling shifts work toward the fast nodes",
        all(ratios[a] > 1.2 for a in ("ASL", "PT", "AHT")),
        "fast/slow task ratios: %s"
        % {a: round(ratios[a], 2) for a in ("ASL", "PT", "AHT")},
    )
    result.check(
        "static assignment cannot adapt (equal task split)",
        abs(ratios["BPP"] - 1.0) < 0.01,
        "BPP fast/slow ratio %.2f" % ratios["BPP"],
    )
    result.check(
        "dynamic algorithms degrade near the adaptive ideal",
        all(degradation[a] < ideal * 1.15 for a in ("ASL", "PT")),
        "ASL %.2fx PT %.2fx vs ideal %.2fx"
        % (degradation["ASL"], degradation["PT"], ideal),
    )
    result.check(
        "dynamic algorithms keep the mixed cluster busy; static ones idle it",
        min(utilization[a] for a in ("ASL", "PT", "AHT")) > 0.75
        and max(utilization[a] for a in ("RP", "BPP")) < 0.6,
        "utilization: %s" % {a: round(u, 2) for a, u in utilization.items()},
    )
    return result


def ext_view_selection(n_tuples=None, n_dims=6, seed=2001, budgets=(1, 2, 4, 8)):
    """HRU greedy view selection — Section 5.1's named future work.

    "It is a topic of future work to develop more intelligent
    materialization strategies": this measures the classic greedy
    selection's effect on average query cost (cells scanned per
    group-by) as the view budget grows.
    """
    from ..online.view_selection import MaterializedCubeStore

    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2000) // 2
    # A cube with some density: HRU's savings come from small mid-level
    # views, which need cardinalities below the tuple count.
    relation = weather_relation(n_tuples, dims=dims_by_cardinality("smallest", n_dims),
                                seed=seed)
    rows = []
    costs = {}
    for budget in budgets:
        store = MaterializedCubeStore(relation, max_views=budget)
        costs[budget] = store.average_query_cost()
        rows.append([budget, len(store.views), store.materialized_cells(),
                     round(costs[budget], 1)])
    result = ExperimentResult(
        "Extension V",
        "HRU greedy view selection (%d tuples, %d dims)" % (n_tuples, n_dims),
        ["view budget", "views chosen", "materialized cells", "avg query cost (cells)"],
        rows,
        notes="budget 1 = root only (the thesis' implicit baseline)",
    )
    result.check(
        "each added view lowers (or holds) the average query cost",
        all(costs[b2] <= costs[b1] for b1, b2 in zip(budgets, budgets[1:])),
        "costs: %s" % [round(costs[b]) for b in budgets],
    )
    result.check(
        "a handful of well-chosen views beats root-only by a wide margin",
        costs[budgets[-1]] < 0.5 * costs[budgets[0]],
        "%.0f -> %.0f cells" % (costs[budgets[0]], costs[budgets[-1]]),
    )
    return result


def ext_correlation(n_tuples=None, n_dims=5, minsup=2, n_processors=8, seed=2001,
                    correlations=(0.0, 0.5, 0.9)):
    """Correlated attributes — the conclusion's other future-work item.

    "In future work we would investigate ... OLAP computation, taking
    into account correlations between attributes."  Correlation
    concentrates tuples on diagonals of the cube: fewer distinct cells,
    more support per cell, deeper BUC pruning.
    """
    from ..data.synthetic import correlated_relation

    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2500)
    cards = [30, 25, 20, 15, 10][:n_dims]
    rows = []
    cells = {}
    times = {}
    for rho in correlations:
        relation = correlated_relation(n_tuples, cards, correlation=rho, seed=seed)
        run = ASL().run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
        cells[rho] = run.result.total_cells()
        times[rho] = run.makespan
        rows.append([rho, cells[rho], round(run.result.output_bytes() / 1024, 1),
                     round(times[rho], 3)])
    result = ExperimentResult(
        "Extension R",
        "Attribute correlation vs cube size and ASL cost (%d tuples, %d dims)"
        % (n_tuples, n_dims),
        ["correlation", "qualifying cells", "output KB", "ASL wall (s)"],
        rows,
    )
    lo, hi = correlations[0], correlations[-1]
    result.check(
        "correlation shrinks the iceberg cube (cells concentrate on diagonals)",
        cells[hi] < 0.6 * cells[lo],
        "%d -> %d cells" % (cells[lo], cells[hi]),
    )
    result.check(
        "cell-proportional work (ASL's containers) gets cheaper with correlation",
        times[hi] < times[lo],
        "%.3f -> %.3f s" % (times[lo], times[hi]),
    )
    return result


def ext_fault_tolerance(n_tuples=None, n_dims=7, minsup=2, n_processors=8,
                        seed=2001, crash_counts=(1, 2)):
    """Node loss vs makespan: the robustness analogue of Figure 4.1.

    The thesis argues strong dynamic load balancing (PT) beats weak
    static assignment (RP) on heterogeneous hardware; injected node
    crashes are the extreme of the same effect.  For each algorithm,
    ``k`` nodes crash at 30% of its own fault-free makespan: RP must
    re-run the dead nodes' coarse subtree tasks from scratch on a few
    survivors, while PT's fine-grained demand scheduling spreads the
    orphaned tasks over everyone.  Both still produce the exact cube —
    tasks are replayable and only committed attempts count.
    """
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    oracle = naive_iceberg_cube(relation, minsup=minsup)
    spec = cluster1(n_processors)
    rows = []
    degradation = {}
    exact = True
    recovered = True
    for algo_cls in (RP, PT):
        name = algo_cls.name
        baseline = algo_cls().run(relation, minsup=minsup, cluster_spec=spec)
        exact = exact and baseline.result.equals(oracle)
        rows.append([name, 0, round(baseline.makespan, 3), 1.0, 0, 0, 0.0])
        for k in crash_counts:
            crash_at = 0.3 * baseline.makespan
            plan = FaultPlan(crashes=[NodeCrash(p, crash_at) for p in range(k)],
                             seed=seed)
            run = algo_cls().run(relation, minsup=minsup, cluster_spec=spec,
                                 fault_plan=plan)
            sim = run.simulation
            exact = exact and run.result.equals(oracle)
            recovered = recovered and sim.reassignments > 0
            degradation[(name, k)] = run.makespan / baseline.makespan
            rows.append([name, k, round(run.makespan, 3),
                         round(degradation[(name, k)], 2), sim.retries,
                         sim.reassignments, round(sim.lost_work_seconds, 3)])
    result = ExperimentResult(
        "Extension F",
        "Makespan under injected node loss, RP vs PT "
        "(%d tuples, %d dims, %d nodes; crashes at 30%% of each baseline)"
        % (n_tuples, n_dims, n_processors),
        ["algorithm", "crashed nodes", "wall (s)", "degradation",
         "retries", "reassignments", "lost work (s)"],
        rows,
        notes="the load-balancing recipe predicts failure resilience: "
              "fine-grained demand scheduling absorbs node loss",
    )
    result.check("every faulted run still produces the exact cube", exact)
    result.check(
        "orphaned tasks were actually reassigned to survivors",
        recovered,
    )
    result.check(
        "PT (strong/dynamic) absorbs node loss better than RP (weak/static) "
        "in the worst case",
        max(degradation[("PT", k)] for k in crash_counts)
        < max(degradation[("RP", k)] for k in crash_counts),
        "worst degradation: RP %.2fx, PT %.2fx"
        % (max(degradation[("RP", k)] for k in crash_counts),
           max(degradation[("PT", k)] for k in crash_counts)),
    )
    result.check(
        "losing more nodes costs PT more (no free lunch)",
        all(degradation[("PT", k2)] >= degradation[("PT", k1)] - 0.01
            for k1, k2 in zip(crash_counts, crash_counts[1:])),
        "PT degradation: %s" % [round(degradation[("PT", k)], 2)
                                for k in crash_counts],
    )
    return result


def ext_serving(n_tuples=None, n_dims=6, n_queries=200, skew=1.2, seed=2001):
    """Extension S: serving latency — cold compute vs store vs cache.

    The thesis' Section 5.1 shows precomputed leaves answer queries
    "almost immediately"; this measures what that buys a *service*.  A
    Zipf-skewed stream of group-by queries (hot dashboards dominate, as
    in any real serving workload) is answered three ways: recomputing
    from the raw relation every time (cold), scanning the persistent
    store's presorted leaf (no cache), and through the LRU cache.
    Unlike the paper reproductions, latencies here are real wall-clock
    milliseconds on this machine — the serving stack has no simulated
    cost model.
    """
    import statistics
    import tempfile
    from itertools import combinations
    from random import Random
    from time import perf_counter

    from ..core.naive import naive_cuboid
    from ..serve import CubeServer, CubeStore

    n_tuples = n_tuples or _default_tuples(minimum=4000)
    dims = baseline_dims(n_dims)
    relation = weather_relation(n_tuples, dims=dims, seed=seed)

    # The query population: every 1- and 2-dimension roll-up at a few
    # thresholds.  Zipf weights make a handful of them carry most traffic.
    population = [
        (cuboid, minsup)
        for size in (1, 2)
        for cuboid in combinations(dims, size)
        for minsup in (1, 2, 5)
    ]
    rng = Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(population))]
    workload = rng.choices(population, weights=weights, k=n_queries)
    distinct = sorted(set(workload), key=population.index)

    with tempfile.TemporaryDirectory() as tmp:
        t0 = perf_counter()
        store = CubeStore.build(relation, tmp, cluster_spec=cluster1(8))
        build_seconds = perf_counter() - t0

        # Cold path: every query rescans and re-aggregates the raw input.
        cold_ms = []
        for cuboid, minsup in distinct:
            t0 = perf_counter()
            cells = naive_cuboid(relation, cuboid)
            answer = {c: a for c, a in cells.items() if a[0] >= minsup}
            cold_ms.append((perf_counter() - t0) * 1000.0)
        oracle_answers = {
            (cuboid, minsup): {
                c: a
                for c, a in naive_cuboid(relation, cuboid).items()
                if a[0] >= minsup
            }
            for cuboid, minsup in distinct
        }

        # Store path: cache disabled, every answer is a sorted-leaf scan.
        exact = True
        scan_server = CubeServer(store, cache_size=0)
        for cuboid, minsup in distinct:  # warm the leaf files once
            answer = scan_server.query(cuboid, minsup)
            exact = exact and answer.cells == oracle_answers[(cuboid, minsup)]
        for cuboid, minsup in workload:
            scan_server.query(cuboid, minsup)
        # records() preserves arrival order: drop the warm-up pass, keep
        # the workload's in-memory scans.
        store_ms = [
            1000.0 * record.latency_s
            for record in scan_server.telemetry.records("store")[len(distinct):]
        ]
        scan_server.close()

        # Cached path: the same workload through the LRU cache.
        hot_server = CubeServer(store, cache_size=len(population))
        for cuboid, minsup in workload:
            hot_server.query(cuboid, minsup)
        cache_ms = [
            1000.0 * latency
            for latency in hot_server.telemetry.latencies("cache")
        ]
        cache_stats = hot_server.cache.stats()
        hot_server.close()
        store.close()

    cold_median = statistics.median(cold_ms)
    store_median = statistics.median(store_ms)
    cache_median = statistics.median(cache_ms) if cache_ms else 0.0
    rows = [
        ["cold compute (raw rescan)", round(cold_median, 4), len(distinct), "-"],
        ["store scan (sorted leaf)", round(store_median, 4), len(store_ms), "-"],
        ["cache hit (LRU)", round(cache_median, 4), len(cache_ms),
         round(cache_stats["hit_rate"], 3)],
    ]
    result = ExperimentResult(
        "Extension S",
        "serving an iceberg workload: %d Zipf-skewed queries over %d tuples, "
        "%d dims (store build %.2f s real)"
        % (n_queries, n_tuples, n_dims, build_seconds),
        ["answer path", "median latency (ms)", "queries", "cache hit rate"],
        rows,
        notes="real wall-clock on this machine; the store pays one ordered "
              "scan per query, the cache pays a dict lookup",
    )
    result.check("store answers are oracle-exact", exact)
    result.check(
        "store scan beats recomputing from raw data",
        store_median < cold_median,
        "%.4f ms vs %.4f ms" % (store_median, cold_median),
    )
    result.check(
        "cache hit is the fastest path",
        cache_ms and cache_median <= store_median
        and cache_median < cold_median,
        "%.4f ms vs store %.4f ms" % (cache_median, store_median),
    )
    result.check(
        "Zipf-skewed repetition keeps the hit rate high",
        cache_stats["hit_rate"] > 0.5,
        "hit rate %.2f over %d queries" % (cache_stats["hit_rate"], n_queries),
    )
    return result


def ext_ingest(n_tuples=None, n_dims=5, n_batches=24, batch_rows=64,
               n_queries=200, skew=1.2, seed=2001):
    """Extension I: streaming ingestion — WAL delta appends vs leaf rewrite.

    The serving tier's original ``append`` rewrote every leaf file per
    micro-batch, so per-append latency grew with the store.  The WAL
    path journals the batch (fsync'd, checksummed, batch-id-stamped),
    applies it as an in-memory delta run and compacts in the
    background — per-append cost tracks the *batch*, not the store.
    This measures both paths on identical batch streams, re-sends every
    batch id to prove exactly-once dedup, then sustains appends through
    a live server under a concurrent Zipf query flood with a real
    per-query deadline.  Latencies are wall-clock on this machine.
    """
    import shutil
    import statistics
    import tempfile
    from itertools import combinations
    from random import Random
    from time import perf_counter

    from ..core.naive import naive_cuboid
    from ..data.relation import Relation
    from ..serve import CubeServer, CubeStore

    n_tuples = n_tuples or _default_tuples(minimum=3000)
    dims = baseline_dims(n_dims)
    relation = weather_relation(n_tuples, dims=dims, seed=seed)
    rng = Random(seed)

    def make_batch(index):
        rows = [relation.rows[rng.randrange(len(relation.rows))]
                for _ in range(batch_rows)]
        measures = [float(rng.randrange(1, 9)) for _ in range(batch_rows)]
        return Relation(relation.dims, rows, measures)

    batches = [make_batch(i) for i in range(n_batches)]

    def everything(upto):
        rows = list(relation.rows)
        measures = list(relation.measures)
        for batch in batches[:upto]:
            rows.extend(batch.rows)
            measures.extend(batch.measures)
        return Relation(relation.dims, rows, measures)

    with tempfile.TemporaryDirectory() as tmp:
        base = "%s/base" % tmp
        CubeStore.build(relation, base, backend="local").close()

        # Legacy path: every append rewrites every leaf file.
        legacy_dir = "%s/legacy" % tmp
        shutil.copytree(base, legacy_dir)
        legacy = CubeStore.open(legacy_dir)
        legacy_ms = []
        for batch in batches:
            t0 = perf_counter()
            legacy.append(batch)
            legacy_ms.append((perf_counter() - t0) * 1000.0)
        legacy.close()

        # WAL path: durable delta batches, background compaction.
        wal_dir = "%s/wal" % tmp
        shutil.copytree(base, wal_dir)
        store = CubeStore.open(wal_dir, wal=True)
        wal_ms = []
        for index, batch in enumerate(batches):
            t0 = perf_counter()
            store.append(batch, batch_id="bench-%d" % index)
            wal_ms.append((perf_counter() - t0) * 1000.0)

        # Exactly-once: re-send every batch id, nothing may change.
        rows_before = store.total_rows
        duplicates_rejected = 0
        for index, batch in enumerate(batches):
            if not store.append(batch, batch_id="bench-%d" % index).applied:
                duplicates_rejected += 1
        dedup_exact = store.total_rows == rows_before

        check_cuboid = tuple(dims[:2])
        wal_cells = store.query(check_cuboid, 2)
        oracle_cells = {
            c: a for c, a in
            naive_cuboid(everything(n_batches), check_cuboid).items()
            if a[0] >= 2}
        ingest_exact = wal_cells == oracle_cells
        store.compact()
        compact_exact = store.query(check_cuboid, 2) == oracle_cells

        # Sustained ingest through a live server under a query flood.
        population = [
            (cuboid, minsup)
            for size in (1, 2)
            for cuboid in combinations(dims, size)
            for minsup in (1, 2, 5)
        ]
        weights = [1.0 / (rank + 1) ** skew
                   for rank in range(len(population))]
        workload = rng.choices(population, weights=weights, k=n_queries)
        server = CubeServer(store, default_deadline_s=5.0)
        flood_batches = [make_batch(n_batches + i) for i in range(n_batches)]
        deadline_errors = 0

        def flood():
            nonlocal deadline_errors
            from ..errors import DeadlineExceededError

            for cuboid, minsup in workload:
                try:
                    server.query(cuboid, minsup)
                except DeadlineExceededError:
                    deadline_errors += 1

        import threading

        flooder = threading.Thread(target=flood)
        flooder.start()
        t0 = perf_counter()
        for index, batch in enumerate(flood_batches):
            server.append(batch, batch_id="flood-%d" % index)
        sustained_s = perf_counter() - t0
        flooder.join()
        appends_per_s = len(flood_batches) / sustained_s
        latencies = sorted(server.telemetry.latencies())
        p95_ms = 1000.0 * latencies[int(0.95 * (len(latencies) - 1))] \
            if latencies else 0.0
        flood_rows = store.total_rows
        expected_rows = (len(relation)
                         + sum(len(b) for b in batches)
                         + sum(len(b) for b in flood_batches))
        nothing_lost = flood_rows == expected_rows
        server.close()
        store.close()

    legacy_median = statistics.median(legacy_ms)
    wal_median = statistics.median(wal_ms)
    half = len(wal_ms) // 2
    wal_early = statistics.median(wal_ms[:half])
    wal_late = statistics.median(wal_ms[half:])
    legacy_late = statistics.median(legacy_ms[half:])
    rows = [
        ["legacy rewrite append", round(legacy_median, 3),
         round(legacy_late, 3), len(legacy_ms)],
        ["WAL delta append", round(wal_median, 3),
         round(wal_late, 3), len(wal_ms)],
        ["sustained (with %d-query flood)" % n_queries,
         round(1000.0 / appends_per_s, 3), round(p95_ms, 3),
         len(flood_batches)],
    ]
    result = ExperimentResult(
        "Extension I",
        "streaming ingestion: %d-row micro-batches into a %d-tuple, "
        "%d-dim store (%.1f appends/s sustained under query load)"
        % (batch_rows, n_tuples, n_dims, appends_per_s),
        ["append path", "median latency (ms)",
         "late-half median / query p95 (ms)", "batches"],
        rows,
        notes="real wall-clock; the legacy path rewrites every leaf per "
              "batch, the WAL path journals the batch and defers the "
              "rewrite to background compaction",
    )
    result.check(
        "WAL append is cheaper than the legacy leaf rewrite",
        wal_median < legacy_median,
        "%.3f ms vs %.3f ms" % (wal_median, legacy_median),
    )
    result.check(
        "WAL append latency stays flat as the store grows",
        wal_late <= max(3.0 * wal_early, wal_early + 1.0),
        "early median %.3f ms, late median %.3f ms" % (wal_early, wal_late),
    )
    result.check(
        "every re-sent batch id is deduplicated, none double-count",
        duplicates_rejected == n_batches and dedup_exact,
        "%d/%d rejected" % (duplicates_rejected, n_batches),
    )
    result.check("delta-visible answers are oracle-exact", ingest_exact)
    result.check("compaction preserves the answers", compact_exact)
    result.check(
        "sustained ingest under a concurrent query flood loses nothing",
        nothing_lost and deadline_errors == 0,
        "%d rows expected, %d stored, %d deadline misses"
        % (expected_rows, flood_rows, deadline_errors),
    )
    return result


ALL_EXTENSIONS = (
    ext_aht_hash_function,
    ext_overlap_baseline,
    ext_heterogeneous_cluster,
    ext_view_selection,
    ext_correlation,
    ext_fault_tolerance,
    ext_serving,
    ext_ingest,
    ext_kernel_throughput,
    ext_mapreduce,
)

"""Ablation experiments for the design decisions the thesis singles out.

These go beyond the thesis' printed figures: each isolates one design
choice the text argues for — breadth-first writing, affinity
scheduling, PT's task-granularity ratio, the cuboid container, and
bottom-up pruning — by toggling exactly that choice and re-measuring.
"""

from ..cluster.spec import cluster1
from ..core.buc import buc_iceberg_cube
from ..core.naive import naive_iceberg_cube
from ..core.partitioned_cube import partitioned_cube
from ..core.pipehash import pipehash_iceberg_cube
from ..core.pipesort import pipesort_iceberg_cube
from ..cluster.costmodel import CostModel
from ..cluster.spec import PIII_500
from ..data.weather import PAPER_CUBE_TUPLES, baseline_dims, dims_by_cardinality, weather_relation
from ..parallel import AHT, ASL, PT, RP
from .harness import ExperimentResult, scaled


def _default_tuples(minimum=3000):
    return scaled(PAPER_CUBE_TUPLES, minimum=minimum)


def ablation_writing_strategy(n_tuples=None, n_dims=9, minsup=2, n_processors=8,
                              seed=2001):
    """Depth-first vs breadth-first writing on the *same* algorithm (RP).

    Figure 3.6 compares RP with BPP, which also changes the data
    decomposition; this ablation flips only the writer.
    """
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    depth = RP().run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
    breadth = RP(breadth_first=True).run(relation, minsup=minsup,
                                         cluster_spec=cluster1(n_processors))
    depth_io = depth.simulation.time_breakdown()[1]
    breadth_io = breadth.simulation.time_breakdown()[1]
    rows = [
        ["RP / depth-first", round(depth.makespan, 3), round(depth_io, 3)],
        ["RP / breadth-first", round(breadth.makespan, 3), round(breadth_io, 3)],
    ]
    result = ExperimentResult(
        "Ablation W",
        "Writing strategy on RP (%d tuples, %d dims)" % (n_tuples, n_dims),
        ["configuration", "wall (s)", "total io (s)"],
        rows,
    )
    result.check(
        "identical cells either way",
        depth.result.equals(breadth.result),
    )
    result.check(
        "breadth-first writing removes most of the write cost",
        breadth_io < depth_io / 3,
        "io %.2f -> %.2f" % (depth_io, breadth_io),
    )
    result.check(
        "writing strategy alone improves RP's wall clock",
        breadth.makespan < depth.makespan,
        "%.2f -> %.2f" % (depth.makespan, breadth.makespan),
    )
    return result


def ablation_affinity_scheduling(n_tuples=None, n_dims=7, minsup=2, n_processors=4,
                                 seed=2001):
    """Affinity vs FIFO demand scheduling for ASL and PT."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    rows = []
    gains = {}
    for name, with_aff, without in (
        ("ASL", ASL(), ASL(affinity=False)),
        ("PT", PT(), PT(affinity=False)),
    ):
        on = with_aff.run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
        off = without.run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
        gains[name] = off.makespan / on.makespan
        rows.append([name, round(on.makespan, 3), round(off.makespan, 3),
                     round(gains[name], 2)])
        if name == "ASL":
            identical = on.result.equals(off.result)
    result = ExperimentResult(
        "Ablation A",
        "Affinity scheduling on/off (%d tuples, %d dims, %d processors)"
        % (n_tuples, n_dims, n_processors),
        ["algorithm", "affinity (s)", "no affinity (s)", "gain"],
        rows,
    )
    result.check("results identical with and without affinity", identical)
    result.check(
        "ASL's container reuse is the bigger win",
        gains["ASL"] > 1.5,
        "ASL gain %.2fx" % gains["ASL"],
    )
    result.check(
        "PT's sort sharing helps too",
        gains["PT"] >= 1.0,
        "PT gain %.2fx" % gains["PT"],
    )
    return result


def ablation_pt_granularity(n_tuples=None, n_dims=7, minsup=2, n_processors=8,
                            ratios=(1, 2, 8, 32), seed=2001):
    """PT's division ratio: load balance vs pruning (Figure 3.9's line)."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    rows = []
    imbalance = {}
    total_cpu = {}
    for ratio in ratios:
        run = PT(task_ratio=ratio).run(relation, minsup=minsup,
                                       cluster_spec=cluster1(n_processors))
        imbalance[ratio] = run.simulation.load_imbalance()
        total_cpu[ratio] = run.simulation.time_breakdown()[0]
        rows.append([ratio, run.extras["n_tasks"], round(run.makespan, 3),
                     round(total_cpu[ratio], 3), round(imbalance[ratio], 2)])
    result = ExperimentResult(
        "Ablation G",
        "PT task-granularity ratio (%d tuples, %d dims, %d processors)"
        % (n_tuples, n_dims, n_processors),
        ["ratio", "tasks", "wall (s)", "total cpu (s)", "imbalance"],
        rows,
        notes="Figure 3.9's dotted line: moving toward finer tasks buys balance "
              "and pays in duplicated sorting/pruning loss",
    )
    coarse, fine = ratios[0], ratios[-1]
    result.check(
        "finer tasks balance better",
        imbalance[fine] <= imbalance[coarse],
        "%.2f @%d -> %.2f @%d" % (imbalance[coarse], coarse, imbalance[fine], fine),
    )
    result.check(
        "finer tasks cost more total work (lost sharing/pruning)",
        total_cpu[fine] > total_cpu[coarse],
        "%.2f @%d -> %.2f @%d" % (total_cpu[coarse], coarse, total_cpu[fine], fine),
    )
    return result


def ablation_container(n_tuples=None, minsup=2, n_processors=8, seed=2001):
    """Skip list vs hash table as the cuboid container (ASL vs AHT)."""
    n_tuples = n_tuples or _default_tuples()
    dense = weather_relation(n_tuples, dims=dims_by_cardinality("smallest", 7),
                             seed=seed)
    sparse = weather_relation(n_tuples, dims=dims_by_cardinality("largest", 7),
                              seed=seed)
    rows = []
    times = {}
    for label, relation in (("dense", dense), ("sparse", sparse)):
        for algo in (ASL(), AHT()):
            run = algo.run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
            times[(algo.name, label)] = run.makespan
            rows.append([label, algo.name, round(run.makespan, 3)])
    result = ExperimentResult(
        "Ablation C",
        "Cuboid container: skip list (ASL) vs hash table (AHT), %d tuples"
        % n_tuples,
        ["cube", "algorithm", "wall (s)"],
        rows,
    )
    result.check(
        "the hash table wins while collisions are few (dense)",
        times[("AHT", "dense")] <= times[("ASL", "dense")],
        "AHT %.2f vs ASL %.2f" % (times[("AHT", "dense")], times[("ASL", "dense")]),
    )
    result.check(
        "collisions flip the verdict on sparse cubes",
        times[("AHT", "sparse")] / times[("ASL", "sparse")]
        > times[("AHT", "dense")] / times[("ASL", "dense")],
        "AHT/ASL dense %.2f -> sparse %.2f"
        % (times[("AHT", "dense")] / times[("ASL", "dense")],
           times[("AHT", "sparse")] / times[("ASL", "sparse")]),
    )
    return result


def ablation_sequential_baselines(n_tuples=None, n_dims=7, seed=2001):
    """Chapter 2's story: BUC's pruning beats the top-down baselines on
    iceberg queries (total work units, single machine)."""
    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2000) // 2
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    model = CostModel()
    rows = []
    seconds = {}
    results = {}
    peaks = {}
    for name, runner in (
        ("BUC", lambda m: buc_iceberg_cube(relation, minsup=m)[:2]),
        ("PipeSort", lambda m: pipesort_iceberg_cube(relation, minsup=m)[:2]),
        ("PipeHash", lambda m: pipehash_iceberg_cube(relation, minsup=m)[:2]),
        ("PartitionedCube", lambda m: partitioned_cube(relation, minsup=m)),
    ):
        for minsup in (1, 4):
            result_obj, stats = runner(minsup)
            seconds[(name, minsup)] = model.cpu_seconds(stats, PIII_500)
            results[(name, minsup)] = result_obj
            peaks[name] = max(stats.peak_items, len(relation))
            rows.append([name, minsup, round(seconds[(name, minsup)], 3),
                         peaks[name]])
    result = ExperimentResult(
        "Ablation S",
        "Sequential baselines, CPU work priced on one PIII-500 (%d tuples, %d dims)"
        % (n_tuples, n_dims),
        ["algorithm", "minsup", "cpu (s)", "peak in-memory items"],
        rows,
    )
    oracle = {m: naive_iceberg_cube(relation, minsup=m) for m in (1, 4)}
    result.check(
        "all four baselines agree with the oracle at both thresholds",
        all(results[(n, m)].equals(oracle[m]) for n, m in results),
    )
    result.check(
        "pruning pays: BUC speeds up with the threshold",
        seconds[("BUC", 4)] < seconds[("BUC", 1)],
        "%.2f -> %.2f" % (seconds[("BUC", 1)], seconds[("BUC", 4)]),
    )
    result.check(
        "top-down algorithms cannot prune (flat cost in the threshold)",
        abs(seconds[("PipeSort", 4)] - seconds[("PipeSort", 1)])
        < 0.05 * seconds[("PipeSort", 1)] + 1e-6,
        "%.2f vs %.2f" % (seconds[("PipeSort", 1)], seconds[("PipeSort", 4)]),
    )
    result.check(
        "BUC beats the sort-based top-down baselines on the iceberg query",
        seconds[("BUC", 4)]
        < min(seconds[("PipeSort", 4)], seconds[("PartitionedCube", 4)]),
        "BUC %.2f vs best sort-based %.2f"
        % (seconds[("BUC", 4)],
           min(seconds[("PipeSort", 4)], seconds[("PartitionedCube", 4)])),
    )
    result.check(
        "PipeHash buys its speed with memory it cannot sustain at scale",
        peaks["PipeHash"] > 1.5 * len(relation),
        "peak %d items vs %d input tuples" % (peaks["PipeHash"], len(relation)),
    )
    return result


def ablation_counting_sort(n_tuples=None, n_dims=7, seed=2001):
    """Comparison sort vs the BUC paper's counting sort in the kernel.

    The original BUC implementation refines partitions with CountingSort
    whenever a dimension's cardinality is small; this measures how much
    of the kernel's comparison work that removes on the weather data.
    """
    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2000) // 2
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    model = CostModel()
    rows = []
    seconds = {}
    results = {}
    for label, kwargs in (
        ("comparison sort", {}),
        ("counting sort", {"counting_sort": True}),
    ):
        for minsup in (1, 2):
            cube, stats, _writer = buc_iceberg_cube(relation, minsup=minsup,
                                                    breadth_first=True, **kwargs)
            seconds[(label, minsup)] = model.cpu_seconds(stats, PIII_500)
            results[(label, minsup)] = cube
            rows.append([label, minsup, round(seconds[(label, minsup)], 3),
                         round(stats.sort_units), stats.partition_moves])
    result = ExperimentResult(
        "Ablation K",
        "BUC refinement: comparison vs counting sort (%d tuples, %d dims)"
        % (n_tuples, n_dims),
        ["refinement", "minsup", "cpu (s)", "sort units", "partition moves"],
        rows,
    )
    result.check(
        "identical cells under both refinements",
        all(results[("comparison sort", m)].equals(results[("counting sort", m)])
            for m in (1, 2)),
    )
    result.check(
        "counting sort removes most of the comparison work",
        seconds[("counting sort", 2)] < seconds[("comparison sort", 2)],
        "%.2f -> %.2f" % (seconds[("comparison sort", 2)],
                          seconds[("counting sort", 2)]),
    )
    return result


ALL_ABLATIONS = (
    ablation_writing_strategy,
    ablation_affinity_scheduling,
    ablation_pt_granularity,
    ablation_container,
    ablation_sequential_baselines,
    ablation_counting_sort,
)

"""Kernel throughput benchmark: the library's perf trajectory, on record.

``ext_kernel_throughput`` measures *real wall-clock* rows/sec for every
compute path over the same synthetic Zipf workloads — naive rescan,
seed ``BucEngine`` (the ``python`` kernel), the stdlib columnar kernel,
the numpy kernel, and the multiprocess backend at 1, 2 and 4 workers
(the multi-core scaling curve) — across dimensionalities d ∈ {6, 10,
14} and a minsup sweep, checking that every implementation produces
identical cells while it is timed.

Besides the usual thesis-style table it emits machine-readable
``BENCH_kernel.json`` so later PRs have a perf baseline to defend:

* absolute ``rows_per_sec`` per implementation and workload (machine
  -dependent — context, not contract);
* ``speedup_vs_python`` ratios (machine-independent — the contract);
* ``cpu_count``/``numpy`` so scaling claims are gated honestly: the
  4-worker speedup check only applies where 4 cores exist.

``python -m repro.bench.kernelbench`` runs the benchmark standalone and,
with ``--baseline <committed json>``, fails (exit 1) if the single-core
columnar speedup ratio regressed more than 25% against the baseline —
ratios, not absolute rows/sec, so a faster or slower CI machine neither
masks nor fakes a regression.
"""

import json
import logging
import os
import time

from ..core.buc import buc_iceberg_cube
from ..core.columnar import HAS_NUMPY
from ..core.naive import naive_iceberg_cube
from ..data.synthetic import zipf_relation
from ..parallel.local import multiprocess_iceberg_cube
from .harness import ExperimentResult, bench_scale, scaled

BENCH_JSON_SCHEMA = "repro-kernel-bench/1"

#: Minimum single-core speedup (columnar family vs the seed python
#: kernel) demanded at full workload scale on the 10-dim workload.
TARGET_SINGLE_CORE = 5.0

#: Minimum 4-worker vs 1-worker speedup demanded where >= 4 CPUs exist
#: at full workload scale (the shared-memory data plane's contract).
TARGET_SCALING_4V1 = 2.5

#: The scaling-curve workload: compute-dense relative to its output so
#: the curve measures computation scaling.  An output-bound workload
#: (e.g. the d=10 minsup=5 anchor: ~518k cells from 20k rows) caps
#: *any* parallel backend near 1x by Amdahl — materializing the result
#: cells as Python dicts is inherently serial in the parent and costs
#: as much as computing them — so it is the wrong instrument for a
#: scaling claim, exactly as a 1-core box is.
SCALING_D = 10
SCALING_ROWS_FULL = 80000
SCALING_MINSUP = 100

log = logging.getLogger(__name__)

#: Regression tolerance for the --baseline comparison (ratio of ratios).
REGRESSION_TOLERANCE = 0.25

#: Maximum instrumented/no-op wall-time ratio tolerated on the anchor
#: workload with the observability layer installed (spans + counters).
OBS_OVERHEAD_TARGET = 1.05

#: Full-scale row counts per dimensionality (scaled by REPRO_BENCH_SCALE).
FULL_ROWS = {6: 20000, 10: 20000, 14: 6000}

CARDINALITIES = {
    6: [16, 12, 10, 8, 6, 4],
    10: [16, 14, 12, 10, 8, 8, 6, 6, 4, 4],
    14: [16, 14, 12, 10, 8, 8, 6, 6, 4, 4, 4, 3, 3, 2],
}

#: minsup sweep per dimensionality (the 10-dim workload gets the sweep;
#: the others anchor the dimensionality axis).
MINSUPS = {6: (2,), 10: (5, 10, 20), 14: (10,)}

#: Dimensionality of the anchor workloads (the headline speedup is the
#: best fast-kernel ratio measured across this dimensionality's minsup
#: sweep; per-workload numbers are all in the JSON).
ANCHOR_D = 10


def _timed(fn, repeats=1):
    """Run ``fn`` ``repeats`` times; return ``(value, best_seconds)``.

    Best-of-N, not mean: on shared machines the minimum is the least
    contaminated estimate of the code's actual cost.
    """
    value = None
    best = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return value, best


def default_out_path():
    return os.path.join(os.getcwd(), "bench_results", "BENCH_kernel.json")


def _obs_overhead_ratio(relation, minsup, kernel, repeats):
    """Instrumented vs no-op wall time on one workload (best-of-N each).

    The observability contract is "off by default, near-zero overhead":
    with :func:`repro.obs.install` active every ``buc.task`` /
    ``buc.cuboid`` span records for real, and the ratio bounds what a
    traced run costs over the plain one.  Measured at *full* anchor
    rows regardless of ``REPRO_BENCH_SCALE``: span count is fixed by
    the lattice (one per cuboid), so shrinking the rows would inflate
    the per-span share and gate against a workload nobody traces.

    The estimate is the *minimum of pairwise ratios* over interleaved
    (plain, instrumented) run pairs with alternating order.  On a
    shared CI box single runs drift +/-10%, which swamps the ~1% true
    overhead; scheduler noise only ever *inflates* one side of a pair
    at random, so the best-conditions pair converges on the true ratio,
    while a genuine regression (per-row instrumentation sneaking in)
    lifts every pair and still trips the gate.
    """
    from .. import obs

    def run():
        return buc_iceberg_cube(relation, relation.dims, minsup=minsup,
                                kernel=kernel, breadth_first=True)[0]

    best = None
    for i in range(max(3, repeats)):
        if i % 2:
            with obs.installed():
                _, instrumented = _timed(run)
            _, plain = _timed(run)
        else:
            _, plain = _timed(run)
            with obs.installed():
                _, instrumented = _timed(run)
        ratio = (instrumented / plain) if plain else 1.0
        best = ratio if best is None else min(best, ratio)
    return best


def _scaling_measurements(repeats, workers_hi=4, seed=11, skew=0.8):
    """Time the multiprocess backend at 1, 2 and ``workers_hi`` workers.

    One shared measurement behind both the full bench's scaling figures
    and the standalone ``--scaling`` mode: the compute-dense scaling
    workload (:data:`SCALING_D`, :data:`SCALING_ROWS_FULL` scaled,
    :data:`SCALING_MINSUP`), every worker count verified cell-identical
    against the seed python-kernel oracle.  Returns ``(n_rows,
    base_seconds, timings, identical)`` with ``timings``/``identical``
    keyed by worker count.
    """
    n_rows = scaled(SCALING_ROWS_FULL, minimum=2000)
    relation = zipf_relation(n_rows, CARDINALITIES[SCALING_D], skew=skew,
                             seed=seed)
    reference, base_seconds = _timed(lambda: buc_iceberg_cube(
        relation, relation.dims, minsup=SCALING_MINSUP, kernel="python",
    )[0], 1)
    timings = {}
    identical = {}
    for workers in sorted({1, 2, workers_hi}):
        result, seconds = _timed(lambda: multiprocess_iceberg_cube(
            relation, minsup=SCALING_MINSUP, workers=workers), repeats)
        timings[workers] = seconds
        identical[workers] = result.equals(reference)
    return n_rows, base_seconds, timings, identical


def ext_kernel_throughput(rows_by_d=None, seed=11, skew=0.8, out_path=None,
                          workers_hi=4, repeats=2):
    """Measure rows/sec for every compute path; emit BENCH_kernel.json."""
    rows_by_d = dict(rows_by_d or {
        d: scaled(n, minimum=1500) for d, n in FULL_ROWS.items()
    })
    cpu_count = os.cpu_count() or 1
    columns = ["d", "rows", "minsup", "implementation", "seconds",
               "rows/sec", "speedup", "cells", "identical"]
    rows = []
    workloads = []
    anchor_speedups = {}

    for d in sorted(CARDINALITIES):
        n_rows = rows_by_d[d]
        relation = zipf_relation(n_rows, CARDINALITIES[d], skew=skew,
                                 seed=seed)
        for minsup in MINSUPS[d]:
            reference, base_seconds = _timed(lambda: buc_iceberg_cube(
                relation, relation.dims, minsup=minsup, kernel="python",
            )[0], repeats)
            timings = {"buc_python": base_seconds}
            identical = {"buc_python": True}
            cells = reference.total_cells()

            if d < 14:  # the naive rescan is O(2^d * n): hopeless at 14
                naive_result, seconds = _timed(lambda: naive_iceberg_cube(
                    relation, relation.dims, minsup))
                timings["naive"] = seconds
                identical["naive"] = naive_result.equals(reference)

            kernels = ["columnar"] + (["numpy"] if HAS_NUMPY else [])
            for kernel in kernels:
                result, seconds = _timed(lambda: buc_iceberg_cube(
                    relation, relation.dims, minsup=minsup, kernel=kernel,
                    breadth_first=True,
                )[0], repeats)
                timings[kernel] = seconds
                identical[kernel] = result.equals(reference)

            workers_curve = sorted({1, 2, workers_hi})
            for workers in workers_curve:
                label = "multiprocess_w%d" % workers
                result, seconds = _timed(lambda: multiprocess_iceberg_cube(
                    relation, minsup=minsup, workers=workers),
                    repeats if workers == 1 else 1)
                timings[label] = seconds
                identical[label] = result.equals(reference)

            speedups = {
                name: base_seconds / seconds if seconds else float("inf")
                for name, seconds in timings.items()
            }
            order = ["naive", "buc_python", "columnar", "numpy"] + [
                "multiprocess_w%d" % w for w in workers_curve]
            for name in order:
                if name not in timings:
                    continue
                seconds = timings[name]
                rows.append([
                    d, n_rows, minsup, name, seconds,
                    n_rows / seconds if seconds else float("inf"),
                    speedups[name], cells, identical[name],
                ])
            workloads.append({
                "d": d,
                "rows": n_rows,
                "minsup": minsup,
                "cells": cells,
                "seconds": timings,
                "rows_per_sec": {
                    name: (n_rows / s if s else None)
                    for name, s in timings.items()
                },
                "speedup_vs_python": speedups,
                "identical": identical,
            })
            fast = "numpy" if HAS_NUMPY else "columnar"
            if d == ANCHOR_D and speedups.get(fast, 0.0) >= \
                    anchor_speedups.get(fast, 0.0):
                anchor_speedups = speedups

    fast_kernel = "numpy" if HAS_NUMPY else "columnar"
    single_core = anchor_speedups.get(fast_kernel, 0.0)
    # The multi-core scaling curve: rows/sec at each worker count on the
    # compute-dense scaling workload — the number the paper's whole
    # premise rides on.
    scaling_rows, _scaling_base, mp_timings, mp_identical = \
        _scaling_measurements(repeats, workers_hi, seed=seed, skew=skew)
    scaling = None
    if mp_timings.get(1) and mp_timings.get(workers_hi):
        scaling = mp_timings[1] / mp_timings[workers_hi]
    curve = {
        "w%d" % w: (scaling_rows / s if s else None)
        for w, s in sorted(mp_timings.items())
    }

    obs_rows = FULL_ROWS[ANCHOR_D]
    obs_ratio = _obs_overhead_ratio(
        zipf_relation(obs_rows, CARDINALITIES[ANCHOR_D],
                      skew=skew, seed=seed),
        MINSUPS[ANCHOR_D][0], fast_kernel, max(repeats, 5),
    )

    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "bench_scale": bench_scale(),
        "cpu_count": cpu_count,
        "numpy": HAS_NUMPY,
        "fast_kernel": fast_kernel,
        "anchor": {"d": ANCHOR_D, "rows": rows_by_d[ANCHOR_D],
                   "minsups": list(MINSUPS[ANCHOR_D])},
        "single_core_speedup": single_core,
        "multiprocess_scaling_%dv1" % workers_hi: scaling,
        "scaling_curve_rows_per_sec": curve,
        "scaling_workload": {
            "d": SCALING_D,
            "rows": scaling_rows,
            "minsup": SCALING_MINSUP,
            "seconds": {"w%d" % w: s for w, s in mp_timings.items()},
            "identical": {"w%d" % w: ok for w, ok in mp_identical.items()},
        },
        "obs_overhead_ratio": obs_ratio,
        "obs_overhead_rows": obs_rows,
        "workloads": workloads,
    }
    out_path = out_path or default_out_path()
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    result = ExperimentResult(
        "EXT-KERNEL",
        "Columnar kernel throughput (real wall-clock, rows/sec)",
        columns, rows,
        notes="machine: %d CPU(s), numpy %s; JSON written to %s"
              % (cpu_count, "available" if HAS_NUMPY else "absent", out_path),
    )
    result.check(
        "every implementation produces identical cells",
        all(all(w["identical"].values()) for w in workloads)
        and all(mp_identical.values()),
        "%d workload/impl pairs compared (incl. scaling workload)" % (
            sum(len(w["identical"]) for w in workloads)
            + len(mp_identical)),
    )
    result.check(
        "fast kernel (%s) beats the seed engine on the 10-dim anchor"
        % fast_kernel,
        single_core > 1.0,
        "%.2fx vs python kernel" % single_core,
    )
    full_scale = rows_by_d[ANCHOR_D] >= FULL_ROWS[ANCHOR_D]
    if full_scale:
        result.check(
            ">=%.0fx single-core speedup at full workload scale"
            % TARGET_SINGLE_CORE,
            single_core >= TARGET_SINGLE_CORE,
            "%.2fx (target %.1fx)" % (single_core, TARGET_SINGLE_CORE),
        )
    if cpu_count < workers_hi:
        # A box with fewer cores than workers cannot show scaling — the
        # gate is skipped *audibly* (recorded as a passing SKIPPED check
        # and a warning), never silently: the JSON's honest ``cpu_count``
        # tells readers which kind of run produced the numbers.
        log.warning(
            "SKIPPED: %d-worker scaling gate needs >=%d CPUs, machine "
            "has %d — run the scaling bench on a multi-core runner "
            "(CI job scaling-bench does)", workers_hi, workers_hi,
            cpu_count,
        )
        result.check(
            "SKIPPED: %d-worker scaling gate (machine has %d CPU(s), "
            "needs >=%d)" % (workers_hi, cpu_count, workers_hi),
            True,
            "measured %s on this box; not a scaling claim"
            % ("%.2fx" % scaling if scaling is not None else "nothing"),
        )
    elif scaling is not None:
        if scaling_rows >= SCALING_ROWS_FULL:
            result.check(
                ">=%.1fx at %d workers vs 1 (machine has %d CPUs)"
                % (TARGET_SCALING_4V1, workers_hi, cpu_count),
                scaling >= TARGET_SCALING_4V1,
                "%.2fx" % scaling,
            )
        else:
            # Reduced-scale runs (REPRO_BENCH_SCALE < 1) shrink the
            # compute but not the pool startup, so the ratio is not a
            # contract there — record it, gate only at full scale.
            result.check(
                "scaling curve recorded (reduced scale: informational)",
                True,
                "%.2fx at %d workers vs 1" % (scaling, workers_hi),
            )
    result.check(
        "observability adds <%.0f%% overhead when installed"
        % (100.0 * (OBS_OVERHEAD_TARGET - 1.0)),
        obs_ratio <= OBS_OVERHEAD_TARGET,
        "%.3fx instrumented/no-op on the %d-dim anchor at %d rows"
        % (obs_ratio, ANCHOR_D, obs_rows),
    )
    return result


def ext_multicore_scaling(seed=11, skew=0.8, repeats=2, workers_hi=4,
                          out_path=None):
    """The multi-core scaling curve alone: w1/w2/w4 rows/sec.

    The CI ``scaling-bench`` job's entry point (``--scaling``): runs
    only the compute-dense scaling workload through the multiprocess
    backend at 1, 2 and ``workers_hi`` workers, verifies every result
    against the single-process oracle, and gates ``w4 > w1`` — the
    paper's minimum claim, *more workers must not be slower*.  Progress
    toward :data:`TARGET_SCALING_4V1` is reported but gated only by the
    full bench (``ext_kernel_throughput``) at full workload scale.  On
    a box with fewer than ``workers_hi`` CPUs the gate is skipped with
    a warning (recorded as a passing SKIPPED check), because the
    measurement would be meaningless — not because it passed.
    """
    cpu_count = os.cpu_count() or 1
    n_rows, base_seconds, timings, identical = _scaling_measurements(
        max(repeats, 2), workers_hi, seed=seed, skew=skew)
    columns = ["workers", "seconds", "rows/sec", "speedup_vs_w1",
               "identical"]
    rows = []
    for workers, seconds in sorted(timings.items()):
        rows.append([
            workers, seconds,
            n_rows / seconds if seconds else float("inf"),
            timings[1] / seconds if seconds else float("inf"),
            identical[workers],
        ])
    scaling = (timings[1] / timings[workers_hi]
               if timings.get(workers_hi) else None)
    result = ExperimentResult(
        "EXT-SCALING",
        "Multiprocess scaling curve (d=%d, %d rows, minsup %d)"
        % (SCALING_D, n_rows, SCALING_MINSUP),
        columns, rows,
        notes="machine: %d CPU(s); seed python kernel: %.2fs"
              % (cpu_count, base_seconds),
    )
    result.check(
        "all worker counts produce oracle-identical cells",
        all(identical.values()),
        "w%s compared" % ",".join(str(w) for w in sorted(identical)),
    )
    if cpu_count < workers_hi:
        log.warning(
            "SKIPPED: scaling gate needs >=%d CPUs, machine has %d",
            workers_hi, cpu_count,
        )
        result.check(
            "SKIPPED: w%d > w1 gate (machine has %d CPU(s), needs >=%d)"
            % (workers_hi, cpu_count, workers_hi),
            True,
            "measured %.2fx here; not a scaling claim" % (scaling or 0.0),
        )
    else:
        result.check(
            "w%d beats w1 (more workers must not be slower)" % workers_hi,
            scaling is not None and scaling > 1.0,
            "%.2fx" % (scaling or 0.0),
        )
        result.check(
            "progress toward the %.1fx full-scale target (informational)"
            % TARGET_SCALING_4V1,
            True,
            "%.2fx at %d workers vs 1" % (scaling or 0.0, workers_hi),
        )
    if out_path:
        payload = {
            "schema": "repro-scaling-bench/1",
            "bench_scale": bench_scale(),
            "cpu_count": cpu_count,
            "numpy": HAS_NUMPY,
            "workload": {"d": SCALING_D, "rows": n_rows,
                         "minsup": SCALING_MINSUP},
            "seconds": {"w%d" % w: s for w, s in timings.items()},
            "rows_per_sec": {
                "w%d" % w: (n_rows / s if s else None)
                for w, s in timings.items()
            },
            "multiprocess_scaling_%dv1" % workers_hi: scaling,
            "identical": {"w%d" % w: ok for w, ok in identical.items()},
        }
        os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
        with open(out_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def check_regression(current_path, baseline_path,
                     tolerance=REGRESSION_TOLERANCE):
    """Compare speedup *ratios* against a committed baseline.

    Returns a list of human-readable failures (empty = no regression).
    Ratios are machine-independent: both runs divide the fast kernel's
    time by the same machine's seed-python time, so a faster or slower
    CI box cancels out.
    """
    with open(current_path) as handle:
        current = json.load(handle)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    base_scale = baseline.get("bench_scale")
    cur_scale = current.get("bench_scale")
    if base_scale is not None and cur_scale is not None \
            and abs(base_scale - cur_scale) > 1e-9:
        # Speedup ratios grow with workload size (vectorisation needs
        # volume), so cross-scale comparison would always mis-fire.
        return [
            "bench scale mismatch: run at %s but baseline recorded %s — "
            "compare like against like (set REPRO_BENCH_SCALE)"
            % (cur_scale, base_scale)
        ]
    base_ratio = baseline.get("single_core_speedup") or 0.0
    new_ratio = current.get("single_core_speedup") or 0.0
    floor = base_ratio * (1.0 - tolerance)
    if base_ratio and new_ratio < floor:
        failures.append(
            "single-core columnar speedup regressed: %.2fx vs baseline "
            "%.2fx (floor %.2fx)" % (new_ratio, base_ratio, floor)
        )
    return failures


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernelbench",
        description="Kernel throughput benchmark with regression check",
    )
    parser.add_argument("--out", default=None,
                        help="where to write BENCH_kernel.json "
                             "(default bench_results/BENCH_kernel.json)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_kernel.json to compare "
                             "speedup ratios against (>25%% regression "
                             "fails)")
    parser.add_argument("--scale", type=float, default=None,
                        help="override REPRO_BENCH_SCALE for this run")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repetitions per measurement "
                             "(best-of-N; default 2)")
    parser.add_argument("--scaling", action="store_true",
                        help="run only the multi-core scaling curve "
                             "(w1/w2/w4 on the anchor workload) and gate "
                             "w4 > w1; skipped with a warning on <4-core "
                             "machines")
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
    logging.basicConfig(level=logging.WARNING)
    if args.scaling:
        result = ext_multicore_scaling(repeats=max(args.repeats, 2),
                                       out_path=args.out)
        print(result.format_table())
        return 0 if result.passed else 1
    out_path = args.out or default_out_path()
    result = ext_kernel_throughput(out_path=out_path, repeats=args.repeats)
    print(result.format_table())
    if not result.passed:
        return 1
    if args.baseline:
        failures = check_regression(out_path, args.baseline)
        for failure in failures:
            print("REGRESSION: %s" % failure)
        if failures:
            return 1
        print("no regression vs %s" % args.baseline)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

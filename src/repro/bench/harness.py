"""Experiment harness: runs sweeps, renders paper-style tables, checks
the reproduced *shapes* against the thesis' findings.

Every figure/table of the thesis maps to one function in
:mod:`repro.bench.experiments`; each returns an
:class:`ExperimentResult` whose ``checks`` encode the qualitative claims
(who wins, by roughly what factor, where the crossover falls).  Absolute
seconds come from the simulated cluster and are not asserted.
"""

import os


class Check:
    """One qualitative claim from the thesis, evaluated on our numbers."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name, passed, detail=""):
        self.name = name
        self.passed = bool(passed)
        self.detail = detail

    def __repr__(self):
        return "Check(%r, %s)" % (self.name, "PASS" if self.passed else "FAIL")


class ExperimentResult:
    """A reproduced table/figure: rows, column headers and shape checks."""

    def __init__(self, experiment_id, title, columns, rows, notes=""):
        self.experiment_id = experiment_id
        self.title = title
        self.columns = list(columns)
        self.rows = [list(r) for r in rows]
        self.notes = notes
        self.checks = []

    def check(self, name, passed, detail=""):
        """Attach one named shape check (chainable)."""
        self.checks.append(Check(name, passed, detail))
        return self

    @property
    def passed(self):
        return all(c.passed for c in self.checks)

    def failures(self):
        """The checks that did not hold."""
        return [c for c in self.checks if not c.passed]

    def assert_checks(self):
        """Raise if any shape check failed (used by the bench suite)."""
        failures = self.failures()
        if failures:
            lines = ["%s: %d shape check(s) failed:" % (self.experiment_id, len(failures))]
            lines += ["  - %s (%s)" % (c.name, c.detail) for c in failures]
            lines.append(self.format_table())
            raise AssertionError("\n".join(lines))

    def format_table(self):
        """Render the result as a fixed-width text table."""
        headers = [str(c) for c in self.columns]
        body = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in headers]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = ["%s — %s" % (self.experiment_id, self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append(sep)
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("note: %s" % self.notes)
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append("[%s] %s%s" % (status, check.name,
                                        " — " + check.detail if check.detail else ""))
        return "\n".join(lines)

    def report(self):
        """Print the table (benches call this so results land in logs)."""
        print()
        print(self.format_table())
        return self


def _fmt(value):
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return "%.2e" % value
        return "%.3f" % value
    return str(value)


def bench_scale():
    """Workload scale factor for the bench suite.

    ``REPRO_BENCH_SCALE=1.0`` approaches the thesis' sizes (very slow in
    pure Python); the default keeps the whole suite in minutes while
    preserving every qualitative shape.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def scaled(value, minimum=1):
    """Scale a paper-sized parameter by the bench scale factor."""
    return max(minimum, int(value * bench_scale()))

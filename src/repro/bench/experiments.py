"""One function per table/figure of the thesis' evaluation.

Each function generates the workload, runs the algorithms on the
simulated cluster, renders the thesis-style table and attaches *shape*
checks — the qualitative claims of the corresponding figure.  Sizes
default to a scaled-down workload (``REPRO_BENCH_SCALE``) because the
algorithms execute their real work in pure Python; every check is about
ratios and orderings, which survive the scaling.
"""

from ..cluster.spec import cluster1, cluster2, cluster3
from ..data.weather import (
    PAPER_CUBE_TUPLES,
    PAPER_ONLINE_TUPLES,
    baseline_dims,
    dims_by_cardinality,
    weather_relation,
)
from ..online.materialize import LeafMaterialization
from ..online.pol import POL, initial_assignment
from ..parallel import AHT, ASL, BPP, PT, RP, features_table
from ..recipe import recipe_table
from .harness import ExperimentResult, scaled

ALL_ALGOS = ("RP", "BPP", "ASL", "PT", "AHT")


def _fresh(name):
    return {"RP": RP, "BPP": BPP, "ASL": ASL, "PT": PT, "AHT": AHT}[name]()


def _default_tuples(minimum=4000):
    return scaled(PAPER_CUBE_TUPLES, minimum=minimum)


# ----------------------------------------------------------------------
# Table 1.1 — key features of the algorithms
# ----------------------------------------------------------------------
def table_1_1_features():
    """Table 1.1, generated from the algorithm implementations."""
    rows = features_table()
    result = ExperimentResult(
        "Table 1.1",
        "Key features of the algorithms",
        ["algorithm", "writing", "load balance", "cuboid relationship", "data"],
        rows,
    )
    expected = {
        "RP": ("depth-first", "weak", "bottom-up", "replicated"),
        "BPP": ("breadth-first", "weak", "bottom-up", "partitioned"),
        "ASL": ("breadth-first", "strong", "top-down", "replicated"),
        "PT": ("breadth-first", "strong", "hybrid", "replicated"),
    }
    for name, features in expected.items():
        actual = next(tuple(r[1:]) for r in rows if r[0] == name)
        result.check("%s features match the thesis" % name, actual == features,
                     "%r" % (actual,))
    return result


# ----------------------------------------------------------------------
# Figure 3.6 — I/O: breadth-first (BPP) vs depth-first (RP) writing
# ----------------------------------------------------------------------
def fig_3_6_io_writing(n_tuples=None, n_dims=9, minsup=2, processor_counts=(2, 4, 8),
                       seed=2001):
    """RP's scattered writes vs BPP's sequential cuboid blocks."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    rows = []
    ratios = {}
    for n in processor_counts:
        rp = RP().run(relation, minsup=minsup, cluster_spec=cluster1(n))
        bpp = BPP().run(relation, minsup=minsup, cluster_spec=cluster1(n))
        rp_io = rp.simulation.time_breakdown()[1]
        bpp_io = bpp.simulation.time_breakdown()[1]
        ratios[n] = rp_io / bpp_io if bpp_io else float("inf")
        rows.append([n, rp_io, bpp_io, ratios[n]])
    result = ExperimentResult(
        "Figure 3.6",
        "Total write-I/O time: RP (depth-first) vs BPP (breadth-first), %d tuples, %d dims"
        % (n_tuples, n_dims),
        ["processors", "RP io (s)", "BPP io (s)", "ratio"],
        rows,
        notes="the thesis measured RP's write time at >5x BPP's on the baseline",
    )
    result.check(
        "depth-first writing costs several times breadth-first",
        all(r >= 3.0 for r in ratios.values()),
        "ratios: %s" % {n: round(r, 1) for n, r in ratios.items()},
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.1 — load distribution on 8 processors
# ----------------------------------------------------------------------
def fig_4_1_load_balance(n_tuples=None, n_dims=9, minsup=2, n_processors=8, seed=2001):
    """Per-processor load: static RP/BPP vs demand-scheduled ASL/PT/AHT."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    imbalance = {}
    rows = []
    for name in ALL_ALGOS:
        run = _fresh(name).run(relation, minsup=minsup, cluster_spec=cluster1(n_processors))
        loads = run.simulation.loads()
        imbalance[name] = run.simulation.load_imbalance()
        rows.append([name] + [round(x, 3) for x in loads] + [round(imbalance[name], 2)])
    result = ExperimentResult(
        "Figure 4.1",
        "Load on each of %d processors (busy seconds)" % n_processors,
        ["algorithm"] + ["P%d" % i for i in range(n_processors)] + ["max/mean"],
        rows,
        notes="RP and BPP distribute statically; ASL/PT/AHT use demand scheduling",
    )
    dynamic_worst = max(imbalance[a] for a in ("ASL", "PT", "AHT"))
    result.check(
        "RP badly imbalanced vs dynamic algorithms",
        imbalance["RP"] > 1.5 * dynamic_worst,
        "RP %.2f vs dynamic worst %.2f" % (imbalance["RP"], dynamic_worst),
    )
    result.check(
        "BPP imbalanced by data skew",
        imbalance["BPP"] > 1.3 * dynamic_worst,
        "BPP %.2f vs dynamic worst %.2f" % (imbalance["BPP"], dynamic_worst),
    )
    result.check(
        "ASL/PT/AHT evenly balanced",
        dynamic_worst < 1.35,
        "worst dynamic imbalance %.2f" % dynamic_worst,
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.2 — scalability with the number of processors
# ----------------------------------------------------------------------
def fig_4_2_scalability(n_tuples=None, n_dims=7, minsup=2,
                        processor_counts=(2, 4, 8, 16), seed=2001):
    """Wall clock vs cluster size for all five algorithms."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    times = {}
    for n in processor_counts:
        for name in ALL_ALGOS:
            run = _fresh(name).run(relation, minsup=minsup, cluster_spec=cluster1(n))
            times[(name, n)] = run.makespan
    rows = [
        [n] + [round(times[(name, n)], 3) for name in ALL_ALGOS]
        for n in processor_counts
    ]
    result = ExperimentResult(
        "Figure 4.2",
        "Wall clock (simulated s) vs processors, %d tuples, %d dims, minsup %d"
        % (n_tuples, n_dims, minsup),
        ["processors"] + list(ALL_ALGOS),
        rows,
    )
    mid = [n for n in processor_counts if n >= 4]
    result.check(
        "RP is the worst performer (4+ processors)",
        all(times[("RP", n)] > max(times[(a, n)] for a in ALL_ALGOS if a != "RP")
            for n in mid),
    )
    two = min(processor_counts)
    result.check(
        "BPP does well on %d processors; ASL is poor there" % two,
        times[("BPP", two)] < times[("ASL", two)]
        and times[("PT", two)] < times[("ASL", two)],
        "BPP %.2f, PT %.2f, ASL %.2f" % (times[("BPP", two)], times[("PT", two)],
                                         times[("ASL", two)]),
    )
    eight = 8 if 8 in processor_counts else max(processor_counts)
    most = max(processor_counts)
    result.check(
        "ASL overtakes BPP as processors grow",
        times[("ASL", eight)] <= 1.15 * times[("BPP", eight)]
        and times[("ASL", most)] < times[("BPP", most)],
        "at %d procs: ASL %.2f vs BPP %.2f; at %d: %.2f vs %.2f"
        % (eight, times[("ASL", eight)], times[("BPP", eight)],
           most, times[("ASL", most)], times[("BPP", most)]),
    )
    result.check(
        "PT beats ASL (pruning + sort sharing)",
        times[("PT", eight)] < times[("ASL", eight)],
        "PT %.2f vs ASL %.2f" % (times[("PT", eight)], times[("ASL", eight)]),
    )
    result.check(
        "AHT tracks ASL (same task definition and scheduling)",
        0.5 <= times[("AHT", eight)] / times[("ASL", eight)] <= 1.5,
        "AHT/ASL = %.2f" % (times[("AHT", eight)] / times[("ASL", eight)]),
    )
    if 16 in processor_counts and 8 in processor_counts:
        result.check(
            "speedup from 8 to 16 processors is modest for PT/ASL",
            all(times[(a, 8)] / times[(a, 16)] < 1.8 for a in ("PT", "ASL")),
            "PT %.2fx, ASL %.2fx" % (times[("PT", 8)] / times[("PT", 16)],
                                     times[("ASL", 8)] / times[("ASL", 16)]),
        )
    return result


# ----------------------------------------------------------------------
# Figure 4.3 — varying the problem size
# ----------------------------------------------------------------------
def fig_4_3_problem_size(sizes=None, n_dims=7, minsup=2, n_processors=8, seed=2001):
    """Wall clock vs dataset size (PT/ASL grow sublinearly)."""
    if sizes is None:
        base = _default_tuples()
        sizes = (base // 2, base, base * 2, base * 4)
    times = {}
    for size in sizes:
        relation = weather_relation(size, dims=baseline_dims(n_dims), seed=seed)
        for name in ALL_ALGOS:
            run = _fresh(name).run(relation, minsup=minsup,
                                   cluster_spec=cluster1(n_processors))
            times[(name, size)] = run.makespan
    rows = [
        [size] + [round(times[(name, size)], 3) for name in ALL_ALGOS]
        for size in sizes
    ]
    result = ExperimentResult(
        "Figure 4.3",
        "Wall clock vs number of tuples (%d processors)" % n_processors,
        ["tuples"] + list(ALL_ALGOS),
        rows,
    )
    smallest, largest = sizes[0], sizes[-1]
    growth = largest / smallest
    ratio_asl = times[("ASL", largest)] / times[("ASL", smallest)]
    result.check(
        "ASL grows sublinearly with problem size",
        ratio_asl < growth,
        "%.1fx time for %.1fx data" % (ratio_asl, growth),
    )
    ratio_pt = times[("PT", largest)] / times[("PT", smallest)]
    ratio_static = min(
        times[(name, largest)] / times[(name, smallest)] for name in ("RP", "BPP")
    )
    result.check(
        "PT's growth stays below the statically scheduled algorithms'",
        ratio_pt < ratio_static and ratio_pt < growth * 1.15,
        "PT %.1fx vs static best %.1fx for %.1fx data"
        % (ratio_pt, ratio_static, growth),
    )
    result.check(
        "PT and ASL handle large problems best",
        max(times[("PT", largest)], times[("ASL", largest)])
        < min(times[("RP", largest)], times[("BPP", largest)]) * 1.6,
        "PT %.2f ASL %.2f vs RP %.2f BPP %.2f"
        % (times[("PT", largest)], times[("ASL", largest)],
           times[("RP", largest)], times[("BPP", largest)]),
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.4 — varying the number of dimensions
# ----------------------------------------------------------------------
def fig_4_4_dimensions(dimension_counts=(5, 7, 9), n_tuples=None, minsup=2,
                       n_processors=8, seed=2001):
    """Wall clock vs cube dimensionality (cuboids grow as 2^d)."""
    n_tuples = n_tuples or scaled(PAPER_CUBE_TUPLES, minimum=2500) // 2
    times = {}
    for d in dimension_counts:
        relation = weather_relation(n_tuples, dims=baseline_dims(d), seed=seed)
        for name in ALL_ALGOS:
            run = _fresh(name).run(relation, minsup=minsup,
                                   cluster_spec=cluster1(n_processors))
            times[(name, d)] = run.makespan
    rows = [
        [d] + [round(times[(name, d)], 3) for name in ALL_ALGOS]
        for d in dimension_counts
    ]
    result = ExperimentResult(
        "Figure 4.4",
        "Wall clock vs cube dimensions (%d tuples, %d processors)"
        % (n_tuples, n_processors),
        ["dimensions"] + list(ALL_ALGOS),
        rows,
    )
    low, high = dimension_counts[0], dimension_counts[-1]
    for name in ALL_ALGOS:
        result.check(
            "%s cost grows steeply with dimensionality" % name,
            times[(name, high)] > 2.5 * times[(name, low)],
            "%.2f -> %.2f" % (times[(name, low)], times[(name, high)]),
        )
    result.check(
        "AHT scales worst with dimensions (collisions + shrunken index bits)",
        times[("AHT", high)] / times[("AHT", low)]
        > max(times[(a, high)] / times[(a, low)] for a in ("PT", "BPP")),
        "AHT %.1fx vs PT %.1fx, BPP %.1fx"
        % (times[("AHT", high)] / times[("AHT", low)],
           times[("PT", high)] / times[("PT", low)],
           times[("BPP", high)] / times[("BPP", low)]),
    )
    result.check(
        "ASL's key comparisons grow with dimensionality (loses ground to BUC-based)",
        (times[("ASL", high)] / times[("ASL", low)])
        > (times[("PT", high)] / times[("PT", low)]),
        "ASL %.1fx vs PT %.1fx"
        % (times[("ASL", high)] / times[("ASL", low)],
           times[("PT", high)] / times[("PT", low)]),
    )
    result.check(
        "at low dimensionality even simple RP stays within a small factor "
        "of the BUC-based best",
        times[("RP", low)] < 3.0 * min(times[("PT", low)], times[("BPP", low)]),
        "RP %.2f vs BUC-based best %.2f"
        % (times[("RP", low)], min(times[("PT", low)], times[("BPP", low)])),
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.5 — varying the minimum support
# ----------------------------------------------------------------------
def fig_4_5_minsup(minsups=(1, 2, 4, 8, 16, 32), n_tuples=None, n_dims=7,
                   n_processors=8, seed=2001):
    """Wall clock and output size vs the iceberg threshold."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    times = {}
    output_bytes = {}
    for minsup in minsups:
        for name in ALL_ALGOS:
            run = _fresh(name).run(relation, minsup=minsup,
                                   cluster_spec=cluster1(n_processors))
            times[(name, minsup)] = run.makespan
            output_bytes[minsup] = run.result.output_bytes()
    rows = [
        [m, output_bytes[m]] + [round(times[(name, m)], 3) for name in ALL_ALGOS]
        for m in minsups
    ]
    result = ExperimentResult(
        "Figure 4.5",
        "Wall clock vs minimum support (%d tuples, %d dims)" % (n_tuples, n_dims),
        ["minsup", "output bytes"] + list(ALL_ALGOS),
        rows,
        notes="thesis output sizes: 469MB @1, 86MB @2, 27MB @4, 14MB @8, little after",
    )
    result.check(
        "output shrinks sharply from minsup 1 to 2",
        output_bytes[minsups[0]] > 2.5 * output_bytes[minsups[1]],
        "%d -> %d bytes" % (output_bytes[minsups[0]], output_bytes[minsups[1]]),
    )
    result.check(
        "output size monotonically decreases with minsup",
        all(output_bytes[a] >= output_bytes[b]
            for a, b in zip(minsups, minsups[1:])),
    )
    if 8 in minsups:
        result.check(
            "most of the iceberg is cut by minsup 8 (thesis: 14MB of 469MB left)",
            output_bytes[8] < 0.15 * output_bytes[minsups[0]],
            "%d bytes @8 vs %d @%d" % (output_bytes[8], output_bytes[minsups[0]],
                                       minsups[0]),
        )
    for name in ("RP", "BPP", "PT"):
        result.check(
            "%s benefits from raising minsup 1 -> max (pruning + less I/O)" % name,
            times[(name, minsups[-1])] < times[(name, minsups[0])],
            "%.2f -> %.2f" % (times[(name, minsups[0])], times[(name, minsups[-1])]),
        )
    result.check(
        "ASL gains only I/O (no pruning): modest improvement",
        times[("ASL", minsups[-1])] > 0.5 * times[("ASL", minsups[0])],
        "%.2f -> %.2f" % (times[("ASL", minsups[0])], times[("ASL", minsups[-1])]),
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.6 — varying the sparseness of the dataset
# ----------------------------------------------------------------------
def fig_4_6_sparseness(n_tuples=None, n_dims=9, minsup=2, n_processors=8, seed=2001,
                       dense_dims=7):
    """Dense vs sparse dimension choices (smallest / middle / largest
    cardinalities).

    The thesis picks nine dimensions each time; its dense point has a
    cardinality product ~1e7 against 176k tuples.  At bench scale the
    tuple count is smaller, so the dense point uses the ``dense_dims``
    smallest dimensions to keep the *density ratio* (tuples per possible
    cell) in the regime the figure's dense end actually exercises.
    """
    n_tuples = n_tuples or _default_tuples()
    selections = ("smallest", "middle", "largest")
    times = {}
    products = {}
    for which in selections:
        dims = dims_by_cardinality(which, dense_dims if which == "smallest" else n_dims)
        relation = weather_relation(n_tuples, dims=dims, seed=seed)
        products[which] = relation.cardinality_product()
        for name in ALL_ALGOS:
            run = _fresh(name).run(relation, minsup=minsup,
                                   cluster_spec=cluster1(n_processors))
            times[(name, which)] = run.makespan
    rows = [
        [which, "%.0e" % products[which]]
        + [round(times[(name, which)], 3) for name in ALL_ALGOS]
        for which in selections
    ]
    result = ExperimentResult(
        "Figure 4.6",
        "Wall clock vs cardinality product of the cube dimensions (%d tuples)"
        % n_tuples,
        ["dims by cardinality", "product"] + list(ALL_ALGOS),
        rows,
    )
    result.check(
        "ASL and AHT dominate on the dense cube",
        max(times[("ASL", "smallest")], times[("AHT", "smallest")])
        < min(times[(a, "smallest")] for a in ("RP", "BPP", "PT")),
        "ASL %.2f AHT %.2f vs others best %.2f"
        % (times[("ASL", "smallest")], times[("AHT", "smallest")],
           min(times[(a, "smallest")] for a in ("RP", "BPP", "PT"))),
    )
    result.check(
        "BPP does particularly poorly on small-cardinality dimensions",
        times[("BPP", "smallest")]
        > 1.5 * min(times[(a, "smallest")] for a in ("ASL", "AHT", "PT")),
        "BPP %.2f" % times[("BPP", "smallest")],
    )
    result.check(
        "BUC-based pruning wins as the cube gets sparse (ASL loses its lead)",
        times[("ASL", "largest")] / times[("PT", "largest")]
        > times[("ASL", "smallest")] / times[("PT", "smallest")],
        "ASL/PT dense %.2f -> sparse %.2f"
        % (times[("ASL", "smallest")] / times[("PT", "smallest")],
           times[("ASL", "largest")] / times[("PT", "largest")]),
    )
    result.check(
        "AHT is hurt by sparseness more than ASL",
        times[("AHT", "largest")] / times[("AHT", "smallest")]
        > times[("ASL", "largest")] / times[("ASL", "smallest")],
        "AHT %.1fx vs ASL %.1fx"
        % (times[("AHT", "largest")] / times[("AHT", "smallest")],
           times[("ASL", "largest")] / times[("ASL", "smallest")]),
    )
    return result


# ----------------------------------------------------------------------
# Figure 4.7 — the recipe
# ----------------------------------------------------------------------
def fig_4_7_recipe():
    """The algorithm-selection recipe, checked against the rule engine."""
    from ..recipe import Workload, recommend

    rows = [[situation, ", ".join(algos)] for situation, algos in recipe_table()]
    result = ExperimentResult(
        "Figure 4.7",
        "Recipe for selecting the best algorithm",
        ["situation", "recommended"],
        rows,
    )
    cases = [
        ("dense cube -> ASL/AHT", Workload(100000, [4] * 6), ("ASL", "AHT")),
        ("high dimensionality -> PT", Workload(100000, [50] * 13), ("PT",)),
        ("memory constrained -> BPP",
         Workload(100000, [50] * 9, memory_constrained=True), ("BPP",)),
        ("online -> POL", Workload(1000000, [50] * 12, online=True), ("POL",)),
        ("default sparse -> PT first", Workload(100000, [100] * 9), ("PT",)),
    ]
    for label, workload, expected_heads in cases:
        picks = recommend(workload)
        result.check(label, picks[0] in expected_heads, "recommended %s" % (picks,))
    return result


# ----------------------------------------------------------------------
# Table 5.1 — POL's task array
# ----------------------------------------------------------------------
def table_5_1_task_array(n_processors=4):
    """The n x n chunk/task array and its initial wrap-order assignment."""
    assignment = initial_assignment(n_processors)
    rows = []
    for j in range(n_processors):
        rows.append(
            ["P%d" % j]
            + ["Chunk%d%d" % (dest, src) for dest, src in assignment[j]]
        )
    result = ExperimentResult(
        "Table 5.1",
        "Task array for %d processors (work order per processor)" % n_processors,
        ["processor"] + ["task %d" % k for k in range(n_processors)],
        rows,
    )
    result.check(
        "each processor starts with its local chunk",
        all(assignment[j][0] == (j, j) for j in range(n_processors)),
    )
    result.check(
        "wrap order spreads remote fetches (no source hit twice in a round)",
        all(
            len({src for _dest, src in assignment[j]}) == n_processors
            for j in range(n_processors)
        ),
    )
    result.check(
        "every chunk of the n x n array is owned exactly once",
        sorted(t for j in range(n_processors) for t in assignment[j])
        == sorted((d, s) for d in range(n_processors) for s in range(n_processors)),
    )
    return result


# ----------------------------------------------------------------------
# Section 5.1 — selective materialization
# ----------------------------------------------------------------------
def sec_5_1_materialization(n_tuples=None, n_dims=7, seed=2001, n_processors=8):
    """Full recompute at minsup 2 vs leaf precompute + instant roll-up."""
    n_tuples = n_tuples or _default_tuples()
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    full = ASL().run(relation, minsup=2, cluster_spec=cluster1(n_processors))
    materialization = LeafMaterialization(relation, cluster_spec=cluster1(n_processors))
    # The online stage: answer one cuboid at the new threshold and time a
    # whole-cube roll-up for comparison.
    import time

    t0 = time.perf_counter()
    answer = materialization.query(baseline_dims(3), minsup=2)
    online_wall = time.perf_counter() - t0
    rows = [
        ["recompute full cube (ASL, minsup 2)", round(full.makespan, 3), "simulated s"],
        ["precompute leaves (ASL, minsup 1)",
         round(materialization.precompute_seconds, 3), "simulated s"],
        ["online 3-dim query from a leaf", round(online_wall * 1000, 3), "real ms"],
    ]
    result = ExperimentResult(
        "Section 5.1",
        "Selective materialization (%d tuples, %d dims)" % (n_tuples, n_dims),
        ["plan", "time", "unit"],
        rows,
        notes="thesis: full recompute ~60s; leaves-only precompute ~50s, then instant",
    )
    result.check(
        "precomputing only the leaves is cheaper than the full cube",
        materialization.precompute_seconds < full.makespan,
        "%.2f vs %.2f" % (materialization.precompute_seconds, full.makespan),
    )
    result.check(
        "the online answer is effectively instant",
        online_wall < 1.0,
        "%.1f ms" % (online_wall * 1000),
    )
    result.check(
        "materialized answers are exact",
        answer == {
            cell: agg
            for cell, agg in full.result.cuboid(baseline_dims(3)).items()
        },
    )
    return result


# ----------------------------------------------------------------------
# Figure 5.3 — POL's scalability with processors, on three clusters
# ----------------------------------------------------------------------
def fig_5_3_pol_scalability(n_tuples=None, n_dims=9, minsup=2, buffer_size=None,
                            processor_counts=(1, 2, 4, 8), seed=2001):
    """POL wall clock on Cluster1/2/3 (speedup favors slow CPUs + fast nets)."""
    n_tuples = n_tuples or scaled(PAPER_ONLINE_TUPLES, minimum=20000)
    buffer_size = buffer_size or max(500, n_tuples // 125)  # the thesis' 8000/1M
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    clusters = {"cluster1": cluster1, "cluster2": cluster2, "cluster3": cluster3}
    times = {}
    for cname, factory in clusters.items():
        for n in processor_counts:
            run = POL(buffer_size=buffer_size).run(
                relation, minsup=minsup, cluster_spec=factory(n)
            )
            times[(cname, n)] = run.makespan
    rows = [
        [n] + [round(times[(c, n)], 3) for c in clusters]
        for n in processor_counts
    ]
    result = ExperimentResult(
        "Figure 5.3",
        "POL wall clock vs processors (%d tuples, %d dims, buffer %d)"
        % (n_tuples, n_dims, buffer_size),
        ["processors"] + list(clusters),
        rows,
    )
    lo, hi = processor_counts[0], processor_counts[-1]
    speedups = {c: times[(c, lo)] / times[(c, hi)] for c in clusters}
    result.check(
        "POL speeds up with more processors on every cluster",
        all(s > 1.5 for s in speedups.values()),
        "speedups %s" % {c: round(s, 2) for c, s in speedups.items()},
    )
    result.check(
        "slower CPUs see better speedup (computation dominates communication)",
        speedups["cluster2"] > speedups["cluster1"],
        "cluster2 %.2fx vs cluster1 %.2fx" % (speedups["cluster2"], speedups["cluster1"]),
    )
    result.check(
        "the faster network (Myrinet) helps at scale",
        times[("cluster3", hi)] < times[("cluster2", hi)],
        "%.2f vs %.2f at %d procs" % (times[("cluster3", hi)], times[("cluster2", hi)], hi),
    )
    result.check(
        "Myrinet's speedup beats Ethernet's on identical machines",
        speedups["cluster3"] >= speedups["cluster2"],
        "cluster3 %.2fx vs cluster2 %.2fx" % (speedups["cluster3"], speedups["cluster2"]),
    )
    return result


# ----------------------------------------------------------------------
# Figure 5.4 — POL's scalability with the buffer size
# ----------------------------------------------------------------------
def fig_5_4_pol_buffer(n_tuples=None, n_dims=9, minsup=2, buffer_sizes=None,
                       n_processors=8, seed=2001):
    """POL wall clock vs per-step buffer size (fewer steps, fewer syncs)."""
    n_tuples = n_tuples or scaled(PAPER_ONLINE_TUPLES, minimum=20000)
    if buffer_sizes is None:
        base = max(250, n_tuples // 250)
        buffer_sizes = (base, base * 2, base * 4, base * 8)
    relation = weather_relation(n_tuples, dims=baseline_dims(n_dims), seed=seed)
    rows = []
    times = []
    for buffer_size in buffer_sizes:
        run = POL(buffer_size=buffer_size).run(
            relation, minsup=minsup, cluster_spec=cluster1(n_processors)
        )
        times.append(run.makespan)
        rows.append([buffer_size, run.extras["steps"], round(run.makespan, 3)])
    result = ExperimentResult(
        "Figure 5.4",
        "POL wall clock vs buffer size (%d tuples, %d processors)"
        % (n_tuples, n_processors),
        ["buffer (tuples)", "steps", "wall clock (s)"],
        rows,
    )
    result.check(
        "larger buffers mean fewer steps and better performance",
        times[-1] < times[0]
        and all(t2 <= t1 * 1.05 for t1, t2 in zip(times, times[1:])),
        "times %s" % [round(t, 2) for t in times],
    )
    return result


#: Registry used by the bench suite and the reproduce-everything example.
ALL_EXPERIMENTS = (
    table_1_1_features,
    fig_3_6_io_writing,
    fig_4_1_load_balance,
    fig_4_2_scalability,
    fig_4_3_problem_size,
    fig_4_4_dimensions,
    fig_4_5_minsup,
    fig_4_6_sparseness,
    fig_4_7_recipe,
    table_5_1_task_array,
    sec_5_1_materialization,
    fig_5_3_pol_scalability,
    fig_5_4_pol_buffer,
)

"""Online aggregation: POL, sampling and selective materialization."""

from .materialize import LeafMaterialization, leaf_cuboids
from .pol import POL, OnlineRunResult, OnlineSnapshot, initial_assignment, wrap_order
from .view_selection import (
    MaterializedCubeStore,
    estimate_cuboid_sizes,
    greedy_select,
)
from .sampling import (
    count_confidence_interval,
    partition_boundaries,
    range_of,
    sample_keys,
    scale_estimate,
)

__all__ = [
    "POL",
    "OnlineRunResult",
    "OnlineSnapshot",
    "initial_assignment",
    "wrap_order",
    "LeafMaterialization",
    "leaf_cuboids",
    "MaterializedCubeStore",
    "greedy_select",
    "estimate_cuboid_sizes",
    "partition_boundaries",
    "sample_keys",
    "range_of",
    "scale_estimate",
    "count_confidence_interval",
]

"""Sampling support for online aggregation (Chapter 5).

POL needs two things from sampling: the skip-list partition boundaries
(the manager "takes a sample, and determines the boundaries of skip
list partitions assigned to each processor", Figure 5.2 line 5), and
progressive estimates in the Hellerstein/Haas/Wang online-aggregation
style — scale observed group counts by the processed fraction and
attach a confidence interval that tightens as more blocks arrive.
"""

import math

from ..errors import PlanError


def sample_keys(relation, dims, sample_size=1024, seed=0):
    """A deterministic sample of group-by keys from the relation."""
    positions = relation.dim_indices(dims)
    indices = relation.sample_rows(sample_size, seed=seed)
    return [tuple(relation.rows[i][p] for p in positions) for i in indices]


def partition_boundaries(relation, dims, n_parts, sample_size=1024, seed=0):
    """Choose ``n_parts - 1`` ascending boundary keys from a sample.

    Key space range ``i`` holds keys ``< boundary[i]`` (last range
    unbounded), aiming at equal cell mass per processor.  With fewer
    distinct sampled keys than parts, some ranges come out empty — the
    imbalance the thesis notes POL tolerates via offloading.
    """
    if n_parts < 1:
        raise PlanError("n_parts must be >= 1, got %d" % n_parts)
    if n_parts == 1:
        return []
    keys = sorted(sample_keys(relation, dims, sample_size, seed))
    if not keys:
        return []
    boundaries = []
    for part in range(1, n_parts):
        index = (part * len(keys)) // n_parts
        boundaries.append(keys[min(index, len(keys) - 1)])
    # Boundaries must strictly ascend for ranges to be well defined.
    deduped = []
    for key in boundaries:
        if not deduped or key > deduped[-1]:
            deduped.append(key)
    return deduped


def range_of(key, boundaries):
    """Which partition range a key falls in (binary search)."""
    lo, hi = 0, len(boundaries)
    while lo < hi:
        mid = (lo + hi) // 2
        if key >= boundaries[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def scale_estimate(observed_count, processed, total):
    """Estimate a group's final count from a partial scan.

    With ``processed`` of ``total`` tuples seen and ``observed_count``
    of them in the group, the unbiased estimate of the group's final
    count is ``observed_count * total / processed``.
    """
    if processed <= 0:
        return 0.0
    return observed_count * (total / processed)


def count_confidence_interval(observed_count, processed, total, confidence=0.95):
    """A (lo, hi) interval for a group's final count.

    Treats the processed prefix as a simple random sample of the input
    (POL reads unsorted partitions block-wise, which the thesis treats
    as sampling) and applies a normal approximation to the binomial
    proportion, in the spirit of Hellerstein et al.'s running
    confidence intervals.
    """
    if processed <= 0:
        return (0.0, float(total))
    p = observed_count / processed
    z = _z_value(confidence)
    stderr = math.sqrt(max(0.0, p * (1.0 - p)) / processed)
    # Finite-population correction: the "sample" is drawn without
    # replacement from the input, so the interval collapses to the exact
    # count once everything has been processed.
    if total > 1:
        stderr *= math.sqrt(max(0.0, (total - processed) / (total - 1)))
    lo = max(0.0, (p - z * stderr) * total)
    hi = min(float(total), (p + z * stderr) * total)
    return (lo, hi)


def _z_value(confidence):
    """Two-sided normal quantile for common confidence levels."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if confidence in table:
        return table[confidence]
    # Fallback: a rational approximation of the probit function.
    if not 0.0 < confidence < 1.0:
        raise PlanError("confidence must be in (0, 1), got %r" % (confidence,))
    p = 1.0 - (1.0 - confidence) / 2.0
    # Beasley-Springer-Moro-ish approximation, adequate for reporting.
    t = math.sqrt(-2.0 * math.log(1.0 - p))
    return t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)

"""Algorithm POL — Parallel OnLine aggregation (Chapter 5, Figure 5.2).

POL answers a *single* iceberg group-by over a dataset assumed too large
for any one node's memory, returning a rough answer almost immediately
and refining it as more data is processed (the Hellerstein/Haas/Wang
online-aggregation framework).

Mechanics, as in the thesis:

* the raw data is block-range-partitioned across the ``n`` processors,
  unsorted — reading it block-wise is sampling;
* the group-by's cells live in one skip list *range-partitioned by key*
  across the processors; the manager picks the ``n-1`` boundary keys
  from an initial sample;
* computation is step-synchronous: per step, each processor loads one
  buffer-sized block from its local partition and groups it into ``n``
  chunks by key range — chunk ``(j, i)`` sits on processor ``i`` and
  belongs to processor ``j``'s skip-list partition.  The ``n x n``
  chunks are the step's tasks (Table 5.1);
* processor ``j`` works its own tasks in the wrap order ``(j,j), (j,j+1)
  ... (j,j-1)`` — spreading remote-chunk fetches so no source node gets
  a burst of requests — and, when done early, *offloads* waiting tasks
  whose chunk is local: it builds a private skip list from the chunk,
  ships the aggregated cells to the owner, and the owner merges them;
* a barrier ends each step; after it the manager can snapshot a running
  estimate (counts scaled by the processed fraction).

Communication dominates: with uniform data each processor forwards
``(n-1)/n`` of what it reads, which is why POL speeds up better on slow
CPUs and fast networks (Figure 5.3).
"""

from ..core.stats import OpStats
from ..core.thresholds import as_threshold
from ..cluster.costmodel import CostModel
from ..cluster.simulator import Cluster, SimulationResult, TaskExecution
from ..errors import PlanError
from .sampling import partition_boundaries, range_of, scale_estimate

#: Bytes per transferred tuple of a chunk: its key fields plus measure.
FIELD_BYTES = 8


class OnlineSnapshot:
    """The state of the running answer at one step boundary."""

    __slots__ = ("step", "processed", "total", "sim_time", "cells_seen", "qualifying",
                 "estimates")

    def __init__(self, step, processed, total, sim_time, cells_seen, qualifying,
                 estimates=None):
        self.step = step
        self.processed = processed
        self.total = total
        self.sim_time = sim_time
        self.cells_seen = cells_seen
        self.qualifying = qualifying
        #: ``{cell: estimated_final_count}`` when the run keeps estimates.
        self.estimates = estimates

    @property
    def fraction(self):
        return self.processed / self.total if self.total else 1.0

    def __repr__(self):
        return "OnlineSnapshot(step=%d, %.0f%%, t=%.2fs, cells=%d, qualifying=%d)" % (
            self.step,
            100 * self.fraction,
            self.sim_time,
            self.cells_seen,
            self.qualifying,
        )


class OnlineRunResult:
    """Final cells plus the progressive-refinement trace."""

    def __init__(self, dims, cells, simulation, snapshots, boundaries, extras=None):
        self.dims = dims
        self.cells = cells
        self.simulation = simulation
        self.snapshots = snapshots
        self.boundaries = boundaries
        self.extras = extras or {}

    @property
    def makespan(self):
        return self.simulation.makespan

    def __repr__(self):
        return "OnlineRunResult(%d cells, %.2fs, %d steps)" % (
            len(self.cells),
            self.makespan,
            len(self.snapshots),
        )


def wrap_order(start, n):
    """``start, start+1, ..., n-1, 0, ..., start-1`` (POL's task order)."""
    return [(start + k) % n for k in range(n)]


def initial_assignment(n):
    """Table 5.1: chunk labels per processor in their work order."""
    return {
        j: [(j, i) for i in wrap_order(j, n)] for j in range(n)
    }


class POL:
    """Parallel OnLine aggregation of one iceberg group-by."""

    name = "POL"

    def __init__(self, buffer_size=8000, sample_size=1024, seed=0, keep_estimates=False):
        """``buffer_size``: tuples loaded per processor per step (the
        Figure 5.4 knob).  ``keep_estimates``: snapshots also keep the
        full estimated cell map (memory-hungry; off by default)."""
        if buffer_size < 1:
            raise PlanError("buffer_size must be >= 1")
        self.buffer_size = buffer_size
        self.sample_size = sample_size
        self.seed = seed
        self.keep_estimates = keep_estimates

    def run(self, relation, dims=None, minsup=1, cluster_spec=None, cost_model=None,
            max_steps=None):
        """Aggregate ``GROUP BY dims HAVING COUNT(*) >= minsup`` online.

        ``minsup`` may be an integer minimum support or any
        :class:`~repro.core.thresholds.Threshold`.  ``max_steps`` stops
        early (the user interrupting the query); the returned cells then
        reflect only the processed prefix.
        """
        if dims is None:
            dims = relation.dims
        dims = tuple(dims)
        threshold = as_threshold(minsup)
        if cluster_spec is None:
            from ..cluster.spec import cluster1

            cluster_spec = cluster1()
        cluster = Cluster(cluster_spec, cost_model or CostModel())
        n = len(cluster)
        key_len = max(1, len(dims))
        positions = relation.dim_indices(dims)

        boundaries = partition_boundaries(
            relation, dims, n, sample_size=self.sample_size, seed=self.seed
        )
        # The manager's sampling pass (Figure 5.2 line 5), on processor 0.
        manager = cluster.processors[0]
        sample_stats = OpStats()
        sample_stats.read_tuples += min(self.sample_size, len(relation))
        cluster.charge(
            manager,
            TaskExecution("sample-boundaries", sample_stats,
                          read_bytes=min(self.sample_size, len(relation)) * key_len * FIELD_BYTES),
        )

        partitions = relation.block_partition(n)
        from ..structures.skiplist import SkipList

        lists = [SkipList(seed=self.seed + p) for p in range(n)]
        offsets = [0] * n
        total = len(relation)
        processed = 0
        step = 0
        schedule = []
        snapshots = []
        network = cluster.spec.network
        disk = cluster.spec.disk

        while processed < total and (max_steps is None or step < max_steps):
            step += 1
            chunks, loaded = self._load_step(
                cluster, partitions, offsets, positions, boundaries, n, disk, schedule
            )
            processed += loaded
            self._run_step_tasks(cluster, chunks, lists, n, key_len, network, schedule)
            self._barrier(cluster, network, n)
            snapshots.append(
                self._snapshot(step, processed, total, cluster, lists, threshold)
            )

        cells = {}
        for lst in lists:
            for key, count, value in lst:
                if threshold.qualifies(count, value):
                    cells[key] = (count, value)
        simulation = SimulationResult(cluster.processors, schedule)
        return OnlineRunResult(
            dims,
            cells,
            simulation,
            snapshots,
            boundaries,
            extras={"steps": step, "processed": processed},
        )

    # ------------------------------------------------------------------
    # step phases
    # ------------------------------------------------------------------
    def _load_step(self, cluster, partitions, offsets, positions, boundaries, n, disk,
                   schedule):
        """Each processor loads its next block and groups it into chunks.

        Returns ``(chunks, loaded)`` where ``chunks[(dest, src)]`` is a
        list of ``(key, measure)`` pairs.
        """
        chunks = {}
        loaded = 0
        for p in range(n):
            part = partitions[p]
            start = offsets[p]
            stop = min(start + self.buffer_size, len(part))
            offsets[p] = stop
            block = range(start, stop)
            if not block:
                continue
            loaded += stop - start
            stats = OpStats()
            stats.read_tuples += stop - start
            stats.add_scan(stop - start)
            stats.partition_moves += stop - start
            rows = part.rows
            measures = part.measures
            for i in block:
                key = tuple(rows[i][q] for q in positions)
                dest = range_of(key, boundaries)
                chunk = chunks.get((dest, p))
                if chunk is None:
                    chunk = chunks[(dest, p)] = []
                chunk.append((key, measures[i]))
            processor = cluster.processors[p]
            read_bytes = (stop - start) * (len(positions) + 1) * FIELD_BYTES
            # The per-step block load pays the fixed task cost (buffer
            # setup, re-sampling bookkeeping): this is the overhead that
            # larger buffers amortize in Figure 5.4.
            schedule.append(
                cluster.charge(
                    processor,
                    TaskExecution("load@%d" % p, stats, read_bytes=read_bytes),
                )
            )
        return chunks, loaded

    def _run_step_tasks(self, cluster, chunks, lists, n, key_len, network, schedule):
        """Demand-schedule the step's chunk tasks, with offloading."""
        pending = dict(chunks)
        stuck = [False] * n
        merges = [[] for _ in range(n)]  # offloaded cell lists awaiting owners

        def pick(p):
            for src in wrap_order(p, n):
                if (p, src) in pending:
                    return (p, src), "own"
            for dest in wrap_order((p + 1) % n, n):
                if dest != p and (dest, p) in pending:
                    return (dest, p), "offload"
            return None, None

        while pending:
            ready = [q for q in range(n) if not stuck[q]]
            if not ready:
                break
            p = min(ready, key=lambda q: (cluster.processors[q].clock, q))
            task, mode = pick(p)
            if task is None:
                stuck[p] = True
                continue
            chunk = pending.pop(task)
            dest, src = task
            processor = cluster.processors[p]
            stats = OpStats()
            comm_bytes = 0
            comm_messages = 0
            if mode == "own":
                if src != p:
                    comm_bytes = len(chunk) * (key_len + 1) * FIELD_BYTES
                    comm_messages = 2  # request + data
                target = lists[dest]
                before = target.comparisons
                for key, measure in chunk:
                    target.insert(key, measure=measure)
                stats.add_structure((target.comparisons - before) * key_len)
                stats.add_scan(len(chunk))
            else:
                # Offload: aggregate locally, ship cells to the owner.
                from ..structures.skiplist import SkipList

                private = SkipList(seed=p)
                for key, measure in chunk:
                    private.insert(key, measure=measure)
                stats.add_structure(private.comparisons * key_len)
                stats.add_scan(len(chunk))
                cells = private.items()
                comm_bytes = len(cells) * (key_len + 2) * FIELD_BYTES
                comm_messages = 1
                merges[dest].append(cells)
            schedule.append(
                cluster.charge(
                    processor,
                    TaskExecution(
                        "chunk(%d,%d)%s" % (dest, src, "*" if mode == "offload" else ""),
                        stats,
                        comm_bytes=comm_bytes,
                        comm_messages=comm_messages,
                    ),
                    include_task_overhead=False,
                )
            )
        # Owners merge what was offloaded to them.
        for dest in range(n):
            if not merges[dest]:
                continue
            processor = cluster.processors[dest]
            stats = OpStats()
            target = lists[dest]
            before = target.comparisons
            merged = 0
            for cells in merges[dest]:
                target.merge(cells)
                merged += len(cells)
            stats.add_structure((target.comparisons - before) * key_len)
            stats.add_scan(merged)
            schedule.append(
                cluster.charge(
                    processor,
                    TaskExecution("merge@%d" % dest, stats),
                    include_task_overhead=False,
                )
            )

    def _barrier(self, cluster, network, n):
        """Synchronize all processors at the step boundary."""
        sync = network.latency_s * 2 * max(1, n - 1).bit_length()
        horizon = max(p.clock for p in cluster.processors) + sync
        for p in cluster.processors:
            p.comm_time += sync
            p.clock = horizon

    def _snapshot(self, step, processed, total, cluster, lists, threshold):
        """Progressive estimate at the step boundary (the thesis' timer)."""
        cells_seen = sum(len(lst) for lst in lists)
        qualifying = 0
        estimates = {} if self.keep_estimates else None
        for lst in lists:
            for key, count, value in lst:
                estimate = scale_estimate(count, processed, total)
                estimated_sum = scale_estimate(value, processed, total)
                if threshold.qualifies(estimate, estimated_sum):
                    qualifying += 1
                    if estimates is not None:
                        estimates[key] = estimate
        return OnlineSnapshot(
            step,
            processed,
            total,
            max(p.clock for p in cluster.processors),
            cells_seen,
            qualifying,
            estimates,
        )

"""Greedy materialized-view selection (Harinarayan, Rajaraman & Ullman).

The thesis closes Section 5.1 with "it is a topic of future work to
develop more intelligent materialization strategies", citing the
materialized-view-selection literature it reviews ([10, 16]).  This
module implements the classic HRU greedy algorithm those papers center
on:

* the *benefit* of materializing cuboid ``v`` is, for every cuboid
  ``w`` that ``v`` can answer (``w``'s dimensions are a subset of
  ``v``'s), the reduction in ``w``'s answering cost — the size of the
  cheapest already-materialized ancestor minus the size of ``v``;
* greedily materialize the cuboid with the largest total benefit until
  the budget (view count or total cells) runs out.  HRU prove this is
  within ``(1 - 1/e)`` of the optimal benefit.

:class:`MaterializedCubeStore` then serves iceberg queries: each
group-by is aggregated from its smallest materialized ancestor, never
from the raw data.
"""

from ..core.naive import naive_cuboid
from ..core.thresholds import as_threshold
from ..errors import PlanError
from ..lattice.lattice import CubeLattice


def estimate_cuboid_sizes(relation, dims=None, sample_size=2048, seed=0):
    """Estimated cell counts for every cuboid, from a row sample.

    Distinct-key counts on a deterministic sample, scaled by the
    classic (first-order) distinct-value estimator and capped by both
    the relation size and the cardinality product.  Exact when the
    sample is the whole relation.
    """
    if dims is None:
        dims = relation.dims
    dims = tuple(dims)
    lattice = CubeLattice(dims)
    indices = relation.sample_rows(sample_size, seed=seed)
    total = len(relation)
    scale = total / len(indices) if indices else 1.0
    positions = {d: relation.dim_index(d) for d in dims}
    sizes = {}
    for cuboid in lattice.cuboids(include_all=False):
        cols = [positions[d] for d in cuboid]
        distinct = len({tuple(relation.rows[i][p] for p in cols) for i in indices})
        if indices and distinct == len(indices):
            # Every sampled key unique: extrapolate linearly.
            estimate = total
        else:
            estimate = int(distinct * max(1.0, scale ** 0.5))
        product = relation.cardinality_product(cuboid)
        sizes[cuboid] = max(1, min(estimate, total, product))
    sizes[()] = 1
    return sizes


def _answerable_by(view, cuboid):
    return set(cuboid) <= set(view)


def greedy_select(dims, sizes, max_views=None, max_cells=None):
    """The HRU greedy selection.

    The root (all-dimension) cuboid is always materialized (queries must
    be answerable); each round adds the view with the largest total
    benefit until ``max_views`` views are chosen or adding any view
    would exceed ``max_cells`` total cells.  Returns the chosen cuboids
    in selection order (root first).
    """
    dims = tuple(dims)
    root = dims
    if max_views is None and max_cells is None:
        raise PlanError("greedy_select needs max_views and/or max_cells")
    lattice = CubeLattice(dims)
    cuboids = lattice.cuboids(include_all=True)
    selected = [root]
    spent = sizes[root]

    def answer_cost(cuboid):
        return min(sizes[v] for v in selected if _answerable_by(v, cuboid))

    while True:
        if max_views is not None and len(selected) >= max_views:
            break
        best = None
        best_benefit = 0.0
        for candidate in cuboids:
            if candidate in selected or not candidate:
                continue
            if max_cells is not None and spent + sizes[candidate] > max_cells:
                continue
            benefit = 0.0
            for cuboid in cuboids:
                if not _answerable_by(candidate, cuboid):
                    continue
                saving = answer_cost(cuboid) - sizes[candidate]
                if saving > 0:
                    benefit += saving
            if benefit > best_benefit:
                best, best_benefit = candidate, benefit
        if best is None:
            break
        selected.append(best)
        spent += sizes[best]
    return selected


class MaterializedCubeStore:
    """Materialized cuboids chosen by HRU greedy, serving iceberg queries."""

    def __init__(self, relation, dims=None, max_views=4, max_cells=None,
                 sample_size=2048, seed=0):
        if dims is None:
            dims = relation.dims
        self.dims = tuple(dims)
        self._lattice = CubeLattice(self.dims)
        self.sizes = estimate_cuboid_sizes(relation, self.dims,
                                           sample_size=sample_size, seed=seed)
        self.views = greedy_select(self.dims, self.sizes, max_views=max_views,
                                   max_cells=max_cells)
        #: materialized cells per chosen view (exact, unfiltered)
        self._store = {}
        for view in self.views:
            self._store[view] = naive_cuboid(relation, view)
        self.total_rows = len(relation)
        self.total_measure = sum(relation.measures)
        #: cells scanned answering queries (the HRU cost measure)
        self.cells_scanned = 0

    def materialized_cells(self):
        """Actual total cells held (the realized space budget)."""
        return sum(len(cells) for cells in self._store.values())

    def best_view_for(self, cuboid):
        """The smallest materialized view that can answer ``cuboid``."""
        cuboid = self._lattice.canonical(cuboid)
        candidates = [v for v in self.views if _answerable_by(v, cuboid)]
        if not candidates:
            raise PlanError("no materialized view answers %r" % (cuboid,))
        return min(candidates, key=lambda v: len(self._store[v]))

    def query(self, cuboid, minsup=1):
        """Answer one iceberg group-by from the best materialized view.

        Returns ``{cell: (count, sum)}``; exact, since views hold
        unfiltered cells and aggregation is distributive.
        """
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        if not cuboid:
            if threshold.qualifies(self.total_rows, self.total_measure):
                return {(): (self.total_rows, self.total_measure)}
            return {}
        view = self.best_view_for(cuboid)
        cells = self._store[view]
        self.cells_scanned += len(cells)
        positions = [view.index(d) for d in cuboid]
        out = {}
        for key, (count, value) in cells.items():
            small = tuple(key[p] for p in positions)
            acc = out.get(small)
            if acc is None:
                out[small] = [count, value]
            else:
                acc[0] += count
                acc[1] += value
        return {
            cell: (count, value)
            for cell, (count, value) in out.items()
            if threshold.qualifies(count, value)
        }

    def average_query_cost(self):
        """Mean cells scanned to answer each cuboid once (HRU's metric)."""
        total = 0
        cuboids = self._lattice.cuboids(include_all=False)
        for cuboid in cuboids:
            view = self.best_view_for(cuboid)
            total += len(self._store[view])
        return total / len(cuboids)

"""Selective materialization (Section 5.1).

Instead of precomputing the full iceberg cube at some assumed threshold,
precompute *only the leaf cuboids of the BUC processing tree* at the
smallest possible support (minsup 1).  Over dimensions ``A_1..A_m`` the
tree's leaves are exactly the ``2**(m-1)`` cuboids that end with
``A_m`` — and every other cuboid is a *prefix* of one of them, so any
group-by (at any threshold) is answered by one ordered aggregation pass
over a materialized leaf: the thesis' "top-down aggregation ...
returns almost immediately".

The thesis' exercise: recomputing the whole cube at minsup 2 took ~60 s
with ASL, while precomputing just the leaves at minsup 1 took ~50 s and
then answered threshold changes instantly.  The
``benchmarks/test_sec_5_1_materialization.py`` bench reproduces that
ordering.
"""

import time

from ..core.columnar import ColumnarFrame, aggregate_cuboid
from ..core.thresholds import as_threshold
from ..errors import PlanError
from ..lattice.lattice import CubeLattice
from ..parallel.asl import ASL

#: Precompute backends: ``"simulated"`` runs the leaves through the
#: simulated ASL cluster (``precompute_seconds`` is the modelled
#: makespan, as in the Section 5.1 comparison); ``"local"`` aggregates
#: each leaf over a columnar frame at real machine speed
#: (``precompute_seconds`` is the measured wall clock).
BACKENDS = ("simulated", "local")


def leaf_cuboids(dims):
    """The BUC processing tree's leaves: all cuboids ending in the last
    dimension (plus the last dimension alone)."""
    dims = tuple(dims)
    if not dims:
        raise PlanError("need at least one dimension")
    last = dims[-1]
    lattice = CubeLattice(dims)
    return [c for c in lattice.cuboids(include_all=False) if c[-1] == last]


class LeafMaterialization:
    """Precomputed leaf cuboids answering arbitrary-threshold queries."""

    def __init__(self, relation, dims=None, cluster_spec=None, cost_model=None,
                 backend="simulated", leaves=None, workers=None, use_shm=True):
        """``leaves`` restricts the precompute to a subset of the
        processing tree's leaf cuboids (one shard's worth, for the
        sharded serving tier); the default materializes them all.

        ``workers`` (local backend only) aggregates the leaves on the
        supervised process pool with shared-memory transport
        (:func:`~repro.parallel.local.multiprocess_leaf_cells`);
        ``None`` or ``1`` keeps the in-process path.  ``use_shm=False``
        falls back to pickled results on the pool."""
        if dims is None:
            dims = relation.dims
        self.dims = tuple(dims)
        self._lattice = CubeLattice(self.dims)
        all_leaves = leaf_cuboids(self.dims)
        if leaves is None:
            self.leaves = all_leaves
        else:
            legal = frozenset(all_leaves)
            self.leaves = [tuple(leaf) for leaf in leaves]
            rogue = [leaf for leaf in self.leaves if leaf not in legal]
            if rogue:
                raise PlanError(
                    "not leaf cuboids of dims %r: %r" % (self.dims, rogue))
        self._leaf_set = frozenset(self.leaves)
        if backend not in BACKENDS:
            raise PlanError(
                "unknown materialization backend %r (have %s)"
                % (backend, ", ".join(BACKENDS))
            )
        # self._store: unfiltered cells per leaf cuboid, mutable for
        # incremental updates.
        if backend == "local":
            started = time.perf_counter()
            if workers is not None and workers != 1:
                from ..parallel.local import multiprocess_leaf_cells
                by_leaf = multiprocess_leaf_cells(
                    relation, self.leaves, dims=self.dims, workers=workers,
                    use_shm=use_shm)
            else:
                frame = ColumnarFrame.from_relation(relation, self.dims)
                by_leaf = {
                    leaf: aggregate_cuboid(frame, leaf)
                    for leaf in self.leaves
                }
            self._store = {
                leaf: {
                    cell: [count, total]
                    for cell, (count, total) in by_leaf[leaf].items()
                }
                for leaf in self.leaves
            }
            precompute_seconds = time.perf_counter() - started
        else:
            algo = ASL(cuboids=self.leaves)
            run = algo.run(
                relation, self.dims, minsup=1, cluster_spec=cluster_spec,
                cost_model=cost_model,
            )
            self._store = {
                cuboid: {cell: list(agg) for cell, agg in cells.items()}
                for cuboid, cells in run.result.cuboids.items()
            }
            precompute_seconds = run.makespan
        #: sorted-items cache per leaf, invalidated by inserts
        self._sorted = {}
        self.precompute_seconds = precompute_seconds
        self.total_rows = len(relation)
        self.total_measure = sum(relation.measures)
        #: bumped by every insert so serving caches can invalidate
        #: (same contract as :class:`repro.serve.store.CubeStore`)
        self.generation = 1

    def _items(self, leaf):
        """The leaf's cells in key order (cached until the next insert)."""
        cached = self._sorted.get(leaf)
        if cached is None:
            cells = self._store.get(leaf, {})
            cached = self._sorted[leaf] = sorted(
                (cell, (agg[0], agg[1])) for cell, agg in cells.items()
            )
        return cached

    def insert(self, relation):
        """Incrementally fold new rows into the materialized leaves.

        The leaves hold *unfiltered* cells (minsup 1), so appending data
        is a pure accumulation — no rescan of the original input.  The
        new relation must share the materialization's dimensions.
        """
        positions = relation.dim_indices(self.dims)
        keyed = [
            (tuple(row[p] for p in positions), measure)
            for row, measure in zip(relation.rows, relation.measures)
        ]
        for leaf in self.leaves:
            cells = self._store.setdefault(leaf, {})
            leaf_positions = [self.dims.index(d) for d in leaf]
            for key, measure in keyed:
                cell = tuple(key[p] for p in leaf_positions)
                acc = cells.get(cell)
                if acc is None:
                    cells[cell] = [1, measure]
                else:
                    acc[0] += 1
                    acc[1] += measure
            self._sorted.pop(leaf, None)
        self.total_rows += len(relation)
        self.total_measure += sum(relation.measures)
        self.generation += 1

    def append(self, relation):
        """Alias for :meth:`insert` (the cube-store maintenance name),
        so a :class:`~repro.serve.server.CubeServer` can front an
        in-memory materialization and a persistent store uniformly."""
        self.insert(relation)

    def canonical(self, cuboid):
        """Normalize a cuboid to schema order (store-compatible surface)."""
        return self._lattice.canonical(cuboid)

    def covering_leaf(self, cuboid):
        """The materialized leaf that has ``cuboid`` as a prefix.

        Any canonical cuboid not already ending with the last dimension
        becomes a leaf by appending it, so this is a single frozenset
        membership test — no per-call set construction or linear scan.
        """
        cuboid = self._lattice.canonical(cuboid)
        if cuboid and cuboid[-1] == self.dims[-1]:
            return cuboid
        candidate = cuboid + (self.dims[-1],)
        if candidate in self._leaf_set:
            return candidate
        raise PlanError("no materialized leaf covers cuboid %r" % (cuboid,))

    def owned_cuboids(self):
        """Every cuboid whose covering leaf this materialization holds
        (store-compatible surface; see ``CubeStore.owned_cuboids``)."""
        owned = []
        for leaf in self.leaves:
            owned.append(leaf)
            owned.append(leaf[:-1])
        return owned

    def query(self, cuboid, minsup=1):
        """Answer ``GROUP BY cuboid HAVING COUNT(*) >= minsup``.

        ``minsup`` may be an integer or any
        :class:`~repro.core.thresholds.Threshold`.  One ordered scan
        over the covering leaf's (sorted) cells; cells sharing the
        query's prefix are contiguous, so aggregation is a single pass.
        Returns ``{cell: (count, sum)}``.
        """
        threshold = as_threshold(minsup)
        cuboid = self._lattice.canonical(cuboid)
        if not cuboid:
            if threshold.qualifies(self.total_rows, self.total_measure):
                return {(): (self.total_rows, self.total_measure)}
            return {}
        leaf = self.covering_leaf(cuboid)
        items = self._items(leaf)
        width = len(cuboid)
        out = {}
        current = None
        count = 0
        total = 0.0
        for cell, (c, v) in items:
            prefix = cell[:width]
            if prefix != current:
                if current is not None and threshold.qualifies(count, total):
                    out[current] = (count, total)
                current = prefix
                count = 0
                total = 0.0
            count += c
            total += v
        if current is not None and threshold.qualifies(count, total):
            out[current] = (count, total)
        return out

    def query_cube(self, minsup):
        """Answer the *whole* iceberg cube at a new threshold.

        Every cuboid is served from its covering leaf; this is the
        online stage of the Section 5.1 comparison.
        """
        from ..core.result import CubeResult

        threshold = as_threshold(minsup)
        result = CubeResult(self.dims)
        for cuboid in self._lattice.cuboids(include_all=False):
            for cell, (count, value) in self.query(cuboid, threshold).items():
                result.add_cell(cuboid, cell, count, value)
        if threshold.qualifies(self.total_rows, self.total_measure):
            result.add_cell((), (), self.total_rows, self.total_measure)
        return result

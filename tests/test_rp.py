"""Algorithm RP: round-robin subtree tasks, depth-first writing."""

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.parallel import RP


class TestPlanning:
    def test_one_task_per_dimension(self, small_uniform):
        run = RP().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        labels = [e.label for e in run.simulation.schedule]
        assert labels == ["T_%s" % d for d in small_uniform.dims]

    def test_round_robin_assignment(self, small_uniform):
        run = RP().run(small_uniform, minsup=1, cluster_spec=cluster1(3))
        processors = [e.processor for e in run.simulation.schedule]
        assert processors == [0, 1, 2, 0]  # 4 dims over 3 processors

    def test_idle_processors_when_more_than_tasks(self, small_uniform):
        run = RP().run(small_uniform, minsup=1, cluster_spec=cluster1(8))
        used = {e.processor for e in run.simulation.schedule}
        assert len(used) == len(small_uniform.dims)  # 4 of 8 busy
        assert any(p.busy_time == 0 for p in run.simulation.processors)


class TestExecution:
    def test_each_processor_loads_the_replicated_dataset_once(self, small_uniform):
        run = RP().run(small_uniform, minsup=1, cluster_spec=cluster1(2))
        # Both processors paid an input read (io_time includes it).
        assert all(
            p.io_time > 0 for p in run.simulation.processors if p.tasks_run
        )

    def test_depth_first_writing_scatters(self, small_skewed):
        depth = RP().run(small_skewed, minsup=1, cluster_spec=cluster1(2))
        breadth = RP(breadth_first=True).run(small_skewed, minsup=1,
                                             cluster_spec=cluster1(2))
        assert depth.result.equals(breadth.result)
        assert depth.simulation.time_breakdown()[1] > breadth.simulation.time_breakdown()[1]

    def test_subtree_imbalance_shows_up(self, small_skewed):
        # T_A (half the lattice) dwarfs T_D (one node): static assignment
        # cannot balance that.
        run = RP().run(small_skewed, minsup=1, cluster_spec=cluster1(4))
        assert run.simulation.load_imbalance() > 1.5

    def test_exactness_at_scale_of_fixture(self, small_skewed):
        expected = naive_iceberg_cube(small_skewed, minsup=3)
        run = RP().run(small_skewed, minsup=3, cluster_spec=cluster1(4))
        assert run.result.equals(expected)

"""PipeSort: plan structure and exact results."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.naive import naive_iceberg_cube
from repro.core.pipesort import (
    chain_order,
    estimated_size,
    pipesort_iceberg_cube,
    plan_pipesort,
)
from repro.data import Relation, uniform_relation


class TestEstimates:
    def test_product_capped_by_rows(self):
        cards = {"A": 10, "B": 10}
        assert estimated_size(("A", "B"), cards, 1000) == 100
        assert estimated_size(("A", "B"), cards, 50) == 50
        assert estimated_size((), cards, 50) == 1


class TestPlan:
    def test_every_cuboid_has_a_parent_one_level_up(self):
        plan = plan_pipesort(("A", "B", "C", "D"), {d: 4 for d in "ABCD"}, 1000)
        for child, parent in plan.parent_of.items():
            if parent is None:
                assert child == ("A", "B", "C", "D")
            else:
                assert len(parent) == len(child) + 1
                assert set(child) <= set(parent)

    def test_pipelines_cover_all_cuboids_once(self):
        plan = plan_pipesort(("A", "B", "C"), {d: 4 for d in "ABC"}, 1000)
        covered = [c for pipeline in plan.pipelines for c in pipeline]
        assert sorted(covered) == sorted(plan.parent_of)

    def test_each_parent_pipelines_at_most_one_child(self):
        plan = plan_pipesort(("A", "B", "C", "D"), {d: 3 for d in "ABCD"}, 500)
        parents = [parent for parent, _child in plan.pipelined]
        assert len(parents) == len(set(parents))

    def test_fewer_sorts_than_cuboids(self):
        dims = ("A", "B", "C", "D")
        plan = plan_pipesort(dims, {d: 4 for d in dims}, 1000)
        assert plan.n_sorts < 2 ** len(dims) - 1

    def test_chain_order_makes_members_prefixes(self):
        chain = [("A", "B", "C"), ("A", "B"), ("B",)]
        # Not a real plan chain (B is not a prefix); use a valid one.
        chain = [("A", "B", "C"), ("A", "B"), ("A",)]
        order = chain_order(chain)
        for cuboid in chain:
            assert set(order[: len(cuboid)]) == set(cuboid)


class TestExecution:
    @pytest.mark.parametrize("minsup", [1, 2, 5])
    def test_matches_naive(self, small_skewed, minsup):
        expected = naive_iceberg_cube(small_skewed, minsup=minsup)
        got, _stats, _plan = pipesort_iceberg_cube(small_skewed, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats, _plan = pipesort_iceberg_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_stats_account_sorts_and_scans(self, small_uniform):
        _got, stats, plan = pipesort_iceberg_cube(small_uniform)
        assert stats.sort_units > 0
        assert stats.scan_tuples > 0
        assert stats.read_tuples == len(small_uniform)

    @given(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
                 max_size=50),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, rows, minsup):
        relation = Relation(("A", "B", "C"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats, _plan = pipesort_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)

    def test_no_pruning_full_work_regardless_of_minsup(self):
        rel = uniform_relation(400, [5, 4, 3], seed=2)
        _, loose, _ = pipesort_iceberg_cube(rel, minsup=1)
        _, tight, _ = pipesort_iceberg_cube(rel, minsup=50)
        # Top-down: the threshold only filters output, never the work.
        assert tight.sort_units == loose.sort_units

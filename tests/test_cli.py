"""The repro-cube command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.core.export import load_cube
from repro.data import from_raw_rows, save_csv


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def sales_csv(tmp_path):
    rows = [
        ["Sony", "TV", "Seattle", 700],
        ["Sony", "TV", "Seattle", 700],
        ["JVC", "TV", "Vancouver", 400],
        ["Sony", "VCR", "Seattle", 250],
        ["JVC", "TV", "Vancouver", 400],
    ]
    relation = from_raw_rows(("brand", "item", "city"), rows, measure_index=3)
    path = tmp_path / "sales.csv"
    save_csv(relation, path)
    return str(path)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_input_source_is_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cube", "--csv", "x.csv", "--weather", "100"]
            )


class TestCube:
    def test_cube_from_csv(self, sales_csv):
        code, output = run_cli(["cube", "--csv", sales_csv, "--minsup", "2",
                                "--algorithm", "pt", "--processors", "2"])
        assert code == 0
        assert "qualifying cells" in output
        assert "COUNT(*) >= 2" in output

    def test_cube_synthetic_weather(self):
        code, output = run_cli(["cube", "--weather", "500", "--dims", "3",
                                "--minsup", "2"])
        assert code == 0
        assert "PT" in output

    def test_cube_export(self, sales_csv, tmp_path):
        target = tmp_path / "out"
        code, output = run_cli(["cube", "--csv", sales_csv, "--export", str(target)])
        assert code == 0
        loaded = load_cube(target)
        assert loaded.total_cells() > 0

    @pytest.mark.parametrize("algo", ["rp", "bpp", "asl", "aht"])
    def test_every_algorithm_accessible(self, sales_csv, algo):
        code, output = run_cli(["cube", "--csv", sales_csv, "--algorithm", algo])
        assert code == 0
        assert algo.upper() in output


class TestQuery:
    def test_count_query(self, sales_csv):
        code, output = run_cli(["query", "--csv", sales_csv,
                                "--group-by", "brand,city", "--minsup", "2",
                                "--aggregate", "count"])
        assert code == 0
        assert "Sony / Seattle" in output
        assert "JVC / Vancouver" in output

    def test_sum_threshold_query(self, sales_csv):
        code, output = run_cli(["query", "--csv", sales_csv,
                                "--group-by", "brand", "--min-sum", "1500"])
        assert code == 0
        assert "SUM(measure) >= 1500" in output
        assert "Sony" in output
        assert "JVC" not in output.split("HAVING")[1]

    def test_limit_truncates(self, sales_csv):
        code, output = run_cli(["query", "--csv", sales_csv,
                                "--group-by", "brand,item,city", "--limit", "1"])
        assert code == 0
        assert "more cells" in output

    def test_bad_dimension_is_a_clean_error(self, sales_csv):
        code, output = run_cli(["query", "--csv", sales_csv, "--group-by", "nope"])
        assert code == 2
        assert "error:" in output


class TestRecipeAndBench:
    def test_recipe(self, sales_csv):
        code, output = run_cli(["recipe", "--csv", sales_csv])
        assert code == 0
        assert "recommended:" in output

    def test_bench_lists_experiments(self):
        code, output = run_cli(["bench"])
        assert code == 0
        assert "fig_4_2_scalability" in output
        assert "ablation_counting_sort" in output

    def test_bench_unknown_experiment(self):
        code, output = run_cli(["bench", "nonexistent"])
        assert code == 2

    def test_bench_runs_cheap_experiment(self):
        code, output = run_cli(["bench", "table_1_1_features"])
        assert code == 0
        assert "Table 1.1" in output
        assert "[PASS]" in output


class TestMoreCubePaths:
    def test_named_weather_dims(self):
        code, output = run_cli(["cube", "--weather", "400",
                                "--dims", "precip_code,hour", "--minsup", "2"])
        assert code == 0
        assert "precip_code, hour" in output

    def test_cluster_choices(self, sales_csv):
        for cluster in ("cluster2", "cluster3", "paper"):
            code, output = run_cli(["cube", "--csv", sales_csv,
                                    "--cluster", cluster, "--processors", "3"])
            assert code == 0, cluster

    def test_combined_count_and_sum_threshold(self, sales_csv):
        code, output = run_cli(["cube", "--csv", sales_csv,
                                "--minsup", "2", "--min-sum", "500"])
        assert code == 0
        assert "COUNT(*) >= 2 AND SUM(measure) >= 500" in output


class TestLocalBackend:
    """The ``--backend local`` path: real process pool, real seconds."""

    def test_compute_alias(self, sales_csv):
        code, output = run_cli(["compute", "--csv", sales_csv, "--minsup", "2"])
        assert code == 0
        assert "qualifying cells" in output

    def test_local_backend_summary(self, sales_csv):
        code, output = run_cli(["cube", "--csv", sales_csv, "--minsup", "2",
                                "--backend", "local", "--workers", "2",
                                "--batch-size", "2"])
        assert code == 0
        assert "local process pool" in output
        assert "wall clock" in output
        assert "2 workers, batch size 2" in output

    @pytest.mark.parametrize("kernel", ["auto", "columnar"])
    def test_local_backend_self_test(self, sales_csv, kernel):
        code, output = run_cli(["cube", "--csv", sales_csv, "--minsup", "2",
                                "--backend", "local", "--workers", "1",
                                "--kernel", kernel, "--self-test"])
        assert code == 0
        assert "self-test        : PASSED" in output
        assert "(%s kernel)" % kernel in output

    def test_simulated_self_test(self, sales_csv):
        code, output = run_cli(["cube", "--csv", sales_csv, "--minsup", "2",
                                "--self-test"])
        assert code == 0
        assert "self-test        : PASSED" in output

    def test_local_backend_export(self, sales_csv, tmp_path):
        target = tmp_path / "out"
        code, output = run_cli(["cube", "--csv", sales_csv,
                                "--backend", "local", "--workers", "1",
                                "--export", str(target)])
        assert code == 0
        loaded = load_cube(target)
        assert loaded.total_cells() > 0

    def test_faults_drive_real_workers_on_local_backend(self, sales_csv):
        # crash:0@0 SIGKILLs the real worker holding batch 0; the
        # supervisor retries and the result still matches the oracle.
        code, output = run_cli(["cube", "--csv", sales_csv,
                                "--backend", "local", "--workers", "2",
                                "--faults", "crash:0@0", "--self-test"])
        assert code == 0
        assert "self-test        : PASSED" in output
        assert "recovery         :" in output
        assert "1 worker crashes" in output


class TestStoreAndServe:
    def test_store_build(self, sales_csv, tmp_path):
        target = tmp_path / "store"
        code, output = run_cli(["store", "build", "--csv", sales_csv,
                                "--out", str(target), "--processors", "2"])
        assert code == 0
        assert "built cube store" in output
        assert "stored leaves" in output
        from repro.serve import CubeStore

        store = CubeStore.open(target)
        assert store.total_rows == 5
        assert store.query(("brand",), minsup=1)
        store.close()

    @pytest.mark.parametrize("backend", ["local", "simulated"])
    def test_store_build_backends(self, sales_csv, tmp_path, backend):
        target = tmp_path / ("store_" + backend)
        code, output = run_cli(["store", "build", "--csv", sales_csv,
                                "--out", str(target), "--backend", backend])
        assert code == 0
        assert "(%s backend)" % backend in output
        from repro.serve import CubeStore

        store = CubeStore.open(target)
        assert store.query(("brand",), minsup=1)
        store.close()

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_serve_self_test_over_http(self, sales_csv, tmp_path):
        target = tmp_path / "store"
        code, _ = run_cli(["store", "build", "--csv", sales_csv,
                           "--out", str(target), "--processors", "2"])
        assert code == 0
        code, output = run_cli(["serve", "--store", str(target), "--port", "0",
                                "--self-test", "12"])
        assert code == 0
        assert "listening on http://" in output
        assert "12 HTTP queries answered" in output
        assert "cache hit rate" in output

    def test_serve_missing_store_is_clean_error(self, tmp_path):
        code, output = run_cli(["serve", "--store", str(tmp_path / "nope"),
                                "--port", "0", "--self-test", "1"])
        assert code == 2
        assert "error:" in output


class TestClusterCli:
    """store build --shards, serve --shard, and the router subcommand."""

    def test_sharded_build_and_shard_serve(self, sales_csv, tmp_path):
        target = tmp_path / "cluster"
        code, output = run_cli(["store", "build", "--csv", sales_csv,
                                "--out", str(target), "--shards", "2"])
        assert code == 0
        assert "2 shards" in output
        code, output = run_cli(["serve", "--store", str(target / "shard-0"),
                                "--shard", "0/2", "--port", "0",
                                "--self-test", "4"])
        assert code == 0
        assert "placement validated" in output
        assert "4 HTTP queries answered" in output

    def test_serve_refuses_wrong_shard_position(self, sales_csv, tmp_path):
        target = tmp_path / "cluster"
        run_cli(["store", "build", "--csv", sales_csv,
                 "--out", str(target), "--shards", "2"])
        code, output = run_cli(["serve", "--store", str(target / "shard-0"),
                                "--shard", "1/2", "--port", "0",
                                "--self-test", "1"])
        assert code == 2
        assert "error:" in output

    def test_serve_rejects_malformed_shard_spec(self, sales_csv, tmp_path):
        target = tmp_path / "mono"
        run_cli(["store", "build", "--csv", sales_csv, "--out", str(target)])
        code, output = run_cli(["serve", "--store", str(target),
                                "--shard", "banana", "--port", "0",
                                "--self-test", "1"])
        assert code == 2
        assert "I/N" in output

    def test_router_requires_a_shard(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["router"])

    def test_router_self_test_end_to_end(self, sales_csv, tmp_path):
        import re
        import threading

        target = tmp_path / "cluster"
        run_cli(["store", "build", "--csv", sales_csv,
                 "--out", str(target), "--shards", "2"])
        # Two replica servers on ephemeral ports, run in threads via the
        # CLI itself (endpoint.join() blocks until closed).
        from repro.serve import CubeServer, CubeStore

        servers, urls = [], []
        for shard in range(2):
            store = CubeStore.open(str(target / ("shard-%d" % shard)))
            server = CubeServer(store)
            endpoint = server.serve_http(port=0)
            servers.append((server, store, endpoint))
            urls.append(endpoint.url)
        try:
            code, output = run_cli(["router", "--shard", urls[0],
                                    "--shard", urls[1], "--port", "0",
                                    "--self-test", "5"])
            assert code == 0
            assert "routing 2 shard(s)" in output
            assert re.search(r"5 routed queries answered", output)
            assert "cluster health   : ok" in output
        finally:
            for server, store, endpoint in servers:
                endpoint.close()
                server.close()
                store.close()

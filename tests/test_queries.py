"""The user-facing iceberg-query API."""

import pytest

from repro.cluster import cluster1
from repro.core.naive import naive_iceberg_cube
from repro.errors import PlanError, SchemaError
from repro.queries import IcebergQuery, iceberg_cube, iceberg_query, resolve_algorithm


class TestIcebergQuery:
    def test_sql_rendering(self):
        q = IcebergQuery(("A", "B"), minsup=3, aggregate="sum", cube=True)
        sql = q.sql(table="R", measure="sales")
        assert "CUBE BY A, B" in sql
        assert "SUM(sales)" in sql
        assert "HAVING COUNT(*) >= 3" in sql

    def test_group_by_rendering(self):
        assert "GROUP BY A" in IcebergQuery(("A",), minsup=1).sql()

    def test_validation(self):
        with pytest.raises(PlanError):
            IcebergQuery((), minsup=1)
        with pytest.raises(PlanError):
            IcebergQuery(("A",), minsup=0)
        with pytest.raises(SchemaError):
            IcebergQuery(("A",), aggregate="nope")


class TestResolveAlgorithm:
    def test_by_name(self):
        for name in ("rp", "BPP", "asl", "Pt", "AHT"):
            assert resolve_algorithm(name).name.lower() == name.lower()

    def test_instances_pass_through(self):
        from repro.parallel import PT

        algo = PT(task_ratio=8)
        assert resolve_algorithm(algo) is algo

    def test_unknown_rejected(self):
        with pytest.raises(PlanError):
            resolve_algorithm("quicksort")
        with pytest.raises(PlanError):
            resolve_algorithm(42)


class TestIcebergCube:
    def test_default_algorithm_is_pt(self, small_uniform):
        run = iceberg_cube(small_uniform, minsup=2, cluster_spec=cluster1(2))
        assert run.algorithm == "PT"
        assert run.result.equals(naive_iceberg_cube(small_uniform, minsup=2))

    @pytest.mark.parametrize("name", ["rp", "bpp", "asl", "pt", "aht"])
    def test_every_algorithm_by_name(self, small_uniform, name):
        run = iceberg_cube(small_uniform, minsup=2, algorithm=name,
                           cluster_spec=cluster1(2))
        assert run.result.equals(naive_iceberg_cube(small_uniform, minsup=2))


class TestIcebergQueryFunction:
    def test_sum(self, example_relation):
        cells = iceberg_query(example_relation, ("Item", "Location"), minsup=3)
        decoded = {
            example_relation.encoder.decode_cell(("Item", "Location"), cell): value
            for cell, value in cells.items()
        }
        assert decoded == {("Sony 25in TV", "Seattle"): 2100.0}

    def test_count_and_avg(self, example_relation):
        counts = iceberg_query(example_relation, ("Location",), minsup=1,
                               aggregate="count")
        assert sum(counts.values()) == len(example_relation)
        avgs = iceberg_query(example_relation, ("Location",), minsup=1,
                             aggregate="avg")
        sums = iceberg_query(example_relation, ("Location",), minsup=1)
        for cell in avgs:
            assert avgs[cell] == pytest.approx(sums[cell] / counts[cell])

    def test_holistic_aggregate_path(self, small_uniform):
        medians = iceberg_query(small_uniform, ("A",), minsup=1, aggregate="median")
        # Cross-check one cell by brute force.
        cell = next(iter(medians))
        values = sorted(
            m for row, m in zip(small_uniform.rows, small_uniform.measures)
            if (row[0],) == cell
        )
        mid = len(values) // 2
        expected = values[mid] if len(values) % 2 else (values[mid - 1] + values[mid]) / 2
        assert medians[cell] == pytest.approx(expected)

    def test_min_max(self, small_uniform):
        mins = iceberg_query(small_uniform, ("A", "B"), minsup=1, aggregate="min")
        maxs = iceberg_query(small_uniform, ("A", "B"), minsup=1, aggregate="max")
        assert all(mins[c] <= maxs[c] for c in mins)

    def test_minsup_filters(self, small_uniform):
        strict = iceberg_query(small_uniform, ("A", "B", "C"), minsup=5)
        loose = iceberg_query(small_uniform, ("A", "B", "C"), minsup=1)
        assert set(strict) <= set(loose)

    def test_unknown_dimension_rejected(self, small_uniform):
        with pytest.raises(SchemaError):
            iceberg_query(small_uniform, ("A", "ZZZ"))


class TestHavingThresholds:
    def test_sum_threshold_via_having(self, example_relation):
        from repro.core import SumThreshold

        cells = iceberg_query(example_relation, ("Item",),
                              having=SumThreshold(1000.0))
        decoded = {
            example_relation.encoder.decode_cell(("Item",), cell): value
            for cell, value in cells.items()
        }
        assert decoded == {("Sony 25in TV",): 2100.0}

    def test_having_overrides_minsup(self, example_relation):
        from repro.core import CountThreshold

        strict = iceberg_query(example_relation, ("Location",), minsup=99,
                               having=CountThreshold(1))
        assert len(strict) == 3  # having won; minsup ignored

    def test_having_applies_to_holistic_aggregates(self, small_uniform):
        from repro.core import SumThreshold

        medians = iceberg_query(small_uniform, ("A",), aggregate="median",
                                having=SumThreshold(1e9))
        assert medians == {}

    def test_sql_renders_having_condition(self):
        from repro.core import AndThreshold, SumThreshold

        q = IcebergQuery(("A",), having=AndThreshold(2, SumThreshold(10)))
        assert "COUNT(*) >= 2 AND SUM(measure) >= 10" in q.sql()


class TestExecute:
    """IcebergQuery.execute against relations, stores and servers."""

    def test_execute_against_relation(self, small_skewed):
        q = IcebergQuery(("A", "B"), minsup=2)
        assert q.execute(small_skewed) == iceberg_query(
            small_skewed, ("A", "B"), minsup=2)

    def test_execute_against_store_and_server(self, small_skewed, tmp_path):
        from repro.serve import CubeServer, CubeStore

        store = CubeStore.build(small_skewed, tmp_path / "s",
                                cluster_spec=cluster1(2))
        q = IcebergQuery(("A", "B"), minsup=2, aggregate="avg")
        expected = q.execute(small_skewed)
        assert q.execute(store) == pytest.approx(expected)
        with CubeServer(store) as server:
            assert q.execute(server) == pytest.approx(expected)
        store.close()

    def test_execute_against_materialization(self, small_skewed):
        from repro.online import LeafMaterialization

        mat = LeafMaterialization(small_skewed, cluster_spec=cluster1(2))
        q = IcebergQuery(("B", "D"), minsup=3, aggregate="count")
        assert q.execute(mat) == q.execute(small_skewed)

    def test_execute_cube_form(self, small_skewed, tmp_path):
        from repro.serve import CubeStore

        store = CubeStore.build(small_skewed, tmp_path / "s",
                                cluster_spec=cluster1(2))
        q = IcebergQuery(("A", "B"), minsup=2, cube=True)
        served = q.execute(store)
        direct = q.execute(small_skewed)
        assert set(served) == {("A", "B"), ("A",), ("B",)}
        for cuboid in served:
            assert served[cuboid] == pytest.approx(direct[cuboid]), cuboid
        store.close()

    def test_holistic_aggregate_needs_relation(self, small_skewed, tmp_path):
        from repro.serve import CubeStore

        store = CubeStore.build(small_skewed, tmp_path / "s",
                                cluster_spec=cluster1(2))
        q = IcebergQuery(("A",), minsup=2, aggregate="median")
        assert q.execute(small_skewed)  # fine on the raw relation
        with pytest.raises(PlanError):
            q.execute(store)
        store.close()

    def test_execute_rejects_non_targets(self):
        with pytest.raises(PlanError):
            IcebergQuery(("A",)).execute(42)

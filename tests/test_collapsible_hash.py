"""AHT's bit-sliced hash table: indexing, collisions and collapse."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.collapsible_hash import CollapsibleHashTable


def build(cards, pairs, max_buckets=64):
    table = CollapsibleHashTable(cards, max_buckets)
    for key, measure in pairs:
        table.insert(key, measure=measure)
    return table


class TestBitAllocation:
    def test_ideal_bits_when_space_allows(self):
        table = CollapsibleHashTable([4, 8], 1024)
        assert table.bits == [2, 3]
        assert table.n_buckets == 32

    def test_bits_shrink_to_fit_cap(self):
        table = CollapsibleHashTable([256, 256, 256], 256)  # 24 ideal bits, 8 allowed
        assert sum(table.bits) <= 8
        assert all(b >= 1 for b in table.bits)

    def test_minimum_one_bit_per_attribute(self):
        table = CollapsibleHashTable([1000] * 6, 4)  # cap smaller than 1 bit each
        assert table.bits == [1] * 6  # the floor wins; table exceeds the cap

    def test_bucket_index_is_bit_concatenation(self):
        table = CollapsibleHashTable([4, 4], 1024)  # 2 + 2 bits
        assert table.bucket_index((1, 2)) == (1 << 2) | 2
        assert table.bucket_index((5, 2)) == ((5 & 3) << 2) | 2  # MOD hash truncates


class TestInsertGet:
    def test_accumulation(self):
        table = build([4, 4], [((1, 1), 2.0), ((1, 1), 3.0)])
        assert table.get((1, 1)) == (2, 5.0)
        assert len(table) == 1

    def test_collisions_counted_when_bits_truncate(self):
        table = CollapsibleHashTable([16], 4)  # 2 bits for 16 values
        for v in range(16):
            table.insert((v,))
        assert table.collisions > 0
        assert table.max_chain_length() >= 4

    def test_get_missing(self):
        table = build([4], [((1,), 1.0)])
        assert table.get((2,)) is None

    def test_items_sorted_post_sorting(self):
        table = build([8], [((5,), 1.0), ((2,), 1.0), ((7,), 1.0)])
        assert [k for k, _c, _v in table.items_sorted()] == [(2,), (5,), (7,)]


class TestCollapse:
    def test_collapse_matches_recomputation(self):
        pairs = [((a, b, c), float(a + b + c)) for a in range(4) for b in range(3)
                 for c in range(2)]
        table = build([4, 3, 2], pairs)
        collapsed = table.collapse((0, 2))
        expected = {}
        for (a, b, c), measure in pairs:
            count, value = expected.get((a, c), (0, 0.0))
            expected[(a, c)] = (count + 1, value + measure)
        got = {k: (c, v) for k, c, v in collapsed}
        assert got == expected

    def test_collapse_keeps_source_bits(self):
        table = CollapsibleHashTable([4, 8, 16], 4096)
        collapsed = table.collapse((1,))
        assert collapsed.bits == [table.bits[1]]

    def test_collapse_can_permute(self):
        table = build([3, 5], [((1, 4), 1.0), ((2, 4), 2.0)])
        collapsed = table.collapse((1, 0))
        assert collapsed.get((4, 1)) == (1, 1.0)


class TestHashModes:
    def test_invalid_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            CollapsibleHashTable([4], 16, hash_mode="cryptographic")

    def test_multiplicative_mode_same_contents(self):
        pairs = [((a, b), 1.0) for a in range(9) for b in range(7)]
        mod = CollapsibleHashTable([9, 7], 32)
        mult = CollapsibleHashTable([9, 7], 32, hash_mode="multiplicative")
        for key, measure in pairs:
            mod.insert(key, measure=measure)
            mult.insert(key, measure=measure)
        assert mod.items_sorted() == mult.items_sorted()

    def test_collapse_preserves_hash_mode(self):
        table = CollapsibleHashTable([4, 4], 64, hash_mode="multiplicative")
        table.insert((1, 2))
        assert table.collapse((0,)).hash_mode == "multiplicative"

    def test_multiplicative_spreads_strided_codes(self):
        # Codes that alias badly under low-bit truncation (all equal mod
        # 2^bits) spread under the multiplicative hash.
        mod = CollapsibleHashTable([1024], 16)
        mult = CollapsibleHashTable([1024], 16, hash_mode="multiplicative")
        for code in range(0, 1024, 16):  # all equal mod 16
            mod.insert((code,))
            mult.insert((code,))
        assert mod.max_chain_length() == 64
        assert mult.max_chain_length() < 32


class TestProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=100),
        st.integers(2, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_an_aggregating_dict(self, keys, max_buckets):
        table = CollapsibleHashTable([10, 10], max_buckets)
        expected = {}
        for key in keys:
            table.insert(key, measure=1.0)
            count, value = expected.get(key, (0, 0.0))
            expected[key] = (count + 1, value + 1.0)
        assert {k: (c, v) for k, c, v in table} == expected

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
                    max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_collapse_equals_projection(self, keys):
        table = CollapsibleHashTable([8, 8, 8], 128)
        for key in keys:
            table.insert(key)
        for positions in ((0,), (1, 2), (2, 0)):
            collapsed = table.collapse(positions)
            expected = {}
            for key, count, value in table:
                small = tuple(key[i] for i in positions)
                c, v = expected.get(small, (0, 0.0))
                expected[small] = (c + count, v + value)
            assert {k: (c, v) for k, c, v in collapsed} == expected

"""Observability smoke test (CI job, not pytest).

Two legs, both against the real user surface:

1. **CLI trace** — run ``repro-cube cube --trace-out`` on a weather
   workload and validate the Chrome ``trace_event`` JSON: parseable,
   both clock-domain processes declared, one simulated span per
   scheduled task, every task span carrying ``OpStats`` attributes.
2. **Live scrape under load** — build a store, serve it, flood it with
   200 concurrent HTTP queries while scraping ``/metrics``, then assert
   the Prometheus request counters agree exactly with ``/stats``
   telemetry and with the number of requests actually sent.

Run:  PYTHONPATH=src python tests/smoke_obs.py
"""

import io
import json
import sys
import tempfile
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.cli import main as cli_main

N_QUERIES = 200
N_THREADS = 16


def check(condition, message):
    if not condition:
        print("FAIL: %s" % message)
        sys.exit(1)
    print("ok: %s" % message)


def cli_trace_leg(tmp):
    trace_path = "%s/trace.json" % tmp
    out = io.StringIO()
    code = cli_main([
        "cube", "--weather", "3000", "--dims", "5", "--minsup", "4",
        "--algorithm", "pt", "--processors", "4",
        "--trace-out", trace_path, "--metrics",
    ], out=out)
    check(code == 0, "cube --trace-out exits 0")
    text = out.getvalue()
    check("trace written" in text, "CLI reports the trace file")
    check("# TYPE repro_sim_tasks_total counter" in text,
          "--metrics prints Prometheus exposition")

    with open(trace_path) as handle:
        trace = json.load(handle)
    events = trace["traceEvents"]
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    check({"wall clock", "simulated cluster"} <= process_names,
          "both clock domains declared in the trace")

    sim_tasks = [e for e in events if e["ph"] == "X"
                 and "opstats_read_tuples" in e.get("args", {})]
    check(len(sim_tasks) > 0, "simulated task spans present")
    counted = sum(
        int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
        if line.startswith("repro_sim_tasks_total{"))
    check(len(sim_tasks) == counted,
          "trace task spans (%d) == repro_sim_tasks_total (%d)"
          % (len(sim_tasks), counted))
    for event in sim_tasks:
        args = event["args"]
        check(event["dur"] >= 0 and event["ts"] >= 0,
              "span %s has sane ts/dur" % event["name"])
        check("cpu_s" in args and "machine" in args,
              "span %s carries cost-model attributes" % event["name"])
        break  # spot-check one; the loop body guards the schema


def scrape_leg(tmp):
    from repro.data.synthetic import zipf_relation
    from repro.serve import CubeServer, CubeStore

    relation = zipf_relation(2_000, [9, 7, 5, 4], skew=1.0, seed=11)
    store = CubeStore.build(relation, "%s/store" % tmp, backend="local")
    server = CubeServer(store, cache_size=64, max_workers=N_THREADS)
    endpoint = server.serve_http(host="127.0.0.1", port=0)
    dims = store.dims

    def fire(i):
        cuboid = dims[i % len(dims)] if i % 3 else ",".join(dims[:2])
        url = "%s/query?cuboid=%s&minsup=%d" % (
            endpoint.url, cuboid, 1 + i % 2)
        with urllib.request.urlopen(url) as response:
            payload = json.loads(response.read())
        if i % 17 == 0:  # scrape concurrently with the flood
            with urllib.request.urlopen(endpoint.url + "/metrics") as resp:
                resp.read()
        return "error" not in payload

    try:
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            answers = list(pool.map(fire, range(N_QUERIES)))
        check(all(answers), "all %d flood queries answered" % N_QUERIES)
        with urllib.request.urlopen(endpoint.url + "/metrics") as response:
            content_type = response.headers["Content-Type"]
            metrics_text = response.read().decode()
        with urllib.request.urlopen(endpoint.url + "/stats") as response:
            stats = json.loads(response.read())
    finally:
        server.close()
        store.close()

    check(content_type.startswith("text/plain"),
          "/metrics served as text/plain")
    check("# TYPE repro_server_requests_total counter" in metrics_text,
          "request counter family declared")
    served = sum(
        int(float(line.rsplit(" ", 1)[1]))
        for line in metrics_text.splitlines()
        if line.startswith("repro_server_requests_total{"))
    telemetry_total = stats["telemetry"]["queries"]
    check(served == telemetry_total == N_QUERIES,
          "/metrics (%d) == /stats (%d) == queries sent (%d)"
          % (served, telemetry_total, N_QUERIES))
    by_source = {
        line.split('"')[1]: int(float(line.rsplit(" ", 1)[1]))
        for line in metrics_text.splitlines()
        if line.startswith("repro_server_requests_total{")}
    for source, entry in stats["telemetry"]["by_source"].items():
        check(by_source.get(source, 0) == entry["count"],
              "per-source agreement for %r (%d)"
              % (source, entry["count"]))


def main():
    with tempfile.TemporaryDirectory() as tmp:
        cli_trace_leg(tmp)
        scrape_leg(tmp)
    print("OBS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CubeResult: recording, merging, filtering, diffing, decoding."""

import pytest

from repro.core.result import CubeResult
from repro.data.encoding import ColumnEncoder
from repro.errors import SchemaError

DIMS = ("A", "B", "C")


class TestRecording:
    def test_add_cell_accumulates(self):
        r = CubeResult(DIMS)
        r.add_cell(("A",), (1,), 2, 10.0)
        r.add_cell(("A",), (1,), 3, 5.0)
        assert r.cuboid(("A",)) == {(1,): (5, 15.0)}

    def test_record_canonicalizes_order(self):
        r = CubeResult(DIMS)
        r.record(("C", "A"), (7, 1), 2, 4.0)
        assert r.cuboid(("A", "C")) == {(1, 7): (2, 4.0)}

    def test_record_unknown_dim_raises(self):
        r = CubeResult(DIMS)
        with pytest.raises(SchemaError):
            r.record(("Z",), (0,), 1, 1.0)

    def test_total_cells_and_bytes(self):
        r = CubeResult(DIMS)
        r.add_cell(("A",), (0,), 1, 1.0)
        r.add_cell(("A", "B"), (0, 0), 1, 1.0)
        assert r.total_cells() == 2
        assert r.output_bytes() == (1 + 2) * 8 + (2 + 2) * 8


class TestMerge:
    def test_merge_from_sums_matching_cells(self):
        a, b = CubeResult(DIMS), CubeResult(DIMS)
        a.add_cell(("A",), (0,), 1, 2.0)
        b.add_cell(("A",), (0,), 2, 3.0)
        b.add_cell(("B",), (5,), 1, 1.0)
        a.merge_from(b)
        assert a.cuboid(("A",)) == {(0,): (3, 5.0)}
        assert a.cuboid(("B",)) == {(5,): (1, 1.0)}


class TestFilterAndDiff:
    def test_filtered_drops_low_support(self):
        r = CubeResult(DIMS)
        r.add_cell(("A",), (0,), 1, 1.0)
        r.add_cell(("A",), (1,), 5, 9.0)
        filtered = r.filtered(2)
        assert filtered.cuboid(("A",)) == {(1,): (5, 9.0)}
        # Original untouched.
        assert len(r.cuboid(("A",))) == 2

    def test_filtered_removes_empty_cuboids(self):
        r = CubeResult(DIMS)
        r.add_cell(("B",), (0,), 1, 1.0)
        assert ("B",) not in r.filtered(2).cuboids

    def test_equals_and_diff(self):
        a, b = CubeResult(DIMS), CubeResult(DIMS)
        for r in (a, b):
            r.add_cell(("A",), (0,), 2, 4.0)
        assert a.equals(b)
        b.add_cell(("B",), (1,), 1, 1.0)
        assert not a.equals(b)
        assert len(a.diff(b)) == 1
        assert "cuboid ('B',)" in a.diff(b)[0]

    def test_diff_value_tolerance(self):
        a, b = CubeResult(DIMS), CubeResult(DIMS)
        a.add_cell(("A",), (0,), 1, 1.0)
        b.add_cell(("A",), (0,), 1, 1.0 + 1e-12)
        assert a.equals(b)
        c = CubeResult(DIMS)
        c.add_cell(("A",), (0,), 1, 1.5)
        assert not a.equals(c)

    def test_diff_limit(self):
        a, b = CubeResult(DIMS), CubeResult(DIMS)
        for i in range(20):
            a.add_cell(("A",), (i,), 1, 1.0)
        assert len(a.diff(b, limit=5)) == 5


class TestDecoding:
    def test_decoded_maps_codes_back(self):
        encoder = ColumnEncoder(DIMS)
        encoder.encode_rows([("x", "p", "m"), ("y", "q", "n")])
        r = CubeResult(DIMS)
        r.add_cell(("A", "C"), (1, 0), 3, 9.0)
        decoded = r.decoded(encoder)
        assert decoded[("A", "C")] == {("y", "m"): (3, 9.0)}

"""The array-based (MOLAP) cube: dense wins, sparse refuses."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arraycube import DenseArray, array_iceberg_cube
from repro.core.naive import naive_iceberg_cube
from repro.data import Relation, dense_relation, uniform_relation
from repro.errors import PlanError


class TestDenseArray:
    def test_offsets_are_mixed_radix(self):
        array = DenseArray((3, 4, 2))
        assert array.size == 24
        assert array.offset((0, 0, 0)) == 0
        assert array.offset((0, 0, 1)) == 1
        assert array.offset((0, 1, 0)) == 2
        assert array.offset((1, 0, 0)) == 8
        assert array.offset((2, 3, 1)) == 23

    def test_add_and_cells_round_trip(self):
        array = DenseArray((2, 3))
        array.add((1, 2), 5.0)
        array.add((1, 2), 3.0)
        array.add((0, 0), 1.0)
        assert sorted(array.cells()) == [((0, 0), 1, 1.0), ((1, 2), 2, 8.0)]

    def test_marginalize_sums_out_an_axis(self):
        array = DenseArray((2, 3))
        for a in range(2):
            for b in range(3):
                array.add((a, b), float(10 * a + b))
        by_b = array.marginalize(0)
        assert by_b.shape == (3,)
        assert by_b.counts == [2, 2, 2]
        assert by_b.sums == [0.0 + 10.0, 1.0 + 11.0, 2.0 + 12.0]
        by_a = array.marginalize(1)
        assert by_a.shape == (2,)
        assert by_a.counts == [3, 3]

    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 3), st.integers(0, 1)),
                    max_size=60), st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_marginalize_matches_dict_groupby(self, keys, axis):
        array = DenseArray((3, 4, 2))
        expected = {}
        for key in keys:
            array.add(key, 1.0)
            small = key[:axis] + key[axis + 1 :]
            count, value = expected.get(small, (0, 0.0))
            expected[small] = (count + 1, value + 1.0)
        got = {key: (c, v) for key, c, v in array.marginalize(axis).cells()}
        assert got == expected


class TestArrayCube:
    @pytest.mark.parametrize("minsup", [1, 2, 8])
    def test_matches_naive_on_dense_data(self, minsup):
        rel = dense_relation(800, 3, cardinality=4, seed=6)
        expected = naive_iceberg_cube(rel, minsup=minsup)
        got, _stats = array_iceberg_cube(rel, minsup=minsup)
        assert got.equals(expected), got.diff(expected)

    def test_sales_example(self, sales):
        got, _stats = array_iceberg_cube(sales)
        assert got.equals(naive_iceberg_cube(sales))

    def test_refuses_sparse_cell_spaces(self):
        rel = uniform_relation(100, [1000, 1000, 1000], seed=1)
        with pytest.raises(PlanError) as excinfo:
            array_iceberg_cube(rel)
        assert "infeasible" in str(excinfo.value)

    def test_max_cells_is_configurable(self):
        rel = uniform_relation(50, [10, 10], seed=1)
        array_iceberg_cube(rel, max_cells=100)  # exactly at the limit
        with pytest.raises(PlanError):
            array_iceberg_cube(rel, max_cells=99)

    def test_memory_footprint_recorded(self):
        rel = dense_relation(300, 3, cardinality=4, seed=2)
        _got, stats = array_iceberg_cube(rel)
        assert stats.peak_items >= 4 ** 3

    @given(
        st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=40),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_naive(self, rows, minsup):
        relation = Relation(("A", "B"), rows, [1.0] * len(rows))
        expected = naive_iceberg_cube(relation, minsup=minsup)
        got, _stats = array_iceberg_cube(relation, minsup=minsup)
        assert got.equals(expected)
